"""Trace and metrics exporters.

Three formats, one tracer:

* **JSONL** — one JSON object per line, ``kind`` ∈ ``{"trace", "span",
  "event", "record", "instrument"}``.  The machine-readable event log;
  every span/drift field survives round-tripping.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format
  understood by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Spans become complete (``"ph": "X"``) events
  with microsecond timestamps; span events and drift records become
  instant (``"ph": "i"``) events; attributes ride in ``args``.
* **Prometheus text exposition** — the tracer's instrument registry
  rendered as ``# TYPE`` blocks (counters, gauges, histograms with
  cumulative ``_bucket`` lines), HELP/label values escaped per the
  exposition format.
* **Collapsed stacks** — ``profile_stack`` records from a profiled run
  (:mod:`repro.obs.profile`) as ``stack weight`` lines for
  speedscope / ``flamegraph.pl``.

All exporters are pure functions over a :class:`~repro.obs.spans.Tracer`;
:func:`export_trace` dispatches on a format name.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

from repro.errors import ObservabilityError
from repro.obs.instruments import Counter, Gauge, Histogram, InstrumentRegistry
from repro.obs.spans import Tracer

#: process id used in chrome trace events (one logical process per run)
CHROME_PID = 1


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def trace_lines(tracer: Tracer) -> List[Dict[str, Any]]:
    """The JSONL export as a list of dicts (header, spans, records,
    instruments)."""
    lines: List[Dict[str, Any]] = [
        {
            "kind": "trace",
            "format": "repro.obs/v1",
            "spans": len(tracer.spans),
            "records": len(tracer.records),
        }
    ]
    for span in tracer.spans:
        entry = span.as_dict()
        entry["kind"] = "span"
        lines.append(entry)
    lines.extend(tracer.records)
    for instrument in tracer.registry.as_dicts():
        entry = dict(instrument)
        # the instrument's own kind (counter/gauge/histogram) must not
        # clobber the line kind
        entry["instrument_kind"] = entry.pop("kind")
        entry["kind"] = "instrument"
        lines.append(entry)
    return lines


def jsonl_text(tracer: Tracer) -> str:
    return "\n".join(
        json.dumps(line, default=_json_fallback) for line in trace_lines(tracer)
    )


def _json_fallback(value: Any) -> Any:
    if isinstance(value, float) and (math.isinf(value) or math.isnan(value)):
        return repr(value)  # pragma: no cover - inf handled before dumping
    return str(value)


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _microseconds(tracer: Tracer, wall: float) -> float:
    return round((wall - tracer.start_time) * 1e6, 3)


def _finite(value: Any) -> Any:
    """JSON has no inf/nan; chrome args must stay loadable by json.loads."""
    if isinstance(value, float) and (math.isinf(value) or math.isnan(value)):
        return repr(value)
    return value


def _chrome_args(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {key: _finite(value) for key, value in attrs.items()}


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The chrome trace-event document for ``tracer``."""
    events: List[Dict[str, Any]] = []
    for span in tracer.spans:
        tid = int(span.attrs.get("worker", 0)) + 1 if "worker" in span.attrs else 0
        args = _chrome_args(span.attrs)
        if span.parent_id is not None:
            args["parent_span"] = span.parent_id
        args["span_id"] = span.span_id
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": _microseconds(tracer, span.start_wall),
                "dur": round(span.duration_wall * 1e6, 3),
                "pid": CHROME_PID,
                "tid": tid,
                "args": args,
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": event.name,
                    "cat": "repro",
                    "ph": "i",
                    "s": "t",
                    "ts": _microseconds(tracer, event.ts),
                    "pid": CHROME_PID,
                    "tid": tid,
                    "args": _chrome_args(event.attrs),
                }
            )
    for record in tracer.records:
        attrs = {key: value for key, value in record.items() if key != "kind"}
        events.append(
            {
                "name": str(record.get("kind", "record")),
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "ts": _microseconds(tracer, tracer.start_time),
                "pid": CHROME_PID,
                "tid": 0,
                "args": _chrome_args(attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_text(tracer: Tracer) -> str:
    return json.dumps(chrome_trace(tracer), indent=1)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _prom_help(text: str) -> str:
    """HELP text escaping per the exposition format: backslash and
    newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_label_value(text: str) -> str:
    """Label-value escaping per the exposition format: backslash,
    double-quote and newline."""
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def prometheus_text(registry: InstrumentRegistry, prefix: str = "repro_") -> str:
    """The registry in Prometheus text exposition format."""
    out: List[str] = []
    for instrument in registry.collect():
        name = prefix + _prom_name(instrument.name)
        if instrument.help:
            out.append(f"# HELP {name} {_prom_help(instrument.help)}")
        out.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            out.append(f"{name} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            for bound, cumulative in instrument.cumulative():
                out.append(
                    f'{name}_bucket{{le="{_prom_label_value(_prom_value(float(bound)))}"}} '
                    f"{cumulative}"
                )
            out.append(f"{name}_sum {_prom_value(instrument.sum)}")
            out.append(f"{name}_count {instrument.count}")
        else:  # pragma: no cover - registry only produces the three kinds
            raise ObservabilityError(
                f"cannot render instrument kind {type(instrument).__name__!r}"
            )
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# collapsed stacks (profiling)
# ----------------------------------------------------------------------
def collapsed_text(tracer: Tracer) -> str:
    """The tracer's ``profile_stack`` records as collapsed-stack
    (folded) text: one ``stack weight`` line per record, loadable by
    speedscope / ``flamegraph.pl``.  Requires a profiled run (see
    :mod:`repro.obs.profile`)."""
    lines: List[str] = []
    for record in tracer.records:
        if record.get("kind") != "profile_stack":
            continue
        weight = record.get("weight", 0)
        lines.append(f"{record.get('stack', '')} {weight:g}")
    if not lines:
        raise ObservabilityError(
            "trace holds no profile_stack records; run with profile= "
            "(e.g. profile='cprofile') to export collapsed stacks"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
_RENDERERS = {
    "jsonl": jsonl_text,
    "chrome": chrome_text,
    "prometheus": lambda tracer: prometheus_text(tracer.registry),
    "collapsed": collapsed_text,
}


def render_trace(tracer: Tracer, fmt: str) -> str:
    """Render ``tracer`` in the named format (``jsonl`` / ``chrome`` /
    ``prometheus`` / ``collapsed``)."""
    renderer = _RENDERERS.get(fmt)
    if renderer is None:
        raise ObservabilityError(
            f"unknown trace format {fmt!r}; use one of {sorted(_RENDERERS)}"
        )
    return renderer(tracer)


def export_trace(tracer: Tracer, path: str, fmt: Optional[str] = None) -> str:
    """Write ``tracer`` to ``path`` (format inferred from the extension
    when ``fmt`` is ``None``) and return the path."""
    if fmt is None:
        from repro.obs.spans import _format_for_path

        fmt = _format_for_path(path)
    text = render_trace(tracer, fmt)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return path
