"""Process-wide metric instruments (counters, gauges, histograms).

The registry mirrors the shape of a Prometheus client: instruments are
created once, looked up by name, and updated from anywhere in the
pipeline.  The BSP engines record message-size and mailbox-occupancy
distributions and the combiner hit-rate here whenever a run is traced;
:func:`repro.obs.exporters.prometheus_text` renders a registry in the
Prometheus text exposition format.

Instruments are deliberately dependency-free and synchronous: updates
happen at superstep barriers (single-threaded in every engine), so only
registry *creation* is locked.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: default histogram bucket upper bounds (powers of two, then +inf)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


class Gauge:
    """A value that can go up and down (e.g. the latest hit-rate)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+inf`` bucket is always
    appended, so every observation lands somewhere.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be sorted, got {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # + the inf bucket
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "sum": self.sum,
            "count": self.count,
            "buckets": [
                {"le": bound, "cumulative": cum}
                for bound, cum in self.cumulative()
            ],
        }


class InstrumentRegistry:
    """Named instruments, created on first use and shared thereafter.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name returns the existing instrument, asking for it with
    a *different* kind raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ObservabilityError(
                        f"instrument {name!r} already registered as "
                        f"{existing.kind}, requested {kind}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), "histogram"
        )

    def get(self, name: str):
        """The named instrument, or ``None``."""
        return self._instruments.get(name)

    def collect(self) -> Iterable[object]:
        """All instruments in registration order."""
        return list(self._instruments.values())

    def as_dicts(self) -> List[Dict[str, object]]:
        return [instrument.as_dict() for instrument in self.collect()]

    def reset(self) -> None:
        """Drop every instrument (tests and per-run registries)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)


_DEFAULT_REGISTRY = InstrumentRegistry()


def default_registry() -> InstrumentRegistry:
    """The process-wide registry tracers use unless given their own."""
    return _DEFAULT_REGISTRY
