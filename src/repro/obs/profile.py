"""Span-attributed runtime profiling and memory watermarks (``profile=``).

The span tree (:mod:`repro.obs.spans`) says *which phase* time went to;
this module says *which code*.  A :class:`ProfileSession` rides on an
enabled tracer: the tracer calls back on every span start/end, the
session keeps the path of *attributed* spans (``extraction`` →
``plan-selection`` / ``engine-run`` → ``superstep N``), and one of two
CPU profilers charges frames to that path:

``cprofile``
    Deterministic.  One :class:`cProfile.Profile` per attributed span
    path; profiles are switched at span boundaries so each function's
    self-time lands under the superstep (or kernel level) that ran it.

``sampling``
    Statistical.  A daemon thread samples the profiled thread's stack
    via :func:`sys._current_frames` every few milliseconds and tags
    each sample with the currently-open attributed span path.  Cheap
    enough for production runs; thread-safe reads only.

Either way the result renders as **collapsed-stack** text
(``frame;frame;frame weight`` per line) loadable by speedscope,
``flamegraph.pl`` and friends, and is also emitted onto the tracer as
``profile_stack`` records so JSONL traces carry the profile.

The **memory watermark** tracker (``memory`` mode) wraps
:mod:`tracemalloc`: the traced high-water mark is reset at every
``superstep`` span start and read back at span end, giving a
per-superstep (and, on the vectorized backend, per-kernel-level)
watermark plus a run-level peak, alongside an RSS gauge.  The run peak
is what :meth:`repro.core.extractor.GraphExtractor.extract` joins
against the certified per-backend byte models of
:mod:`repro.lint.bounds` — observed > certified raises
:class:`~repro.errors.MemoryBoundsViolationError`, exactly the way the
drift tracker escalates path-count containment violations.

``make_profiler`` turns the user-facing ``profile=`` argument into a
session:

======================  ====================================================
``None`` / ``False``    :data:`NULL_PROFILE` (profiling off, zero cost)
``True``                sampling CPU profile + memory watermarks
``"cprofile"``          deterministic CPU profile
``"sampling"``          statistical CPU profile
``"memory"``            memory watermarks only
``"cprofile+memory"``   modes combine with ``+`` (or ``,``)
``"MODES:PATH"``        additionally write collapsed stacks to ``PATH``
a session instance      used as-is (caller owns start/stop)
======================  ====================================================
"""

from __future__ import annotations

import cProfile
import os
import sys
import threading
import time
import tracemalloc
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ProfileError
from repro.obs.spans import Span, TracerBase

#: Span names that contribute a component to the attributed span path.
#: Everything else (worker slices, checkpoint spans, …) inherits the
#: innermost attributed ancestor.
ATTRIBUTED_SPANS = ("extraction", "plan-selection", "engine-run", "superstep")

#: Span names that get a tracemalloc watermark (BSP supersteps and
#: vectorized kernel levels share the ``superstep`` span name).
WATERMARK_SPANS = ("superstep",)

_SAMPLING_INTERVAL_S = 0.004
_MAX_STACK_DEPTH = 64

#: Allowance applied when joining an observed tracemalloc watermark
#: against a certified byte bound (:mod:`repro.lint.bounds`).  The
#: certified models count *logical* payload bytes (112 B per BSP
#: message/stored value, 12 B per CSR entry); the observed watermark
#: additionally sees CPython object headers (a 3-tuple alone is 64 B),
#: dict-entry overhead (~100 B per result edge vs the model's 12 B) and
#: sparse-kernel workspace temporaries.  Measured across the workload
#: catalog the observed/certified ratio stays under ~8 on both
#: backends, so a 16× factor plus interpreter slack keeps the check
#: loud for genuine unsoundness (leaks, order-of-magnitude model bugs)
#: without false-positives from constant-factor object overhead.
MEMORY_OVERHEAD_FACTOR = 16.0

#: Additive slack for interpreter noise on tiny runs (dict resizes,
#: logging, span bookkeeping) where the certified bound is a few KB.
MEMORY_BASELINE_SLACK_BYTES = 1 << 20


def _span_key(span: Span) -> str:
    """The collapsed-stack path component for an attributed span."""
    if span.name == "superstep":
        step = span.attrs.get("superstep")
        return f"superstep {step}" if step is not None else "superstep"
    return span.name


def _frame_label(code: Any, globals_: Optional[Dict[str, Any]] = None) -> str:
    module = None
    if globals_ is not None:
        module = globals_.get("__name__")
    if not module:
        module = os.path.splitext(os.path.basename(code.co_filename))[0]
    return f"{module}:{code.co_name}"


def read_rss_bytes() -> Optional[int]:
    """Resident set size of this process, or ``None`` when unreadable.

    Prefers ``/proc/self/statm`` (current RSS, Linux); falls back to
    ``resource.getrusage`` (lifetime peak RSS, portable).
    """
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS
        return peak_kb if sys.platform == "darwin" else peak_kb * 1024
    except (ImportError, OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# CPU profilers
# ----------------------------------------------------------------------
class CProfileProfiler:
    """Deterministic profiler: one ``cProfile.Profile`` per attributed
    span path, switched at span boundaries.

    Only one C profiler can be active per thread, so the parent path's
    profile is disabled while a child span runs and re-enabled when the
    child closes; each profile therefore accumulates exactly the frames
    executed while its span path was innermost.
    """

    mode = "cprofile"

    def __init__(self) -> None:
        self._profiles: Dict[Tuple[str, ...], cProfile.Profile] = {}
        self._active: Optional[cProfile.Profile] = None
        self._running = False

    def start(self, path: Tuple[str, ...]) -> None:
        self._running = True
        self._switch_to(path)

    def stop(self) -> None:
        if self._active is not None:
            self._active.disable()
            self._active = None
        self._running = False

    def on_path_change(self, path: Tuple[str, ...]) -> None:
        if self._running:
            self._switch_to(path)

    def _switch_to(self, path: Tuple[str, ...]) -> None:
        if self._active is not None:
            self._active.disable()
        profile = self._profiles.get(path)
        if profile is None:
            profile = cProfile.Profile()
            self._profiles[path] = profile
        self._active = profile
        profile.enable()

    def collapsed(self) -> Dict[str, float]:
        """``span;path;module:func`` → self-time in microseconds."""
        stacks: Dict[str, float] = {}
        for path, profile in self._profiles.items():
            profile.create_stats()
            stats = getattr(profile, "stats", None) or {}
            for (filename, _lineno, funcname), row in stats.items():
                tottime = row[2]
                if tottime <= 0.0:
                    continue
                module = os.path.splitext(os.path.basename(filename))[0]
                if filename.startswith("<"):
                    module = filename.strip("<>")
                frame = f"{module}:{funcname}"
                key = ";".join((*path, frame)) if path else frame
                stacks[key] = stacks.get(key, 0.0) + tottime * 1e6
        return {key: round(weight) for key, weight in stacks.items() if weight >= 1}

    def summary(self) -> Dict[str, Any]:
        return {"mode": self.mode, "profiles": len(self._profiles)}


class SamplingProfiler:
    """Statistical profiler: a daemon thread periodically snapshots the
    profiled thread's stack and charges one sample to the attributed
    span path that was open at snapshot time."""

    mode = "sampling"

    def __init__(self, interval_s: float = _SAMPLING_INTERVAL_S) -> None:
        self.interval_s = interval_s
        self.samples = 0
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._target_ident: Optional[int] = None
        self._path: Tuple[str, ...] = ()

    def start(self, path: Tuple[str, ...]) -> None:
        if self._thread is not None:
            raise ProfileError("sampling profiler already started")
        self._path = path
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profile-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def on_path_change(self, path: Tuple[str, ...]) -> None:
        # plain attribute store: atomic under the GIL, read by the sampler
        self._path = path

    def _loop(self) -> None:
        own_file = __file__
        while not self._stop.wait(self.interval_s):
            frames = sys._current_frames()
            frame = frames.get(self._target_ident)
            if frame is None:
                continue
            path = self._path
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < _MAX_STACK_DEPTH:
                code = frame.f_code
                if code.co_filename != own_file:
                    stack.append(_frame_label(code, frame.f_globals))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()
            key = (*path, *stack)
            self._counts[key] = self._counts.get(key, 0) + 1
            self.samples += 1

    def collapsed(self) -> Dict[str, float]:
        """``span;path;module:func;…`` → sample count."""
        return {";".join(parts): count for parts, count in self._counts.items()}

    def summary(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "samples": self.samples,
            "interval_s": self.interval_s,
        }


# ----------------------------------------------------------------------
# memory watermarks
# ----------------------------------------------------------------------
class MemoryWatermark:
    """Per-superstep tracemalloc high-water marks plus a run peak.

    The traced peak is reset at every watermark span start; at span end
    the segment peak minus the traced size at span start is the span's
    own allocation watermark, recorded as the ``mem_peak_bytes`` span
    attribute.  The run-level peak — what gets checked against the
    certified byte model — is the maximum absolute traced peak over all
    supersteps, relative to the traced size when the first superstep
    opened (so pre-existing graph/snapshot allocations made before
    profiling began never count against the engine's certificate).
    """

    def __init__(self) -> None:
        self.watermarks: List[Dict[str, Any]] = []
        self.rss_bytes: Optional[int] = None
        self._owns_tracing = False
        self._engine_baseline: Optional[int] = None
        self._span_current: Dict[int, int] = {}
        self._run_peak_abs = 0
        self._running = False

    def start(self) -> None:
        self._owns_tracing = not tracemalloc.is_tracing()
        if self._owns_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        self._running = True

    def stop(self) -> None:
        if not self._running:
            return
        _current, peak = tracemalloc.get_traced_memory()
        self._run_peak_abs = max(self._run_peak_abs, peak)
        self.rss_bytes = read_rss_bytes()
        if self._owns_tracing:
            tracemalloc.stop()
        self._running = False

    def on_span_start(self, span: Span) -> None:
        if not self._running or span.name not in WATERMARK_SPANS:
            return
        current, _peak = tracemalloc.get_traced_memory()
        if self._engine_baseline is None:
            self._engine_baseline = current
        self._span_current[span.span_id] = current
        tracemalloc.reset_peak()

    def on_span_end(self, span: Span) -> None:
        if not self._running or span.name not in WATERMARK_SPANS:
            return
        current, peak = tracemalloc.get_traced_memory()
        start_current = self._span_current.pop(span.span_id, current)
        delta = max(0, peak - start_current)
        span.set_attr("mem_peak_bytes", delta)
        self._run_peak_abs = max(self._run_peak_abs, peak)
        entry: Dict[str, Any] = {
            "superstep": span.attrs.get("superstep"),
            "peak_bytes": delta,
            "current_bytes": max(0, current - start_current),
        }
        if "kernel" in span.attrs:
            entry["kernel"] = span.attrs["kernel"]
        if "backend" in span.attrs:
            entry["backend"] = span.attrs["backend"]
        self.watermarks.append(entry)

    @property
    def run_peak_bytes(self) -> Optional[int]:
        """Peak traced bytes attributable to the engine run, or ``None``
        when no watermark span ever opened."""
        if self._engine_baseline is None:
            return None
        return max(0, self._run_peak_abs - self._engine_baseline)

    def summary(self) -> Dict[str, Any]:
        return {
            "supersteps": len(self.watermarks),
            "run_peak_bytes": self.run_peak_bytes,
            "rss_bytes": self.rss_bytes,
        }


# ----------------------------------------------------------------------
# the session
# ----------------------------------------------------------------------
class ProfileSessionBase:
    """Shared interface of :class:`ProfileSession` and
    :class:`NullProfileSession`."""

    enabled = True

    def attach(self, tracer: TracerBase) -> None:
        raise NotImplementedError  # pragma: no cover

    def start(self) -> None:
        raise NotImplementedError  # pragma: no cover

    def stop(self) -> None:
        raise NotImplementedError  # pragma: no cover


class ProfileSession(ProfileSessionBase):
    """One profiled run: a CPU profiler and/or a memory watermark
    tracker, attributed to the span tree of the tracer it is attached
    to.

    Lifecycle: ``attach(tracer)`` → ``start()`` → (run) → ``stop()`` →
    ``emit()`` / ``collapsed_text()`` / ``export_collapsed(path)``.
    ``GraphExtractor`` and the engines drive this automatically from
    their ``profile=`` arguments.
    """

    enabled = True

    def __init__(
        self,
        cpu: Optional[str] = "sampling",
        memory: bool = True,
        out: Optional[str] = None,
        interval_s: float = _SAMPLING_INTERVAL_S,
    ) -> None:
        if cpu == "cprofile":
            self.cpu: Optional[Any] = CProfileProfiler()
        elif cpu == "sampling":
            self.cpu = SamplingProfiler(interval_s=interval_s)
        elif cpu is None:
            self.cpu = None
        else:
            raise ProfileError(
                f"unknown CPU profile mode {cpu!r}; use 'cprofile', "
                f"'sampling' or None"
            )
        self.memory: Optional[MemoryWatermark] = MemoryWatermark() if memory else None
        self.out = out
        self.started_at: Optional[float] = None
        self.duration_s: Optional[float] = None
        self._path: List[str] = []
        self._pushed: Dict[int, bool] = {}
        self._tracer: Optional[TracerBase] = None
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, tracer: TracerBase) -> None:
        """Register with ``tracer`` so span starts/ends reach this
        session.  The tracer must be enabled — a null tracer has no span
        tree to attribute frames to."""
        if not tracer.enabled:
            raise ProfileError(
                "cannot attach a profile session to a disabled tracer; "
                "profiling implies tracing (pass trace=True or a spec)"
            )
        tracer.profiler = self
        self._tracer = tracer

    def detach(self) -> None:
        if self._tracer is not None and getattr(self._tracer, "profiler", None) is self:
            self._tracer.profiler = None

    def start(self) -> None:
        if self._running:
            raise ProfileError("profile session already started")
        self._running = True
        self.started_at = time.perf_counter()
        if self.memory is not None:
            self.memory.start()
        if self.cpu is not None:
            self.cpu.start(tuple(self._path))

    def stop(self) -> None:
        if not self._running:
            return
        if self.cpu is not None:
            self.cpu.stop()
        if self.memory is not None:
            self.memory.stop()
        if self.started_at is not None:
            self.duration_s = time.perf_counter() - self.started_at
        self._running = False

    # ------------------------------------------------------------------
    # tracer callbacks (hot path: one dict/tuple op per attributed span)
    # ------------------------------------------------------------------
    def on_span_start(self, span: Span) -> None:
        if span.name in ATTRIBUTED_SPANS:
            self._path.append(_span_key(span))
            self._pushed[span.span_id] = True
            if self.cpu is not None and self._running:
                self.cpu.on_path_change(tuple(self._path))
        if self.memory is not None:
            self.memory.on_span_start(span)

    def on_span_end(self, span: Span) -> None:
        if self.memory is not None:
            self.memory.on_span_end(span)
        if self._pushed.pop(span.span_id, False):
            if self._path:
                self._path.pop()
            if self.cpu is not None and self._running:
                self.cpu.on_path_change(tuple(self._path))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def run_peak_bytes(self) -> Optional[int]:
        return self.memory.run_peak_bytes if self.memory is not None else None

    @property
    def rss_bytes(self) -> Optional[int]:
        return self.memory.rss_bytes if self.memory is not None else None

    def collapsed(self) -> Dict[str, float]:
        """Collapsed stacks: ``frame;frame;frame`` → weight (µs for
        cprofile, samples for sampling)."""
        return self.cpu.collapsed() if self.cpu is not None else {}

    def collapsed_text(self) -> str:
        """The collapsed-stack (folded) text format: one
        ``stack weight`` line per unique stack, heaviest first —
        loadable by speedscope and ``flamegraph.pl``."""
        stacks = self.collapsed()
        lines = [
            f"{stack} {weight:g}"
            for stack, weight in sorted(
                stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def export_collapsed(self, path: str) -> str:
        """Write :meth:`collapsed_text` to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed_text())
        return path

    def weight_unit(self) -> str:
        if self.cpu is None:
            return "none"
        return "us" if self.cpu.mode == "cprofile" else "samples"

    def summary(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {"duration_s": self.duration_s}
        if self.cpu is not None:
            info["cpu"] = self.cpu.summary()
        if self.memory is not None:
            info["memory"] = self.memory.summary()
        return info

    def emit(self, tracer: Optional[TracerBase] = None) -> None:
        """Write the session's results onto ``tracer`` (default: the
        attached one) as structured records — ``profile_stack`` rows,
        ``memory_watermark`` rows, one ``profile_summary`` — and set the
        RSS gauge.  Call after :meth:`stop`; the records ride along in
        JSONL/chrome exports."""
        tracer = tracer if tracer is not None else self._tracer
        if tracer is None or not tracer.enabled:
            return
        if self.cpu is not None:
            unit = self.weight_unit()
            mode = self.cpu.mode
            for stack, weight in sorted(
                self.collapsed().items(), key=lambda item: (-item[1], item[0])
            ):
                tracer.record(
                    "profile_stack", stack=stack, weight=weight, unit=unit, mode=mode
                )
        if self.memory is not None:
            for entry in self.memory.watermarks:
                tracer.record("memory_watermark", **entry)
            if self.rss_bytes is not None:
                tracer.registry.gauge(
                    "process_rss_bytes", "resident set size at profile stop"
                ).set(float(self.rss_bytes))
        tracer.record("profile_summary", **self.summary())
        if self.out:
            self.export_collapsed(self.out)


class NullProfileSession(ProfileSessionBase):
    """Profiling off: every method returns immediately (the
    :data:`NULL_TRACER` of profiling)."""

    enabled = False
    cpu = None
    memory = None
    out = None
    run_peak_bytes: Optional[int] = None
    rss_bytes: Optional[int] = None

    def attach(self, tracer: TracerBase) -> None:
        return None

    def detach(self) -> None:
        return None

    def start(self) -> None:
        return None

    def stop(self) -> None:
        return None

    def on_span_start(self, span: Span) -> None:
        return None

    def on_span_end(self, span: Span) -> None:
        return None

    def collapsed(self) -> Dict[str, float]:
        return {}

    def collapsed_text(self) -> str:
        return ""

    def export_collapsed(self, path: str) -> str:
        raise ProfileError("cannot export from a disabled (null) profile session")

    def summary(self) -> Dict[str, Any]:
        return {}

    def emit(self, tracer: Optional[TracerBase] = None) -> None:
        return None


#: The shared profiling-off session.
NULL_PROFILE = NullProfileSession()

ProfileSpec = Union[None, bool, str, ProfileSessionBase]

_CPU_TOKENS = {"cprofile": "cprofile", "sampling": "sampling", "cpu": "sampling"}
_MEMORY_TOKENS = {"memory", "mem"}


def make_profiler(profile: ProfileSpec) -> ProfileSessionBase:
    """Resolve a user-facing ``profile=`` argument into a session (see
    the module docstring for the accepted specs)."""
    if profile is None or profile is False:
        return NULL_PROFILE
    if isinstance(profile, ProfileSessionBase):
        return profile
    if profile is True:
        return ProfileSession(cpu="sampling", memory=True)
    if isinstance(profile, str):
        modes, _, out = profile.partition(":")
        cpu: Optional[str] = None
        memory = False
        tokens = [
            token.strip()
            for token in modes.replace(",", "+").split("+")
            if token.strip()
        ]
        if not tokens:
            raise ProfileError(f"profile spec {profile!r} names no modes")
        for token in tokens:
            if token in _CPU_TOKENS:
                if cpu is not None and _CPU_TOKENS[token] != cpu:
                    raise ProfileError(
                        f"profile spec {profile!r} names two CPU modes"
                    )
                cpu = _CPU_TOKENS[token]
            elif token in _MEMORY_TOKENS:
                memory = True
            else:
                raise ProfileError(
                    f"unknown profile mode {token!r} in spec {profile!r}; "
                    f"use 'cprofile', 'sampling' and/or 'memory'"
                )
        return ProfileSession(cpu=cpu, memory=memory, out=out or None)
    raise ProfileError(
        f"unsupported profile spec {profile!r}; use None/True, a mode "
        f"string or a ProfileSession instance"
    )


def owns_profiler(profile: ProfileSpec) -> bool:
    """Whether the component resolving ``profile`` owns the session's
    lifecycle (start/stop/emit).  A session *instance* stays owned by
    whoever created it, mirroring :func:`repro.obs.spans.owns_tracer`."""
    return not isinstance(profile, ProfileSessionBase)
