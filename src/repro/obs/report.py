"""Post-hoc trace reports: load an exported trace, render run tables.

``python -m repro.cli report <trace>`` uses this module to turn a JSONL
or chrome trace file back into the per-superstep table the run would
have printed live: makespan, worker imbalance, messages, and — when the
run recorded cost-model drift — the estimated vs observed intermediate
paths per superstep.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ObservabilityError


class TraceData:
    """The report-relevant slice of a loaded trace file."""

    def __init__(self) -> None:
        self.supersteps: List[Dict[str, Any]] = []
        self.drift: List[Dict[str, Any]] = []
        self.plan_drift: Optional[Dict[str, Any]] = None
        self.plan_typing: List[Dict[str, Any]] = []
        self.extraction: Optional[Dict[str, Any]] = None
        self.span_names: List[str] = []

    def sorted_supersteps(self) -> List[Dict[str, Any]]:
        return sorted(self.supersteps, key=lambda attrs: attrs.get("superstep", 0))

    def drift_by_superstep(self) -> Dict[int, Dict[str, float]]:
        out: Dict[int, Dict[str, float]] = {}
        for record in self.drift:
            step = int(record.get("superstep", 0))
            bucket = out.setdefault(step, {"estimated": 0.0, "observed": 0.0})
            bucket["estimated"] += float(record.get("estimated_paths", 0.0))
            bucket["observed"] += float(record.get("observed_paths", 0))
        for bucket in out.values():
            estimated, observed = bucket["estimated"], bucket["observed"]
            if estimated > 0:
                bucket["drift"] = observed / estimated
            else:
                bucket["drift"] = 1.0 if observed == 0 else float("inf")
        return out


def _ingest(data: TraceData, kind: str, name: str, attrs: Dict[str, Any]) -> None:
    if kind == "span":
        data.span_names.append(name)
        if name == "superstep":
            data.supersteps.append(attrs)
        elif name == "extraction" and data.extraction is None:
            data.extraction = attrs
    elif kind == "drift":
        data.drift.append(attrs)
    elif kind == "plan_drift" and data.plan_drift is None:
        data.plan_drift = attrs
    elif kind == "plan_typing":
        data.plan_typing.append(attrs)


def _load_jsonl(lines: List[str], path: str) -> TraceData:
    data = TraceData()
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{number}: not valid JSON ({exc})"
            ) from None
        kind = entry.get("kind")
        if kind == "span":
            _ingest(data, "span", entry.get("name", ""), entry.get("attrs", {}))
        elif kind in ("drift", "plan_drift", "plan_typing"):
            _ingest(data, kind, kind, entry)
    return data


def _load_chrome(document: Any, path: str) -> TraceData:
    if isinstance(document, dict):
        events = document.get("traceEvents")
    elif isinstance(document, list):  # the bare-array chrome variant
        events = document
    else:
        events = None
    if not isinstance(events, list):
        raise ObservabilityError(
            f"{path}: not a chrome trace (no traceEvents array)"
        )
    data = TraceData()
    for event in events:
        if not isinstance(event, dict):
            continue
        name = event.get("name", "")
        args = event.get("args", {})
        phase = event.get("ph")
        if phase == "X":
            _ingest(data, "span", name, args)
        elif phase == "i" and name in ("drift", "plan_drift", "plan_typing"):
            _ingest(data, name, name, args)
    return data


def load_trace(path: str) -> TraceData:
    """Load a JSONL or chrome trace file (format sniffed from content)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        raise ObservabilityError(f"{path}: empty trace file")
    first_line = stripped.splitlines()[0].strip()
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError:
        first = None
    if isinstance(first, dict) and "kind" in first:
        return _load_jsonl(stripped.splitlines(), path)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"{path}: neither JSONL nor chrome trace JSON ({exc})"
        ) from None
    return _load_chrome(document, path)


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


def superstep_table(data: TraceData) -> str:
    """The per-superstep report table (makespan, imbalance, messages,
    drift — plus the per-level kernel wall time for vectorized-backend
    traces) rendered as aligned text."""
    from repro.workloads.harness import Row, format_table

    drift = data.drift_by_superstep()
    vectorized = any("kernel_time_s" in attrs for attrs in data.supersteps)
    rows: List[Row] = []
    for attrs in data.sorted_supersteps():
        step = int(attrs.get("superstep", 0))
        makespan = attrs.get("makespan", 0)
        total_work = attrs.get("total_work", 0)
        workers = max(int(attrs.get("workers", 1)), 1)
        imbalance = (
            makespan / (total_work / workers) if total_work else 1.0
        )
        values: Dict[str, Any] = {
            "makespan": makespan,
            "imbalance": round(imbalance, 3),
            "messages": attrs.get("messages_sent", 0),
        }
        if vectorized:
            kernel_s = attrs.get("kernel_time_s")
            values["kernel_s"] = (
                f"{kernel_s:.6f}" if kernel_s is not None else "-"
            )
        step_drift = drift.get(step)
        if step_drift is not None:
            values["est_paths"] = _fmt(step_drift["estimated"])
            values["obs_paths"] = _fmt(step_drift["observed"])
            values["drift"] = _fmt(step_drift["drift"])
        else:
            values["est_paths"] = "-"
            values["obs_paths"] = "-"
            values["drift"] = "-"
        rows.append(Row(f"superstep {step}", values))
    if not rows:
        raise ObservabilityError(
            "trace contains no superstep spans; was it produced by a "
            "traced run (extract --trace-out / GraphExtractor(trace=...))?"
        )
    columns = ["makespan", "imbalance", "messages"]
    if vectorized:
        columns.append("kernel_s")
    columns += ["est_paths", "obs_paths", "drift"]
    title = "per-superstep run report"
    if data.extraction is not None:
        backend = data.extraction.get("backend")
        if backend:
            title += f" [{backend}]"
        if data.extraction.get("pattern"):
            title += f" — {data.extraction['pattern']}"
    return format_table(rows, columns, title=title, label_header="phase")


def bounds_table(data: TraceData) -> str:
    """Per-plan-node certified-bound containment (``bound`` /
    ``observed`` / ``contained`` columns), rendered when the traced run
    carried certified bounds on its drift records
    (:meth:`repro.lint.bounds.BoundsAnalyzer.annotate_plan`).  A ``NO``
    in ``contained`` is a soundness bug in the bounds analyzer."""
    from repro.workloads.harness import Row, format_table

    rows: List[Row] = []
    for attrs in sorted(data.drift, key=lambda a: int(a.get("node_id", 0))):
        if "bound" not in attrs:
            continue
        segment = attrs.get("segment") or []
        contained = attrs.get("contained")
        rows.append(
            Row(
                f"node {attrs.get('node_id', '?')}",
                {
                    "segment": "[" + ",".join(str(s) for s in segment) + "]",
                    "bound": _fmt(float(attrs["bound"])),
                    "observed": _fmt(float(attrs.get("observed_paths", 0))),
                    "contained": (
                        "?" if contained is None
                        else ("yes" if contained else "NO")
                    ),
                },
            )
        )
    return format_table(
        rows,
        ["segment", "bound", "observed", "contained"],
        title="certified bounds (containment check)",
        label_header="plan node",
    )


def plan_typing_table(data: TraceData) -> str:
    """Per-plan-node static eligibility, recorded by the plan typechecker
    during traced ``verify=True`` runs (kind ``plan_typing``)."""
    from repro.workloads.harness import Row, format_table

    rows: List[Row] = []
    for attrs in sorted(
        data.plan_typing, key=lambda a: int(a.get("node_id", 0))
    ):
        segment = attrs.get("segment") or []
        rows.append(
            Row(
                f"node {attrs.get('node_id', '?')}",
                {
                    "segment": "[" + ",".join(str(s) for s in segment) + "]",
                    "type": attrs.get("pattern_type", "?"),
                    "static_eligibility": attrs.get(
                        "static_eligibility", "?"
                    ),
                },
            )
        )
    return format_table(
        rows,
        ["segment", "type", "static_eligibility"],
        title="plan typing (static backend verdicts)",
        label_header="plan node",
    )


def render_report(path: str) -> str:
    """Everything ``repro.cli report`` prints for one trace file."""
    data = load_trace(path)
    parts = [superstep_table(data)]
    if any("bound" in attrs for attrs in data.drift):
        parts.append(bounds_table(data))
    if data.plan_typing:
        parts.append(plan_typing_table(data))
    if data.plan_drift is not None:
        plan = data.plan_drift
        parts.append(
            "plan drift [{strategy}]: estimated {est} intermediate paths, "
            "observed {obs} — drift {drift}".format(
                strategy=plan.get("strategy", "?"),
                est=_fmt(float(plan.get("estimated_paths", 0.0))),
                obs=_fmt(float(plan.get("observed_paths", 0))),
                drift=_fmt(float(plan.get("drift", 1.0))),
            )
        )
    return "\n\n".join(parts)
