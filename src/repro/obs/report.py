"""Post-hoc trace reports: load an exported trace, render run tables.

``python -m repro.cli report <trace>`` uses this module to turn a JSONL
or chrome trace file back into the per-superstep table the run would
have printed live: makespan, worker imbalance, messages, and — when the
run recorded cost-model drift — the estimated vs observed intermediate
paths per superstep.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ObservabilityError


class TraceData:
    """The report-relevant slice of a loaded trace file."""

    def __init__(self) -> None:
        self.supersteps: List[Dict[str, Any]] = []
        self.drift: List[Dict[str, Any]] = []
        self.plan_drift: Optional[Dict[str, Any]] = None
        self.plan_typing: List[Dict[str, Any]] = []
        self.extraction: Optional[Dict[str, Any]] = None
        self.span_names: List[str] = []
        self.profile_stacks: List[Dict[str, Any]] = []
        self.memory_watermarks: List[Dict[str, Any]] = []
        self.memory_containment: Optional[Dict[str, Any]] = None
        self.profile_summary: Optional[Dict[str, Any]] = None
        self.procpool: Optional[Dict[str, Any]] = None
        self.worker_spans: List[Dict[str, Any]] = []
        self.cache: Optional[Dict[str, Any]] = None
        self.multiquery: Optional[Dict[str, Any]] = None
        self.shared_levels: List[Dict[str, Any]] = []

    def sorted_supersteps(self) -> List[Dict[str, Any]]:
        return sorted(self.supersteps, key=lambda attrs: attrs.get("superstep", 0))

    def drift_by_superstep(self) -> Dict[int, Dict[str, float]]:
        out: Dict[int, Dict[str, float]] = {}
        for record in self.drift:
            step = int(record.get("superstep", 0))
            bucket = out.setdefault(step, {"estimated": 0.0, "observed": 0.0})
            bucket["estimated"] += float(record.get("estimated_paths", 0.0))
            bucket["observed"] += float(record.get("observed_paths", 0))
        for bucket in out.values():
            estimated, observed = bucket["estimated"], bucket["observed"]
            if estimated > 0:
                bucket["drift"] = observed / estimated
            else:
                bucket["drift"] = 1.0 if observed == 0 else float("inf")
        return out


def _ingest(data: TraceData, kind: str, name: str, attrs: Dict[str, Any]) -> None:
    if kind == "span":
        data.span_names.append(name)
        if name == "superstep":
            data.supersteps.append(attrs)
        elif name == "extraction" and data.extraction is None:
            data.extraction = attrs
        elif name == "worker":
            data.worker_spans.append(attrs)
        elif name == "shared-level":
            data.shared_levels.append(attrs)
        elif name == "multiquery" and data.multiquery is None:
            data.multiquery = attrs
    elif kind == "drift":
        data.drift.append(attrs)
    elif kind == "plan_drift" and data.plan_drift is None:
        data.plan_drift = attrs
    elif kind == "plan_typing":
        data.plan_typing.append(attrs)
    elif kind == "profile_stack":
        data.profile_stacks.append(attrs)
    elif kind == "memory_watermark":
        data.memory_watermarks.append(attrs)
    elif kind == "memory_containment" and data.memory_containment is None:
        data.memory_containment = attrs
    elif kind == "profile_summary" and data.profile_summary is None:
        data.profile_summary = attrs
    elif kind == "procpool" and data.procpool is None:
        data.procpool = attrs
    elif kind == "cache":
        # last-wins: the final record of a run/batch carries the
        # cumulative hit/miss counters
        data.cache = attrs
    elif kind == "multiquery" and data.multiquery is None:
        data.multiquery = attrs


#: structured-record kinds the report ingests (beyond spans)
_RECORD_KINDS = (
    "drift",
    "plan_drift",
    "plan_typing",
    "profile_stack",
    "memory_watermark",
    "memory_containment",
    "profile_summary",
    "procpool",
    "cache",
    "multiquery",
)


def _load_jsonl(lines: List[str], path: str) -> TraceData:
    data = TraceData()
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{number}: not valid JSON ({exc})"
            ) from None
        kind = entry.get("kind")
        if kind == "span":
            name = entry.get("name", "")
            attrs = entry.get("attrs", {})
            if name == "worker" and "duration_wall" in entry:
                # worker spans carry the child's measured slice; the
                # report needs the wall clock, not just the attrs
                attrs = {**attrs, "duration_wall": entry["duration_wall"]}
            _ingest(data, "span", name, attrs)
        elif kind in _RECORD_KINDS:
            _ingest(data, kind, kind, entry)
    return data


def _load_chrome(document: Any, path: str) -> TraceData:
    if isinstance(document, dict):
        events = document.get("traceEvents")
    elif isinstance(document, list):  # the bare-array chrome variant
        events = document
    else:
        events = None
    if not isinstance(events, list):
        raise ObservabilityError(
            f"{path}: not a chrome trace (no traceEvents array)"
        )
    data = TraceData()
    for event in events:
        if not isinstance(event, dict):
            continue
        name = event.get("name", "")
        args = event.get("args", {})
        phase = event.get("ph")
        if phase == "X":
            _ingest(data, "span", name, args)
        elif phase == "i" and name in _RECORD_KINDS:
            _ingest(data, name, name, args)
    return data


def _sniff_non_trace(first_line: str) -> Optional[str]:
    """Recognise common *non*-trace export formats so ``load_trace`` can
    name them in its error instead of reporting a JSON parse failure.

    Returns a human-readable file-kind label, or ``None`` when the file
    does not match a known non-trace format.
    """
    if first_line.startswith("#") and (
        "HELP" in first_line or "TYPE" in first_line
    ):
        return "a Prometheus text exposition (.prom metrics export)"
    head = first_line.split(" ")[0]
    if ";" in head and not first_line.startswith(("{", "[")):
        parts = first_line.rsplit(" ", 1)
        if len(parts) == 2 and parts[1].isdigit():
            return "a collapsed-stack profile (.folded flamegraph export)"
    return None


def load_trace(path: str) -> TraceData:
    """Load a JSONL or chrome trace file (format sniffed from content).

    Raises :class:`~repro.errors.ObservabilityError` naming the detected
    file kind when handed a non-trace export (for example a Prometheus
    ``.prom`` metrics file or a collapsed-stack ``.folded`` profile).
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        raise ObservabilityError(f"{path}: empty trace file")
    first_line = stripped.splitlines()[0].strip()
    kind = _sniff_non_trace(first_line)
    if kind is not None:
        raise ObservabilityError(
            f"{path}: this is {kind}, not a trace; "
            "report needs a JSONL or chrome trace "
            "(extract --trace-out trace.jsonl)"
        )
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError:
        first = None
    if isinstance(first, dict) and "kind" in first:
        return _load_jsonl(stripped.splitlines(), path)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"{path}: neither JSONL nor chrome trace JSON ({exc})"
        ) from None
    return _load_chrome(document, path)


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


def _fmt_bytes(value: int) -> str:
    size = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(size) < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{int(size)}{unit}"
            return f"{size:.1f}{unit}"
        size /= 1024.0
    return f"{int(value)}B"


def superstep_table(data: TraceData) -> str:
    """The per-superstep report table (makespan, imbalance, messages,
    drift — plus the per-level kernel wall time for vectorized-backend
    traces) rendered as aligned text."""
    from repro.workloads.harness import Row, format_table

    drift = data.drift_by_superstep()
    vectorized = any("kernel_time_s" in attrs for attrs in data.supersteps)
    profiled = any("mem_peak_bytes" in attrs for attrs in data.supersteps)
    rows: List[Row] = []
    for attrs in data.sorted_supersteps():
        step = int(attrs.get("superstep", 0))
        makespan = attrs.get("makespan", 0)
        total_work = attrs.get("total_work", 0)
        workers = max(int(attrs.get("workers", 1)), 1)
        imbalance = (
            makespan / (total_work / workers) if total_work else 1.0
        )
        values: Dict[str, Any] = {
            "makespan": makespan,
            "imbalance": round(imbalance, 3),
            "messages": attrs.get("messages_sent", 0),
        }
        if vectorized:
            kernel_s = attrs.get("kernel_time_s")
            values["kernel_s"] = (
                f"{kernel_s:.6f}" if kernel_s is not None else "-"
            )
        if profiled:
            mem_peak = attrs.get("mem_peak_bytes")
            values["mem_peak"] = (
                _fmt_bytes(int(mem_peak)) if mem_peak is not None else "-"
            )
        step_drift = drift.get(step)
        if step_drift is not None:
            values["est_paths"] = _fmt(step_drift["estimated"])
            values["obs_paths"] = _fmt(step_drift["observed"])
            values["drift"] = _fmt(step_drift["drift"])
        else:
            values["est_paths"] = "-"
            values["obs_paths"] = "-"
            values["drift"] = "-"
        rows.append(Row(f"superstep {step}", values))
    if not rows:
        raise ObservabilityError(
            "trace contains no superstep spans; was it produced by a "
            "traced run (extract --trace-out / GraphExtractor(trace=...))?"
        )
    columns = ["makespan", "imbalance", "messages"]
    if vectorized:
        columns.append("kernel_s")
    if profiled:
        columns.append("mem_peak")
    columns += ["est_paths", "obs_paths", "drift"]
    title = "per-superstep run report"
    if data.extraction is not None:
        backend = data.extraction.get("backend")
        if backend:
            title += f" [{backend}]"
        if data.extraction.get("pattern"):
            title += f" — {data.extraction['pattern']}"
    return format_table(rows, columns, title=title, label_header="phase")


def bounds_table(data: TraceData) -> str:
    """Per-plan-node certified-bound containment (``bound`` /
    ``observed`` / ``contained`` columns), rendered when the traced run
    carried certified bounds on its drift records
    (:meth:`repro.lint.bounds.BoundsAnalyzer.annotate_plan`).  A ``NO``
    in ``contained`` is a soundness bug in the bounds analyzer."""
    from repro.workloads.harness import Row, format_table

    rows: List[Row] = []
    for attrs in sorted(data.drift, key=lambda a: int(a.get("node_id", 0))):
        if "bound" not in attrs:
            continue
        segment = attrs.get("segment") or []
        contained = attrs.get("contained")
        rows.append(
            Row(
                f"node {attrs.get('node_id', '?')}",
                {
                    "segment": "[" + ",".join(str(s) for s in segment) + "]",
                    "bound": _fmt(float(attrs["bound"])),
                    "observed": _fmt(float(attrs.get("observed_paths", 0))),
                    "contained": (
                        "?" if contained is None
                        else ("yes" if contained else "NO")
                    ),
                },
            )
        )
    return format_table(
        rows,
        ["segment", "bound", "observed", "contained"],
        title="certified bounds (containment check)",
        label_header="plan node",
    )


def plan_typing_table(data: TraceData) -> str:
    """Per-plan-node static eligibility, recorded by the plan typechecker
    during traced ``verify=True`` runs (kind ``plan_typing``)."""
    from repro.workloads.harness import Row, format_table

    rows: List[Row] = []
    for attrs in sorted(
        data.plan_typing, key=lambda a: int(a.get("node_id", 0))
    ):
        segment = attrs.get("segment") or []
        rows.append(
            Row(
                f"node {attrs.get('node_id', '?')}",
                {
                    "segment": "[" + ",".join(str(s) for s in segment) + "]",
                    "type": attrs.get("pattern_type", "?"),
                    "static_eligibility": attrs.get(
                        "static_eligibility", "?"
                    ),
                },
            )
        )
    return format_table(
        rows,
        ["segment", "type", "static_eligibility"],
        title="plan typing (static backend verdicts)",
        label_header="plan node",
    )


def profile_table(data: TraceData, top: int = 10) -> str:
    """The ``top`` hottest attributed stacks from the run's profiler
    (kind ``profile_stack``), heaviest first."""
    from repro.workloads.harness import Row, format_table

    stacks = sorted(
        data.profile_stacks,
        key=lambda a: float(a.get("weight", 0)),
        reverse=True,
    )[:top]
    unit = stacks[0].get("unit", "") if stacks else ""
    rows: List[Row] = []
    weight_col = f"weight_{unit}" if unit else "weight"
    for attrs in stacks:
        stack = attrs.get("stack", "")
        frames = stack.split(";")
        rows.append(
            Row(
                frames[-1],
                {
                    "span": ";".join(frames[:-1]) or "-",
                    weight_col: _fmt(float(attrs.get("weight", 0))),
                },
            )
        )
    mode = stacks[0].get("mode", "") if stacks else ""
    title = "hottest profiled stacks"
    if mode:
        title += f" [{mode}]"
    return format_table(
        rows,
        [weight_col, "span"],
        title=title,
        label_header="frame",
    )


def memory_table(data: TraceData) -> str:
    """Per-superstep tracemalloc watermarks (kind ``memory_watermark``)
    plus the observed-vs-certified containment line when the run joined
    its peaks against the certified byte model."""
    from repro.workloads.harness import Row, format_table

    rows: List[Row] = []
    for attrs in sorted(
        data.memory_watermarks, key=lambda a: int(a.get("superstep", 0))
    ):
        values: Dict[str, Any] = {
            "peak": _fmt_bytes(int(attrs.get("peak_bytes", 0))),
            "current": _fmt_bytes(int(attrs.get("current_bytes", 0))),
        }
        if attrs.get("kernel") is not None:
            values["kernel"] = attrs["kernel"]
        rows.append(Row(f"superstep {attrs.get('superstep', '?')}", values))
    columns = ["peak", "current"]
    if any("kernel" in r.values for r in rows):
        columns.append("kernel")
    table = format_table(
        rows,
        columns,
        title="memory watermarks (tracemalloc)",
        label_header="phase",
    )
    containment = data.memory_containment
    if containment is not None:
        verdict = (
            "contained" if containment.get("contained") else "VIOLATED"
        )
        table += (
            "\nobserved vs certified [{backend}]: peak {obs} <= allowed "
            "{allowed} (certified hi {hi}) — {verdict}".format(
                backend=containment.get("backend", "?"),
                obs=_fmt_bytes(
                    int(containment.get("observed_peak_bytes", 0))
                ),
                allowed=_fmt_bytes(
                    int(containment.get("allowed_peak_bytes", 0))
                ),
                hi=_fmt_bytes(
                    int(containment.get("certified_hi_bytes", 0))
                ),
                verdict=verdict,
            )
        )
    return table


def worker_table(data: TraceData) -> str:
    """Real per-worker wall clock from multiprocess (procpool) runs.

    Each ``worker`` span carries the slice a worker process measured
    inside itself (``perf_counter`` start/end shipped over the result
    pipe), so the table shows genuinely parallel wall time — unlike the
    simulated per-worker makespan of the in-process engines."""
    from repro.workloads.harness import Row, format_table

    per_worker: Dict[int, Dict[str, Any]] = {}
    for attrs in data.worker_spans:
        worker = int(attrs.get("worker", 0))
        bucket = per_worker.setdefault(
            worker,
            {"supersteps": 0, "wall_s": 0.0, "vertices": 0, "work": 0,
             "pids": set()},
        )
        bucket["supersteps"] += 1
        bucket["wall_s"] += float(attrs.get("duration_wall", 0.0))
        bucket["vertices"] += int(attrs.get("vertices", 0))
        bucket["work"] += int(attrs.get("work", 0))
        if attrs.get("pid") is not None:
            bucket["pids"].add(int(attrs["pid"]))
    rows: List[Row] = []
    for worker in sorted(per_worker):
        bucket = per_worker[worker]
        rows.append(
            Row(
                f"partition {worker}",
                {
                    "supersteps": bucket["supersteps"],
                    "wall_s": f"{bucket['wall_s']:.6f}",
                    "vertices": bucket["vertices"],
                    "work": bucket["work"],
                    "pids": ",".join(str(p) for p in sorted(bucket["pids"]))
                    or "-",
                },
            )
        )
    table = format_table(
        rows,
        ["supersteps", "wall_s", "vertices", "work", "pids"],
        title="per-worker wall clock (real processes)",
        label_header="worker",
    )
    pool = data.procpool
    if pool is not None:
        table += (
            "\nprocpool [{method}]: {workers} workers, "
            "{lost} lost, {respawns} respawned, {hb} heartbeats, "
            "{dups} duplicate results discarded".format(
                method=pool.get("start_method", "?"),
                workers=pool.get("workers", "?"),
                lost=pool.get("workers_lost", 0),
                respawns=pool.get("respawns", 0),
                hb=pool.get("heartbeats", 0),
                dups=pool.get("duplicates_discarded", 0),
            )
        )
    return table


def multiquery_table(data: TraceData) -> str:
    """The shared-DAG view of a batched run: one row per DAG height
    (``shared-level`` spans) plus the sharing-counter summary line from
    the ``multiquery`` record/span."""
    from repro.workloads.harness import Row, format_table

    rows: List[Row] = []
    for attrs in sorted(
        data.shared_levels, key=lambda a: int(a.get("height", 0))
    ):
        kernel_s = attrs.get("kernel_time_s")
        rows.append(
            Row(
                f"height {attrs.get('height', '?')}",
                {
                    "nodes": attrs.get("nodes", 0),
                    "total_work": attrs.get("total_work", 0),
                    "kernel_s": (
                        f"{kernel_s:.6f}" if kernel_s is not None else "-"
                    ),
                },
            )
        )
    table = format_table(
        rows,
        ["nodes", "total_work", "kernel_s"],
        title="shared DAG (multi-query batch)",
        label_header="level",
    )
    stats = data.multiquery
    if stats is not None:
        table += (
            "\nmultiquery: {requests} requests, {shared} shared nodes, "
            "{saved}/{total} products saved, {slots_saved}/{slots_total} "
            "slot builds saved, {assemblies} assemblies".format(
                requests=stats.get("multiquery_requests", "?"),
                shared=stats.get("multiquery_nodes_shared", 0),
                saved=stats.get("multiquery_products_saved", 0),
                total=stats.get("multiquery_products_total", 0),
                slots_saved=stats.get("multiquery_slots_saved", 0),
                slots_total=stats.get("multiquery_slots_total", 0),
                assemblies=stats.get("multiquery_assemblies", 0),
            )
        )
    return table


def cache_table(data: TraceData) -> str:
    """Plan-cache and compact-snapshot cache effectiveness counters
    (kind ``cache``, last record wins — the counters are cumulative)."""
    from repro.workloads.harness import Row, format_table

    cache = data.cache or {}
    rows = [
        Row(key, {"value": cache[key]})
        for key in sorted(cache)
        if key != "kind"
    ]
    return format_table(
        rows,
        ["value"],
        title="cache effectiveness (plan cache + compact snapshot)",
        label_header="counter",
    )


def report_data(path: str) -> Dict[str, Any]:
    """The machine-readable counterpart of :func:`render_report`, used
    by ``repro.cli report --format json``."""
    data = load_trace(path)
    drift = data.drift_by_superstep()
    supersteps = []
    for attrs in data.sorted_supersteps():
        step = int(attrs.get("superstep", 0))
        row: Dict[str, Any] = dict(attrs)
        step_drift = drift.get(step)
        if step_drift is not None:
            row["drift"] = step_drift["drift"]
        supersteps.append(row)
    document: Dict[str, Any] = {
        "schema": "repro.obs.report/v1",
        "extraction": data.extraction,
        "supersteps": supersteps,
        "plan_drift": data.plan_drift,
        "plan_typing": data.plan_typing,
        "bounds": [a for a in data.drift if "bound" in a],
    }
    if data.profile_stacks:
        document["profile_stacks"] = data.profile_stacks
    if data.profile_summary is not None:
        document["profile_summary"] = data.profile_summary
    if data.memory_watermarks:
        document["memory_watermarks"] = data.memory_watermarks
    if data.memory_containment is not None:
        document["memory_containment"] = data.memory_containment
    if data.worker_spans:
        document["worker_spans"] = data.worker_spans
    if data.procpool is not None:
        document["procpool"] = data.procpool
    if data.cache is not None:
        document["cache"] = data.cache
    if data.multiquery is not None:
        document["multiquery"] = data.multiquery
    if data.shared_levels:
        document["shared_levels"] = data.shared_levels
    return document


def render_report(path: str) -> str:
    """Everything ``repro.cli report`` prints for one trace file."""
    data = load_trace(path)
    batched = bool(data.shared_levels or data.multiquery)
    if data.supersteps or not batched:
        # keep the no-superstep error for genuinely empty traces; a
        # pure batch trace has shared-level spans instead
        parts = [superstep_table(data)]
    else:
        parts = []
    if batched:
        parts.append(multiquery_table(data))
    if data.cache is not None:
        parts.append(cache_table(data))
    if any("bound" in attrs for attrs in data.drift):
        parts.append(bounds_table(data))
    if data.plan_typing:
        parts.append(plan_typing_table(data))
    if data.profile_stacks:
        parts.append(profile_table(data))
    if data.memory_watermarks or data.memory_containment is not None:
        parts.append(memory_table(data))
    if data.worker_spans or data.procpool is not None:
        parts.append(worker_table(data))
    if data.plan_drift is not None:
        plan = data.plan_drift
        parts.append(
            "plan drift [{strategy}]: estimated {est} intermediate paths, "
            "observed {obs} — drift {drift}".format(
                strategy=plan.get("strategy", "?"),
                est=_fmt(float(plan.get("estimated_paths", 0.0))),
                obs=_fmt(float(plan.get("observed_paths", 0))),
                drift=_fmt(float(plan.get("drift", 1.0))),
            )
        )
    return "\n\n".join(parts)
