"""Hierarchical spans and the tracer that records them.

A **span** is one timed phase of an extraction — ``extraction``,
``plan-selection``, ``bsp-run``, ``superstep``, ``worker`` — with wall
*and* CPU timings, free-form attributes, and point-in-time **events**
(checkpoint saved, sanitizer violation, …).  Spans nest: the tracer keeps
a stack, so whoever starts a span while another is open becomes its
child, which is how the extractor, the planner and the engines — none of
which know about each other's spans — produce one coherent tree.

Tracing must cost (almost) nothing when off.  :data:`NULL_TRACER` is a
shared no-op tracer whose ``enabled`` flag is ``False``; every
instrumented call site either calls its no-op methods (constant cost,
no allocation) or skips heavier recording behind ``if tracer.enabled``.

``make_tracer`` turns the user-facing ``trace=`` argument into a tracer:

======================  ====================================================
``None`` / ``False``    :data:`NULL_TRACER` (tracing off)
``True`` / ``"mem"``    in-memory tracer (inspect ``tracer.spans``)
a tracer instance       used as-is (caller owns export)
``"jsonl:PATH"``        record + export as a JSONL event log
``"chrome:PATH"``       record + export as Chrome trace-event JSON
``"prom:PATH"``         record + export instruments as Prometheus text
a bare path             format inferred: ``.jsonl`` / ``.json`` / ``.prom``
======================  ====================================================
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.instruments import InstrumentRegistry, default_registry

Attrs = Dict[str, Any]


class SpanEvent:
    """A point-in-time annotation attached to a span."""

    __slots__ = ("name", "ts", "attrs")

    def __init__(self, name: str, ts: float, attrs: Optional[Attrs] = None) -> None:
        self.name = name
        self.ts = ts
        self.attrs: Attrs = dict(attrs) if attrs else {}

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ts": self.ts, "attrs": self.attrs}


class Span:
    """One timed phase.  Created by :meth:`Tracer.start_span`."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start_wall",
        "end_wall",
        "start_cpu",
        "end_cpu",
        "attrs",
        "events",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_wall: float,
        start_cpu: float,
        attrs: Optional[Attrs] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_wall = start_wall
        self.end_wall: Optional[float] = None
        self.start_cpu = start_cpu
        self.end_cpu: Optional[float] = None
        self.attrs: Attrs = dict(attrs) if attrs else {}
        self.events: List[SpanEvent] = []

    # ------------------------------------------------------------------
    @property
    def duration_wall(self) -> float:
        end = self.end_wall if self.end_wall is not None else self.start_wall
        return end - self.start_wall

    @property
    def duration_cpu(self) -> float:
        end = self.end_cpu if self.end_cpu is not None else self.start_cpu
        return end - self.start_cpu

    def set_attr(self, name: str, value: Any) -> None:
        self.attrs[name] = value

    def set_attrs(self, attrs: Attrs) -> None:
        self.attrs.update(attrs)

    def add_event(self, name: str, attrs: Optional[Attrs] = None) -> SpanEvent:
        event = SpanEvent(name, time.perf_counter(), attrs)
        self.events.append(event)
        return event

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "duration_wall": self.duration_wall,
            "duration_cpu": self.duration_cpu,
            "attrs": self.attrs,
            "events": [event.as_dict() for event in self.events],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Span {self.name!r} id={self.span_id} "
            f"parent={self.parent_id} dur={self.duration_wall:.6f}s>"
        )


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "TracerBase", name: str, attrs: Optional[Attrs]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> "Span":
        self._span = self._tracer.start_span(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end_span(self._span)


class TracerBase:
    """Shared interface of :class:`Tracer` and :class:`NullTracer`."""

    enabled = True

    def span(self, name: str, attrs: Optional[Attrs] = None) -> _SpanContext:
        """``with tracer.span("phase"):`` — start/end around a block."""
        return _SpanContext(self, name, attrs)

    # the concrete methods below are overridden by both subclasses
    def start_span(self, name: str, attrs: Optional[Attrs] = None) -> Span:
        raise NotImplementedError  # pragma: no cover

    def end_span(self, span: Optional[Span]) -> None:
        raise NotImplementedError  # pragma: no cover


class Tracer(TracerBase):
    """Records a span tree, loose events, structured records and a view
    onto an instrument registry.

    Parameters
    ----------
    registry:
        Instrument registry to record into; defaults to the process-wide
        registry (:func:`repro.obs.instruments.default_registry`).
    sink:
        Optional ``(format, path)`` export target, normally set through
        :func:`make_tracer` specs; :meth:`export` writes it.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[InstrumentRegistry] = None,
        sink: Optional[Tuple[str, str]] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.sink = sink
        self.spans: List[Span] = []
        #: structured non-span records (drift rows etc.), exported verbatim
        self.records: List[Dict[str, Any]] = []
        #: attached :class:`repro.obs.profile.ProfileSession` (or ``None``);
        #: notified on every span start/end so frames and memory watermarks
        #: can be attributed to the span tree
        self.profiler: Optional[Any] = None
        self.start_time = time.perf_counter()
        self._stack: List[Span] = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, attrs: Optional[Attrs] = None) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=next(self._ids),
            parent_id=parent,
            name=name,
            start_wall=time.perf_counter(),
            start_cpu=time.process_time(),
            attrs=attrs,
        )
        self.spans.append(span)
        self._stack.append(span)
        if self.profiler is not None:
            self.profiler.on_span_start(span)
        return span

    def end_span(self, span: Optional[Span]) -> None:
        """Close ``span`` (and any dangling children still open under it)."""
        if span is None:
            return
        if span not in self._stack:
            raise ObservabilityError(
                f"span {span.name!r} (id {span.span_id}) is not open"
            )
        while self._stack:
            top = self._stack.pop()
            top.end_wall = time.perf_counter()
            top.end_cpu = time.process_time()
            if self.profiler is not None:
                self.profiler.on_span_end(top)
            if top is span:
                break

    def record_span(
        self,
        name: str,
        start_wall: float,
        end_wall: float,
        attrs: Optional[Attrs] = None,
        parent: Optional[Span] = None,
    ) -> Span:
        """Append an already-timed span (threaded workers measure their
        slice inside the thread and record it at the barrier)."""
        parent_id = (
            parent.span_id
            if parent is not None
            else (self._stack[-1].span_id if self._stack else None)
        )
        span = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            start_wall=start_wall,
            start_cpu=0.0,
            attrs=attrs,
        )
        span.end_wall = end_wall
        span.end_cpu = 0.0
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # events and records
    # ------------------------------------------------------------------
    def event(self, name: str, attrs: Optional[Attrs] = None) -> SpanEvent:
        """Attach an event to the innermost open span (or record it as a
        detached root-level record when no span is open)."""
        current = self.current()
        if current is not None:
            return current.add_event(name, attrs)
        event = SpanEvent(name, time.perf_counter(), attrs)
        self.records.append({"kind": "event", **event.as_dict()})
        return event

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append a structured record (e.g. one drift row)."""
        entry: Dict[str, Any] = {"kind": kind}
        entry.update(fields)
        self.records.append(entry)
        return entry

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export(self, path: Optional[str] = None, fmt: Optional[str] = None) -> str:
        """Write the trace to ``path`` (defaults to the configured sink).

        Returns the path written.  Raises
        :class:`~repro.errors.ObservabilityError` when neither an explicit
        target nor a sink is configured.
        """
        from repro.obs.exporters import export_trace

        if path is None:
            if self.sink is None:
                raise ObservabilityError(
                    "tracer has no export sink; pass path= (and fmt=) or "
                    "create it from a 'jsonl:PATH' / 'chrome:PATH' spec"
                )
            fmt, path = self.sink
        return export_trace(self, path, fmt)

    def root_spans(self) -> List[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, in start order."""
        return [span for span in self.spans if span.name == name]


class NullTracer(TracerBase):
    """A no-op tracer: every method returns immediately.

    All instrumented call sites hold a tracer reference, so "tracing off"
    is this object rather than ``None``-checks everywhere.  The shared
    null span/registry mean no allocation happens on the hot path.
    """

    enabled = False

    def __init__(self) -> None:
        self.registry = _NULL_REGISTRY
        self.sink: Optional[Tuple[str, str]] = None
        self.spans: List[Span] = []
        self.records: List[Dict[str, Any]] = []
        self.profiler: Optional[Any] = None

    def current(self) -> Optional[Span]:
        return None

    def start_span(self, name: str, attrs: Optional[Attrs] = None) -> Span:
        return _NULL_SPAN

    def end_span(self, span: Optional[Span]) -> None:
        return None

    def record_span(self, name, start_wall, end_wall, attrs=None, parent=None) -> Span:
        return _NULL_SPAN

    def event(self, name: str, attrs: Optional[Attrs] = None) -> SpanEvent:
        return _NULL_EVENT

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        return {}

    def export(self, path: Optional[str] = None, fmt: Optional[str] = None) -> str:
        raise ObservabilityError("cannot export from a disabled (null) tracer")

    def root_spans(self) -> List[Span]:
        return []

    def find(self, name: str) -> List[Span]:
        return []


class _NullSpan(Span):
    """The span handed out by :class:`NullTracer`: attribute writes and
    events vanish."""

    __slots__ = ()

    def set_attr(self, name: str, value: Any) -> None:
        return None

    def set_attrs(self, attrs: Attrs) -> None:
        return None

    def add_event(self, name: str, attrs: Optional[Attrs] = None) -> SpanEvent:
        return _NULL_EVENT


_NULL_SPAN = _NullSpan(span_id=0, parent_id=None, name="null", start_wall=0.0, start_cpu=0.0)
_NULL_EVENT = SpanEvent("null", 0.0)
_NULL_REGISTRY = InstrumentRegistry()

#: The shared tracing-off tracer.
NULL_TRACER = NullTracer()

#: extension → export format for bare-path trace specs
_EXT_FORMATS = {
    ".jsonl": "jsonl",
    ".json": "chrome",
    ".prom": "prometheus",
    ".txt": "prometheus",
    ".folded": "collapsed",
    ".collapsed": "collapsed",
}

TraceSpec = Union[None, bool, str, TracerBase]


def _format_for_path(path: str) -> str:
    for ext, fmt in _EXT_FORMATS.items():
        if path.endswith(ext):
            return fmt
    raise ObservabilityError(
        f"cannot infer a trace format from {path!r}; use an explicit "
        f"'jsonl:PATH', 'chrome:PATH' or 'prom:PATH' spec, or one of the "
        f"extensions {sorted(_EXT_FORMATS)}"
    )


def make_tracer(
    trace: TraceSpec, registry: Optional[InstrumentRegistry] = None
) -> TracerBase:
    """Resolve a user-facing ``trace=`` argument into a tracer (see the
    module docstring for the accepted specs)."""
    if trace is None or trace is False:
        return NULL_TRACER
    if isinstance(trace, TracerBase):
        return trace
    if trace is True:
        return Tracer(registry=registry)
    if isinstance(trace, str):
        if trace == "mem":
            return Tracer(registry=registry)
        for prefix, fmt in (
            ("jsonl:", "jsonl"),
            ("chrome:", "chrome"),
            ("prom:", "prometheus"),
            ("prometheus:", "prometheus"),
        ):
            if trace.startswith(prefix):
                path = trace[len(prefix):]
                if not path:
                    raise ObservabilityError(f"trace spec {trace!r} has no path")
                return Tracer(registry=registry, sink=(fmt, path))
        return Tracer(registry=registry, sink=(_format_for_path(trace), trace))
    raise ObservabilityError(
        f"unsupported trace spec {trace!r}; use None/True, a spec string "
        f"or a Tracer instance"
    )


def owns_tracer(trace: TraceSpec) -> bool:
    """Whether the component resolving ``trace`` owns the tracer's
    lifecycle (and should export its sink when the run finishes).  A
    tracer *instance* stays owned by whoever created it."""
    return not isinstance(trace, TracerBase)
