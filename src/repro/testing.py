"""Public verification helpers for downstream users.

Anyone extending the library — a custom aggregate, a new baseline, a
modified planner — needs the same correctness scaffolding our test suite
uses.  This module exposes it as API:

* :func:`assert_methods_agree` — run any set of extraction methods against
  the brute-force oracle on a given graph/pattern and raise with a precise
  diff on the first disagreement;
* :func:`assert_aggregate_consistent` — check a (claimed) distributive or
  algebraic aggregate end to end: Theorem 3's operator condition, plus
  partial-vs-basic execution equivalence on the given graph;
* :func:`crosscheck_plans` — extract under every strategy and assert all
  plans agree.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.aggregates.base import Aggregate
from repro.aggregates.classify import validate_aggregate
from repro.aggregates.library import path_count
from repro.baselines.bruteforce import extract_bruteforce
from repro.core.extractor import GraphExtractor
from repro.core.planner import STRATEGIES
from repro.errors import ReproError
from repro.graph.hetgraph import HeterogeneousGraph
from repro.graph.pattern import LinePattern
from repro.workloads.harness import run_method


class VerificationError(ReproError, AssertionError):
    """An equivalence check failed; the message carries the value diff."""


def assert_methods_agree(
    graph: HeterogeneousGraph,
    pattern: LinePattern,
    aggregate: Optional[Aggregate] = None,
    methods: Sequence[str] = ("pge", "pge-basic", "graphdb", "matrix", "rpq"),
    num_workers: int = 2,
    rel_tol: float = 1e-9,
) -> None:
    """Every named method must match the brute-force oracle exactly."""
    aggregate = aggregate if aggregate is not None else path_count()
    oracle = extract_bruteforce(graph, pattern, aggregate)
    for method in methods:
        result = run_method(
            method, graph, pattern, aggregate=aggregate, num_workers=num_workers
        )
        if not result.graph.equals(oracle.graph, rel_tol=rel_tol):
            diff = result.graph.diff(oracle.graph, rel_tol=rel_tol)
            raise VerificationError(
                f"method {method!r} disagrees with the oracle on "
                f"{pattern}: " + "; ".join(diff[:5])
            )


def assert_aggregate_consistent(
    graph: HeterogeneousGraph,
    pattern: LinePattern,
    aggregate: Aggregate,
    rel_tol: float = 1e-7,
) -> None:
    """Validate a custom aggregate end to end.

    Checks, in order: the taxonomy declaration (Theorem 3's condition for
    distributive/algebraic aggregates, on both the declared operators and
    the actual ``concat``/``merge`` implementation), oracle agreement in
    basic mode, and — when partial aggregation is claimed —
    partial-vs-basic equivalence.  Every failure raises
    :class:`VerificationError`.
    """
    from repro.aggregates.base import AggregationError
    from repro.lint.contracts import AggregateContractChecker

    validate_aggregate(aggregate)
    try:
        AggregateContractChecker().verify(aggregate)
    except AggregationError as exc:
        raise VerificationError(str(exc)) from exc
    # contracts are vetted above; skip the extractor's own verify pass
    extractor = GraphExtractor(graph, num_workers=2, verify=False)
    oracle = extract_bruteforce(graph, pattern, aggregate)
    basic = extractor.extract(pattern, aggregate, partial_aggregation=False)
    if not basic.graph.equals(oracle.graph, rel_tol=rel_tol):
        raise VerificationError(
            f"aggregate {aggregate.name!r}: basic-mode extraction disagrees "
            f"with literal two-level evaluation: "
            + "; ".join(basic.graph.diff(oracle.graph, rel_tol=rel_tol)[:5])
        )
    if aggregate.supports_partial_aggregation:
        partial = extractor.extract(pattern, aggregate, partial_aggregation=True)
        if not partial.graph.equals(oracle.graph, rel_tol=rel_tol):
            raise VerificationError(
                f"aggregate {aggregate.name!r}: partial aggregation changes "
                f"the result — its ⊗ likely does not distribute over its ⊕ "
                f"on this data: "
                + "; ".join(partial.graph.diff(oracle.graph, rel_tol=rel_tol)[:5])
            )


def crosscheck_plans(
    graph: HeterogeneousGraph,
    pattern: LinePattern,
    aggregate: Optional[Aggregate] = None,
    strategies: Iterable[str] = STRATEGIES,
    num_workers: int = 2,
    rel_tol: float = 1e-9,
) -> None:
    """Every plan strategy must produce the identical extracted graph."""
    aggregate = aggregate if aggregate is not None else path_count()
    reference = None
    reference_strategy = None
    for strategy in strategies:
        extractor = GraphExtractor(
            graph, num_workers=num_workers, strategy=strategy
        )
        result = extractor.extract(pattern, aggregate)
        if reference is None:
            reference, reference_strategy = result.graph, strategy
        elif not result.graph.equals(reference, rel_tol=rel_tol):
            raise VerificationError(
                f"strategies {reference_strategy!r} and {strategy!r} "
                f"disagree on {pattern}: "
                + "; ".join(result.graph.diff(reference, rel_tol=rel_tol)[:5])
            )
