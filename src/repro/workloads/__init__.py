"""Named paper workloads and the experiment harness."""

from __future__ import annotations

from repro.workloads.discovery import (
    discover,
    enumerate_patterns,
    rank_patterns,
    symmetric_patterns,
)
from repro.workloads.harness import (
    METHODS,
    Row,
    format_table,
    reference_graph,
    run_method,
    run_workload,
    summarize,
)
from repro.workloads.patterns import (
    HEAVY_PATTERNS,
    LIGHT_PATTERNS,
    WORKLOADS,
    Workload,
    get_workload,
    workloads_for_dataset,
)

__all__ = [
    "HEAVY_PATTERNS",
    "LIGHT_PATTERNS",
    "METHODS",
    "Row",
    "WORKLOADS",
    "Workload",
    "discover",
    "enumerate_patterns",
    "format_table",
    "get_workload",
    "rank_patterns",
    "symmetric_patterns",
    "reference_graph",
    "run_method",
    "run_workload",
    "summarize",
    "workloads_for_dataset",
]
