"""Metapath discovery: enumerate and rank candidate line patterns.

Designing a line pattern "requires domain knowledge" (§6.1) — but the
*candidate space* is mechanical: every walk through the schema's type
graph between the two endpoint labels is a well-formed line pattern.
This module enumerates that space and ranks candidates by their estimated
result size, so an analyst can shortlist metapaths before paying for an
extraction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.cost import CostModel
from repro.errors import PatternError
from repro.graph.hetgraph import HeterogeneousGraph
from repro.graph.pattern import Direction, LinePattern, PatternEdge
from repro.graph.schema import GraphSchema
from repro.graph.stats import GraphStatistics


def enumerate_patterns(
    schema: GraphSchema,
    start_label: str,
    end_label: str,
    max_length: int,
    min_length: int = 1,
    allow_backward: bool = True,
    max_patterns: int = 10_000,
) -> List[LinePattern]:
    """All line patterns of length ``min_length..max_length`` between the
    two labels that are satisfiable under ``schema``.

    ``allow_backward=False`` restricts to patterns whose every slot
    follows edge direction (pure forward metapaths).  Enumeration is
    capped at ``max_patterns`` candidates (raises
    :class:`~repro.errors.PatternError` when exceeded, so an explosive
    schema fails loudly instead of silently truncating).
    """
    if not 1 <= min_length <= max_length:
        raise PatternError(
            f"need 1 <= min_length <= max_length, got {min_length}, {max_length}"
        )
    schema.validate_vertex(start_label)
    schema.validate_vertex(end_label)

    moves: dict = {}
    for edge_type in schema.edge_types:
        moves.setdefault(edge_type.src, []).append(
            (edge_type.label, Direction.FORWARD, edge_type.dst)
        )
        if allow_backward:
            moves.setdefault(edge_type.dst, []).append(
                (edge_type.label, Direction.BACKWARD, edge_type.src)
            )

    results: List[LinePattern] = []

    def walk(labels: List[str], edges: List[PatternEdge]) -> None:
        if len(results) > max_patterns:
            raise PatternError(
                f"more than {max_patterns} candidate patterns between "
                f"{start_label!r} and {end_label!r}; raise max_patterns or "
                f"lower max_length"
            )
        length = len(edges)
        if length >= min_length and labels[-1] == end_label:
            results.append(LinePattern(labels, edges))
        if length == max_length:
            return
        for edge_label, direction, nxt in sorted(
            moves.get(labels[-1], ()), key=lambda m: (m[0], m[1].value, m[2])
        ):
            walk(labels + [nxt], edges + [PatternEdge(edge_label, direction)])

    walk([start_label], [])
    return results


def symmetric_patterns(patterns: List[LinePattern]) -> List[LinePattern]:
    """The subset equal to their own reverse (the paper's SP class)."""
    return [p for p in patterns if p.is_symmetric()]


def rank_patterns(
    graph: HeterogeneousGraph,
    patterns: List[LinePattern],
    stats: Optional[GraphStatistics] = None,
    drop_empty: bool = True,
) -> List[Tuple[LinePattern, float]]:
    """Rank candidate patterns by their estimated number of matching paths
    (uniform estimator), largest first.

    ``drop_empty`` removes candidates whose estimate is zero (some slot
    has no matching edges in this particular graph).
    """
    if stats is None:
        stats = GraphStatistics.collect(graph)
    ranked = []
    for pattern in patterns:
        estimate = CostModel(pattern, stats).segment_count(0, pattern.length)
        if drop_empty and estimate == 0:
            continue
        ranked.append((pattern, estimate))
    ranked.sort(key=lambda item: (-item[1], str(item[0])))
    return ranked


def discover(
    graph: HeterogeneousGraph,
    start_label: str,
    end_label: str,
    max_length: int,
    top: int = 10,
    only_symmetric: bool = False,
) -> List[Tuple[LinePattern, float]]:
    """One-call discovery: enumerate, optionally keep symmetric patterns,
    rank by estimated result size, return the top candidates."""
    candidates = enumerate_patterns(
        graph.schema, start_label, end_label, max_length
    )
    if only_symmetric:
        candidates = symmetric_patterns(candidates)
    return rank_patterns(graph, candidates)[:top]
