"""Experiment harness: runs method × pattern × configuration grids and
formats paper-style tables.

Every benchmark in ``benchmarks/`` is a thin wrapper around this module,
so the table/figure reproductions stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, Optional, Sequence

from repro.aggregates.base import Aggregate
from repro.aggregates.library import path_count
from repro.baselines.graphdb import extract_graphdb
from repro.baselines.matrix import extract_matrix
from repro.baselines.rpq import extract_rpq
from repro.core.extractor import GraphExtractor
from repro.core.result import ExtractionResult
from repro.datasets.dblp import generate_dblp
from repro.datasets.patent import generate_patent
from repro.errors import DatasetError
from repro.graph.hetgraph import HeterogeneousGraph
from repro.graph.pattern import LinePattern
from repro.workloads.patterns import get_workload

#: Methods the harness can dispatch to.
METHODS = ("pge", "pge-basic", "graphdb", "matrix", "rpq", "rpq-merged")


@lru_cache(maxsize=8)
def reference_graph(dataset: str, scale: float = 1.0, seed: int = 0) -> HeterogeneousGraph:
    """The benchmark-scale synthetic dataset, cached per (dataset, scale).

    ``scale`` multiplies every vertex-count parameter, so experiments can
    shrink the workload without changing its shape.
    """
    if dataset == "dblp":
        return generate_dblp(
            n_authors=max(int(1200 * scale), 10),
            n_papers=max(int(2000 * scale), 10),
            n_venues=max(int(60 * scale), 4),
            seed=42 + seed,
        )
    if dataset == "patent":
        return generate_patent(
            n_inventors=max(int(1000 * scale), 10),
            n_patents=max(int(1800 * scale), 10),
            n_locations=max(int(50 * scale), 4),
            n_categories=max(int(36 * scale), 4),
            seed=2018 + seed,
        )
    raise DatasetError(f"unknown dataset {dataset!r}; use 'dblp' or 'patent'")


def run_method(
    method: str,
    graph: HeterogeneousGraph,
    pattern: LinePattern,
    aggregate: Optional[Aggregate] = None,
    num_workers: int = 10,
    strategy: str = "hybrid",
    trace=None,
    backend: str = "bsp",
) -> ExtractionResult:
    """Run one extraction with the named method.

    * ``pge`` — the framework with partial aggregation (Algorithm 3);
    * ``pge-basic`` — the framework, full path materialisation (Alg. 2);
    * ``graphdb`` / ``matrix`` — the standalone baselines (§6.4);
    * ``rpq`` — the RPQ frontier baseline (§6.5); ``rpq-merged`` is its
      partial-merging ablation.

    ``trace`` is an observability spec (see
    :func:`repro.obs.spans.make_tracer`) honoured by the framework
    methods; the standalone baselines ignore it (they do not run on the
    BSP engine).  ``backend`` selects the framework execution backend
    (``"bsp"`` or ``"vectorized"``, see :mod:`repro.accel`); the
    baselines ignore it too.
    """
    aggregate = aggregate or path_count()
    if method in ("pge", "pge-basic"):
        extractor = GraphExtractor(
            graph,
            num_workers=num_workers,
            strategy=strategy,
            partial_aggregation=(method == "pge"),
            trace=trace,
            backend=backend,
        )
        return extractor.extract(pattern, aggregate)
    if method == "graphdb":
        return extract_graphdb(graph, pattern, aggregate)
    if method == "matrix":
        return extract_matrix(graph, pattern, aggregate)
    if method in ("rpq", "rpq-merged"):
        return extract_rpq(
            graph,
            pattern,
            aggregate,
            num_workers=num_workers,
            merge_partials=(method == "rpq-merged"),
        )
    raise DatasetError(f"unknown method {method!r}; available: {METHODS}")


def run_workload(
    name: str,
    method: str = "pge",
    scale: float = 1.0,
    num_workers: int = 10,
    strategy: str = "hybrid",
    aggregate: Optional[Aggregate] = None,
    backend: str = "bsp",
) -> ExtractionResult:
    """Run a named paper workload end to end."""
    workload = get_workload(name)
    graph = reference_graph(workload.dataset, scale)
    return run_method(
        method,
        graph,
        workload.pattern,
        aggregate=aggregate,
        num_workers=num_workers,
        strategy=strategy,
        backend=backend,
    )


# ----------------------------------------------------------------------
# tabular reporting
# ----------------------------------------------------------------------
@dataclass
class Row:
    """One row of an experiment table."""

    label: str
    values: Dict[str, Any] = field(default_factory=dict)


def format_table(
    rows: Sequence[Row],
    columns: Sequence[str],
    title: Optional[str] = None,
    label_header: str = "workload",
) -> str:
    """Render rows as an aligned plain-text table (the benchmark output
    format, mirroring the paper's tables)."""

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.3f}"
        return str(value)

    headers = [label_header] + list(columns)
    body = [
        [row.label] + [fmt(row.values.get(col, "-")) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def summarize(result: ExtractionResult, keys: Sequence[str]) -> Dict[str, Any]:
    """Pick the requested summary keys from a result."""
    summary = result.summary()
    return {key: summary.get(key) for key in keys}
