"""The paper's nine named line patterns (§6.1, Figures 6-7, Table 1).

Each pattern is registered with the dataset it runs on.  The light/heavy
split follows Table 1's criterion — the size of each pattern's result —
measured on our synthetic datasets (the catalog benchmark regenerates the
classification from data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import PatternError
from repro.graph.pattern import LinePattern


@dataclass(frozen=True)
class Workload:
    """A named pattern bound to its dataset."""

    name: str
    dataset: str  # "dblp" or "patent"
    pattern: LinePattern
    kind: str  # "BP" (bipartite) or "SP" (symmetry)
    description: str


def _w(name: str, dataset: str, text: str, description: str) -> Workload:
    kind = "BP" if "BP" in name else "SP"
    return Workload(
        name=name,
        dataset=dataset,
        pattern=LinePattern.parse(text, name=name),
        kind=kind,
        description=description,
    )


#: All nine named workloads of the paper's experimental study.
WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        _w(
            "dblp-BP1",
            "dblp",
            "Author -[authorBy]-> Paper -[publishAt]-> Venue",
            "publish relation between authors and venues",
        ),
        _w(
            "dblp-SP1",
            "dblp",
            "Author -[authorBy]-> Paper <-[authorBy]- Author",
            "co-authorship among authors",
        ),
        _w(
            "dblp-SP2",
            "dblp",
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author",
            "authors who publish papers at the same venue",
        ),
        _w(
            "dblp-SP3",
            "dblp",
            "Venue <-[publishAt]- Paper <-[authorBy]- Author "
            "-[authorBy]-> Paper -[publishAt]-> Venue",
            "venues where papers of the same author are published",
        ),
        _w(
            "patent-BP1",
            "patent",
            "Location <-[locatedAt]- Patent -[belongTo]-> Category",
            "relation between locations and categories of patents",
        ),
        _w(
            "patent-BP2",
            "patent",
            "Inventor -[invents]-> Patent -[citeBy]-> Patent -[citeBy]-> Patent",
            "two-hop citation relation between inventors and patents",
        ),
        _w(
            "patent-SP1",
            "patent",
            "Inventor -[invents]-> Patent <-[invents]- Inventor",
            "co-inventor relation among inventors",
        ),
        _w(
            "patent-SP2",
            "patent",
            "Location <-[locatedAt]- Patent -[citeBy]-> Patent -[locatedAt]-> Location",
            "citation relation among locations",
        ),
        _w(
            "patent-SP3",
            "patent",
            "Inventor -[invents]-> Patent -[citeBy]-> Patent <-[invents]- Inventor",
            "citation relation among inventors",
        ),
    ]
}

#: Table 1's light/heavy split, determined by each pattern's result size
#: (final matched paths) on the reference-scale synthetic datasets; the
#: threshold is :data:`HEAVY_THRESHOLD` final paths.  The catalog benchmark
#: (``benchmarks/test_table1_pattern_catalog.py``) re-measures and asserts
#: this classification.
HEAVY_THRESHOLD = 12_000

LIGHT_PATTERNS: List[str] = [
    "dblp-BP1",
    "dblp-SP3",
    "patent-BP1",
    "patent-SP2",
    "patent-SP3",
]
HEAVY_PATTERNS: List[str] = [
    "dblp-SP1",
    "dblp-SP2",
    "patent-BP2",
    "patent-SP1",
]


def get_workload(name: str) -> Workload:
    """Look up a named workload; raises with the available names."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise PatternError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def workloads_for_dataset(dataset: str) -> List[Workload]:
    """All workloads defined on ``dataset`` ('dblp' or 'patent')."""
    return [w for w in WORKLOADS.values() if w.dataset == dataset]
