"""Cross-backend equivalence: the vectorized semiring backend must give
byte-identical edge sets (and tolerance-equal values) to the BSP
evaluator — on random graphs, every planner strategy, both BSP modes,
and every semiring aggregate in the library."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import library
from repro.core.extractor import GraphExtractor
from repro.core.planner import STRATEGIES, make_plan
from repro.graph.pattern import LinePattern
from repro.workloads.harness import reference_graph, run_method
from repro.workloads.patterns import WORKLOADS

from tests.conftest import COAUTHOR_EXPECTED
from tests.test_properties import graphs, patterns

#: Every library aggregate the semiring backend handles natively — all
#: distributive and algebraic factories (holistic ones fall back to BSP).
SEMIRING_FACTORIES = [
    library.path_count,
    library.weighted_path_count,
    library.max_min,
    library.min_max,
    library.add_max,
    library.sum_min,
    library.exists_path,
    library.avg_path_value,
    library.std_path_value,
]


def _extract(graph, pattern, aggregate, plan, backend, partial=True):
    extractor = GraphExtractor(
        graph,
        num_workers=2,
        partial_aggregation=partial,
        backend=backend,
    )
    return extractor.extract(pattern, aggregate, plan=plan)


class TestHypothesisEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        graph=graphs(),
        pattern=patterns(max_length=4),
        factory_index=st.integers(
            min_value=0, max_value=len(SEMIRING_FACTORIES) - 1
        ),
        strategy=st.sampled_from(STRATEGIES),
    )
    def test_vectorized_matches_bsp_partial(
        self, graph, pattern, factory_index, strategy
    ):
        factory = SEMIRING_FACTORIES[factory_index]
        plan = make_plan(pattern, strategy, graph=graph)
        bsp = _extract(graph, pattern, factory(), plan, "bsp")
        vec = _extract(graph, pattern, factory(), plan, "vectorized")
        assert set(vec.graph.edges) == set(bsp.graph.edges)
        assert vec.graph.equals(bsp.graph, rel_tol=1e-7), vec.graph.diff(
            bsp.graph
        )

    @settings(max_examples=20, deadline=None)
    @given(
        graph=graphs(),
        pattern=patterns(max_length=3),
        factory_index=st.integers(
            min_value=0, max_value=len(SEMIRING_FACTORIES) - 1
        ),
    )
    def test_vectorized_matches_bsp_basic(
        self, graph, pattern, factory_index
    ):
        factory = SEMIRING_FACTORIES[factory_index]
        plan = make_plan(pattern, "iter_opt", graph=graph)
        bsp = _extract(graph, pattern, factory(), plan, "bsp", partial=False)
        vec = _extract(graph, pattern, factory(), plan, "vectorized")
        assert vec.graph.equals(bsp.graph, rel_tol=1e-7), vec.graph.diff(
            bsp.graph
        )


class TestCounterEquivalence:
    """The vectorized run must feed the same RunMetrics the BSP partial
    mode reports — drift tracking and reports depend on the counters."""

    @pytest.mark.parametrize(
        "factory", SEMIRING_FACTORIES, ids=lambda f: f.__name__
    )
    def test_partial_counters_match(self, scholarly, factory):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author "
            "-[authorBy]-> Paper"
        )
        plan = make_plan(pattern, "iter_opt", graph=scholarly)
        bsp = _extract(scholarly, pattern, factory(), plan, "bsp")
        vec = _extract(scholarly, pattern, factory(), plan, "vectorized")
        for counter in ("intermediate_paths", "final_paths", "result_edges"):
            assert vec.metrics.counters.get(counter, 0) == bsp.metrics.counters.get(
                counter, 0
            ), counter
        node_counters = {
            name: value
            for name, value in bsp.metrics.counters.items()
            if name.startswith("node_paths:")
        }
        for name, value in node_counters.items():
            assert vec.metrics.counters.get(name) == value, name

    def test_superstep_count_matches(self, scholarly, coauthor_pattern):
        plan = make_plan(coauthor_pattern, "iter_opt", graph=scholarly)
        bsp = _extract(
            scholarly, coauthor_pattern, library.path_count(), plan, "bsp"
        )
        vec = _extract(
            scholarly, coauthor_pattern, library.path_count(), plan, "vectorized"
        )
        assert (
            vec.metrics.num_supersteps == bsp.metrics.num_supersteps
        )


class TestKnownValues:
    def test_coauthor_counts_on_scholarly(self, scholarly, coauthor_pattern):
        extractor = GraphExtractor(scholarly, backend="vectorized")
        result = extractor.extract(coauthor_pattern, library.path_count())
        assert result.graph.edges == COAUTHOR_EXPECTED

    def test_length_one_pattern(self, scholarly):
        pattern = LinePattern.parse("Paper -[citeBy]-> Paper")
        extractor = GraphExtractor(scholarly, backend="vectorized")
        result = extractor.extract(pattern, library.path_count())
        assert result.graph.edges == {(12, 11): 1.0, (13, 12): 1.0}


class TestWorkloadCatalog:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_full_catalog_equivalence(self, name):
        workload = WORKLOADS[name]
        graph = reference_graph(workload.dataset, scale=0.05)
        bsp = run_method("pge", graph, workload.pattern, num_workers=4)
        vec = run_method(
            "pge", graph, workload.pattern, backend="vectorized"
        )
        assert set(vec.graph.edges) == set(bsp.graph.edges)
        assert vec.graph.equals(bsp.graph, rel_tol=1e-7), vec.graph.diff(
            bsp.graph
        )
