"""Tests for the compact CSR snapshot layer (repro.accel.compact)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.compact import CompactGraph
from repro.errors import EngineError
from repro.graph.filters import VertexFilter
from repro.graph.hetgraph import ANY_LABEL, HeterogeneousGraph
from repro.graph.pattern import Direction, PatternEdge

from tests.conftest import A1, A2, P1, build_scholarly


class TestBuild:
    def test_vertex_index_roundtrip(self, scholarly):
        compact = CompactGraph.build(scholarly)
        assert compact.num_vertices == scholarly.num_vertices()
        for i, vid in enumerate(compact.vids.tolist()):
            assert compact.index[vid] == i

    def test_label_interning_matches_graph(self, scholarly):
        compact = CompactGraph.build(scholarly)
        for i, vid in enumerate(compact.vids.tolist()):
            code = int(compact.vertex_label_codes[i])
            assert compact.vertex_labels[code] == scholarly.label_of(vid)

    def test_triples_per_label(self, scholarly):
        compact = CompactGraph.build(scholarly)
        for label in ("authorBy", "publishAt", "citeBy"):
            src, dst, weight = compact.triples(label)
            assert len(src) == len(dst) == len(weight)
            assert len(src) == scholarly.count_edge_label(label)
            assert compact.edge_count(label) == len(src)

    def test_unknown_label_is_empty(self, scholarly):
        compact = CompactGraph.build(scholarly)
        src, dst, weight = compact.triples("nope")
        assert len(src) == len(dst) == len(weight) == 0
        assert compact.edge_count("nope") == 0

    def test_parallel_edges_preserved_in_triples(self):
        g = HeterogeneousGraph()
        g.add_vertex(1, "A")
        g.add_vertex(2, "B")
        g.add_edge(1, 2, "x", 2.0)
        g.add_edge(1, 2, "x", 3.0)
        compact = CompactGraph.build(g)
        src, dst, weight = compact.triples("x")
        assert len(src) == 2
        assert sorted(weight.tolist()) == [2.0, 3.0]


class TestSlotTriples:
    def test_forward_matches_graph_orientation(self, scholarly):
        compact = CompactGraph.build(scholarly)
        src, dst, _ = compact.slot_triples(PatternEdge("authorBy", Direction.FORWARD))
        pairs = {
            (compact.vids[r], compact.vids[c])
            for r, c in zip(src.tolist(), dst.tolist())
        }
        assert (A1, P1) in pairs
        assert (P1, A1) not in pairs

    def test_backward_swaps_orientation(self, scholarly):
        compact = CompactGraph.build(scholarly)
        src, dst, _ = compact.slot_triples(PatternEdge("authorBy", Direction.BACKWARD))
        pairs = {
            (compact.vids[r], compact.vids[c])
            for r, c in zip(src.tolist(), dst.tolist())
        }
        assert (P1, A1) in pairs
        assert (A1, P1) not in pairs

    def test_any_concatenates_both_orientations(self, scholarly):
        compact = CompactGraph.build(scholarly)
        fwd = compact.slot_triples(PatternEdge("citeBy", Direction.FORWARD))
        both = compact.slot_triples(PatternEdge("citeBy", Direction.ANY))
        assert len(both[0]) == 2 * len(fwd[0])


class TestAdjacency:
    def test_out_in_are_transposes(self, scholarly):
        compact = CompactGraph.build(scholarly)
        out = compact.adjacency("citeBy", "out")
        into = compact.adjacency("citeBy", "in")
        assert (out.T != into).nnz == 0

    def test_parallel_edge_weights_summed(self):
        g = HeterogeneousGraph()
        g.add_vertex(1, "A")
        g.add_vertex(2, "B")
        g.add_edge(1, 2, "x", 2.0)
        g.add_edge(1, 2, "x", 3.0)
        compact = CompactGraph.build(g)
        out = compact.adjacency("x")
        assert out[compact.index[1], compact.index[2]] == 5.0

    def test_cached_per_label_direction(self, scholarly):
        compact = CompactGraph.build(scholarly)
        assert compact.adjacency("citeBy") is compact.adjacency("citeBy")

    def test_bad_direction_raises(self, scholarly):
        compact = CompactGraph.build(scholarly)
        with pytest.raises(EngineError):
            compact.adjacency("citeBy", "sideways")


class TestMasks:
    def test_label_mask_matches_vertices_matching(self, scholarly):
        compact = CompactGraph.build(scholarly)
        for label in ("Author", "Paper", "Venue"):
            mask = compact.label_mask(label)
            matched = {
                compact.vids[i] for i in np.flatnonzero(mask).tolist()
            }
            assert matched == set(scholarly.vertices_matching(label))

    def test_any_label_matches_all(self, scholarly):
        compact = CompactGraph.build(scholarly)
        assert compact.label_mask(ANY_LABEL).all()

    def test_unknown_label_matches_none(self, scholarly):
        compact = CompactGraph.build(scholarly)
        assert not compact.label_mask("Ghost").any()

    def test_filter_mask_uses_vertex_attrs(self):
        g = HeterogeneousGraph()
        g.add_vertex(1, "Paper", {"year": 2008})
        g.add_vertex(2, "Paper", {"year": 2014})
        g.add_vertex(3, "Paper")  # missing attr never matches
        compact = CompactGraph.build(g)
        mask = compact.filter_mask(VertexFilter("year", "ge", 2010))
        matched = {compact.vids[i] for i in np.flatnonzero(mask).tolist()}
        assert matched == {2}

    def test_masks_are_cached(self, scholarly):
        compact = CompactGraph.build(scholarly)
        assert compact.label_mask("Author") is compact.label_mask("Author")
        recent = VertexFilter("year", "ge", 2010)
        assert compact.filter_mask(recent) is compact.filter_mask(recent)


class TestSnapshotCache:
    def test_to_compact_reuses_snapshot(self, scholarly):
        assert scholarly.to_compact() is scholarly.to_compact()

    def test_mutation_invalidates_snapshot(self, scholarly):
        before = scholarly.to_compact()
        scholarly.add_edge(A2, P1, "authorBy")
        after = scholarly.to_compact()
        assert after is not before
        assert after.version > before.version
        assert after.edge_count("authorBy") == before.edge_count("authorBy") + 1

    def test_snapshot_records_graph_version(self, scholarly):
        compact = scholarly.to_compact()
        assert compact.version == scholarly.version
