"""Backend selection and fallback: a vectorized request the run cannot
express must fall back to BSP — logged, recorded, traced, and never a
silent wrong answer."""

from __future__ import annotations

import logging

import pytest

from repro.aggregates import library
from repro.cli import main
from repro.core.extractor import GraphExtractor
from repro.errors import EngineError
from repro.faults import FaultPlan
from repro.obs.spans import Tracer


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBackendValidation:
    def test_unknown_backend_at_init(self, scholarly):
        with pytest.raises(EngineError, match="unknown backend"):
            GraphExtractor(scholarly, backend="quantum")

    def test_unknown_backend_at_extract(self, scholarly, coauthor_pattern):
        extractor = GraphExtractor(scholarly)
        with pytest.raises(EngineError, match="unknown backend"):
            extractor.extract(coauthor_pattern, backend="quantum")

    def test_extract_overrides_extractor_backend(
        self, scholarly, coauthor_pattern
    ):
        extractor = GraphExtractor(scholarly, backend="bsp")
        extractor.extract(
            coauthor_pattern, library.path_count(), backend="vectorized"
        )
        assert extractor.last_backend == "vectorized"


class TestFallbackReasons:
    def _extract(self, scholarly, pattern, caplog, **kwargs):
        extractor = GraphExtractor(scholarly, backend="vectorized")
        with caplog.at_level(logging.INFO, logger="repro.accel"):
            result = extractor.extract(pattern, **kwargs)
        return extractor, result

    def test_semiring_aggregate_stays_vectorized(
        self, scholarly, coauthor_pattern, caplog
    ):
        extractor, _ = self._extract(
            scholarly, coauthor_pattern, caplog, aggregate=library.path_count()
        )
        assert extractor.last_backend == "vectorized"
        assert extractor.last_fallback_reason is None
        assert not caplog.records

    def test_holistic_falls_back(self, scholarly, coauthor_pattern, caplog):
        extractor, result = self._extract(
            scholarly,
            coauthor_pattern,
            caplog,
            aggregate=library.median_path_value(),
        )
        assert extractor.last_backend == "bsp"
        assert "holistic" in extractor.last_fallback_reason
        assert any(
            "falling back to bsp" in record.getMessage()
            for record in caplog.records
        )
        # the fallback still computes the right answer
        assert result.graph.num_edges() > 0

    def test_trace_falls_back(self, scholarly, coauthor_pattern, caplog):
        extractor, result = self._extract(
            scholarly, coauthor_pattern, caplog, trace=True
        )
        assert extractor.last_backend == "bsp"
        assert "trace" in extractor.last_fallback_reason
        assert result.traced_paths is not None

    def test_sanitize_falls_back(self, scholarly, coauthor_pattern, caplog):
        extractor, _ = self._extract(
            scholarly, coauthor_pattern, caplog, sanitize=True
        )
        assert extractor.last_backend == "bsp"
        assert "sanitize" in extractor.last_fallback_reason

    def test_resilience_falls_back(self, scholarly, coauthor_pattern, caplog):
        extractor, _ = self._extract(
            scholarly, coauthor_pattern, caplog, resilience=True
        )
        assert extractor.last_backend == "bsp"
        assert "BSP engine" in extractor.last_fallback_reason

    def test_fault_plan_falls_back(self, scholarly, coauthor_pattern, caplog):
        extractor, _ = self._extract(
            scholarly, coauthor_pattern, caplog, faults=FaultPlan([])
        )
        assert extractor.last_backend == "bsp"
        assert extractor.last_fallback_reason is not None

    def test_fallback_event_in_trace(self, scholarly, coauthor_pattern):
        tracer = Tracer()
        extractor = GraphExtractor(scholarly, backend="vectorized")
        extractor.extract(
            coauthor_pattern,
            library.median_path_value(),
            tracer=tracer,
        )
        extraction = next(s for s in tracer.spans if s.name == "extraction")
        assert extraction.attrs["backend"] == "bsp"
        assert any(e.name == "backend-fallback" for e in extraction.events)


class TestVectorizedTrace:
    def test_span_shape(self, scholarly, coauthor_pattern):
        tracer = Tracer()
        extractor = GraphExtractor(scholarly, backend="vectorized")
        extractor.extract(
            coauthor_pattern, library.path_count(), tracer=tracer
        )
        names = {span.name for span in tracer.spans}
        assert {"extraction", "engine-run", "superstep", "worker"} <= names
        supersteps = [s for s in tracer.spans if s.name == "superstep"]
        assert supersteps
        for span in supersteps:
            assert span.attrs["backend"] == "vectorized"
            assert "kernel_time_s" in span.attrs
        extraction = next(s for s in tracer.spans if s.name == "extraction")
        assert extraction.attrs["backend"] == "vectorized"


class TestCliBackend:
    def test_extract_vectorized_summary(self, capsys):
        code, out, err = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--backend", "vectorized",
        )
        assert code == 0
        assert "vectorized" in out
        assert "fell back" not in err

    def test_extract_fallback_note_on_stderr(self, capsys):
        code, out, err = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--backend", "vectorized",
            "--aggregate", "median",
        )
        assert code == 0
        assert "fell back to bsp" in err
        assert "holistic" in err

    def test_compare_accepts_backend(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "compare", "--workload", "dblp-SP1", "--scale", "0.05",
            "--methods", "pge", "--backend", "vectorized",
        )
        assert code == 0
        assert "pge" in out

    def test_report_renders_kernel_column(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code, _, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--backend", "vectorized",
            "--trace-out", str(trace),
        )
        assert code == 0
        code, out, _ = run_cli(capsys, "report", str(trace))
        assert code == 0
        assert "[vectorized]" in out
        assert "kernel_s" in out
