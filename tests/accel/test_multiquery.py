"""Multi-query scheduler (repro.accel.multi): per-request results must be
byte-identical to sequential vectorized runs of the same plans, sharing
counters must reflect the merged DAG, and ineligible mixes must fall
back to the shared BSP batch."""

from __future__ import annotations

import pytest

from repro.accel.multi import MultiQueryEvaluator, run_multiquery_extraction
from repro.aggregates import library
from repro.core.extractor import GraphExtractor
from repro.graph.pattern import LinePattern
from repro.obs.instruments import InstrumentRegistry
from repro.obs.spans import Tracer

CITE1 = "Paper -[citeBy]-> Paper"
CITE2 = "Paper -[citeBy]-> Paper -[citeBy]-> Paper"
SAME_VENUE = (
    "Author -[authorBy]-> Paper -[publishAt]-> Venue "
    "<-[publishAt]- Paper <-[authorBy]- Author"
)


def _steps(metrics):
    return [
        (s.superstep, list(s.work_per_worker), s.messages_sent)
        for s in metrics.supersteps
    ]


def _assert_identical(batched, sequential):
    """Byte-identical per-request results: edges, every counter, and the
    full superstep ledger (only wall time may differ)."""
    assert batched.graph.edges == sequential.graph.edges
    assert batched.graph.vertices == sequential.graph.vertices
    assert batched.metrics.counters == sequential.metrics.counters
    assert _steps(batched.metrics) == _steps(sequential.metrics)


class TestSequentialEquivalence:
    def test_mixed_patterns_and_aggregates(self, scholarly, coauthor_pattern):
        requests = [
            (coauthor_pattern, library.path_count),
            (LinePattern.parse(SAME_VENUE), library.path_count),
            (coauthor_pattern, library.max_min),
            (LinePattern.parse(CITE2), library.avg_path_value),
            (coauthor_pattern, library.path_count),  # exact duplicate
        ]
        extractor = GraphExtractor(
            scholarly, backend="vectorized", plan_cache=True
        )
        sequential = [
            extractor.extract(pattern, factory())
            for pattern, factory in requests
        ]
        batched = extractor.extract_many(
            [(pattern, factory()) for pattern, factory in requests]
        )
        assert extractor.last_backend == "vectorized"
        assert len(batched) == len(sequential)
        for got, want in zip(batched, sequential):
            _assert_identical(got, want)
        stats = extractor.last_batch_stats
        assert stats is not None and stats.requests == 5
        assert stats.nodes_shared >= 1
        assert stats.products_saved >= 1

    def test_length_one_pattern(self, scholarly):
        extractor = GraphExtractor(scholarly, backend="vectorized")
        single = LinePattern.parse(CITE1)
        sequential = extractor.extract(single, library.path_count())
        batched = extractor.extract_many(
            [single, LinePattern.parse(CITE2)],
            aggregate=library.path_count(),
        )
        _assert_identical(batched[0], sequential)
        assert batched[0].graph.edges == {(12, 11): 1.0, (13, 12): 1.0}

    def test_parallel_aggregates_list(self, scholarly, coauthor_pattern):
        extractor = GraphExtractor(scholarly, backend="vectorized")
        results = extractor.extract_many(
            [coauthor_pattern, coauthor_pattern],
            aggregates=[library.path_count(), library.exists_path()],
        )
        assert results[0].graph.edges[(3, 4)] == 2.0
        assert results[1].graph.edges[(3, 4)] == 1.0  # existence, not count

    def test_wall_time_is_batch_wall(self, scholarly, coauthor_pattern):
        extractor = GraphExtractor(scholarly, backend="vectorized")
        results = extractor.extract_many([coauthor_pattern, coauthor_pattern])
        assert (
            results[0].metrics.wall_time_s == results[1].metrics.wall_time_s
        )


class TestSharingStats:
    def test_duplicate_requests_share_everything(
        self, scholarly, coauthor_pattern
    ):
        jobs = []
        extractor = GraphExtractor(scholarly, backend="vectorized")
        plan = extractor.plan(coauthor_pattern)
        for _ in range(3):
            jobs.append((coauthor_pattern, plan, library.path_count()))
        results, stats = run_multiquery_extraction(scholarly, jobs)
        assert len(results) == 3
        assert stats.distinct_products == 1
        assert stats.total_products == 3
        assert stats.products_saved == 2
        assert stats.assemblies == 1
        assert stats.assemblies_saved == 2
        assert stats.nodes_shared == 1
        as_dict = stats.as_dict()
        assert as_dict["multiquery_requests"] == 3
        assert as_dict["multiquery_products_saved"] == 2

    def test_disjoint_requests_share_nothing(self, scholarly):
        extractor = GraphExtractor(scholarly, backend="vectorized")
        a = LinePattern.parse("Author -[authorBy]-> Paper")
        b = LinePattern.parse("Paper -[publishAt]-> Venue")
        extractor.extract_many([a, b], aggregate=library.path_count())
        stats = extractor.last_batch_stats
        assert stats.nodes_shared == 0
        assert stats.products_saved == 0
        assert stats.slots_saved == 0
        assert stats.assemblies == 2

    def test_empty_batch(self, scholarly):
        results, stats = run_multiquery_extraction(scholarly, [])
        assert results == []
        assert stats.requests == 0


class TestFallback:
    def test_holistic_aggregate_falls_back_to_bsp(
        self, scholarly, coauthor_pattern
    ):
        extractor = GraphExtractor(scholarly, backend="vectorized")
        sequential = extractor.extract(
            coauthor_pattern, library.median_path_value()
        )
        results = extractor.extract_many(
            [coauthor_pattern], aggregate=library.median_path_value()
        )
        assert extractor.last_backend == "bsp"
        assert extractor.last_fallback_reason is not None
        assert extractor.last_batch_stats is None
        assert results[0].graph.edges == sequential.graph.edges

    def test_bsp_backend_matches_vectorized_edges(
        self, scholarly, coauthor_pattern
    ):
        extractor = GraphExtractor(scholarly, backend="vectorized")
        requests = [coauthor_pattern, LinePattern.parse(CITE2)]
        vec = extractor.extract_many(requests, aggregate=library.path_count())
        bsp = extractor.extract_many(
            requests, aggregate=library.path_count(), backend="bsp"
        )
        for got, want in zip(bsp, vec):
            assert got.graph.edges == want.graph.edges


class TestTracing:
    def test_span_subtree_and_records(self, scholarly, coauthor_pattern):
        tracer = Tracer(registry=InstrumentRegistry())
        extractor = GraphExtractor(
            scholarly, backend="vectorized", plan_cache=True
        )
        extractor.extract_many(
            [coauthor_pattern, coauthor_pattern, LinePattern.parse(CITE2)],
            aggregate=library.path_count(),
            tracer=tracer,
        )
        roots = [s for s in tracer.root_spans() if s.name == "multiquery"]
        assert len(roots) == 1
        root = roots[0]
        assert root.attrs["requests"] == 3
        assert root.attrs["multiquery_products_saved"] >= 1
        children = [s.name for s in tracer.children(root)]
        assert "shared-level" in children
        assert "shared-assemble" in children
        levels = [s for s in tracer.children(root) if s.name == "shared-level"]
        assert all("total_work" in s.attrs for s in levels)
        kinds = {record.get("kind") for record in tracer.records}
        assert {"multiquery", "cache"} <= kinds
        cache_record = next(
            r for r in tracer.records if r.get("kind") == "cache"
        )
        assert cache_record["plan_cache_misses"] >= 1

    def test_untraced_run_records_nothing(self, scholarly, coauthor_pattern):
        evaluator = MultiQueryEvaluator(
            scholarly,
            [
                (
                    coauthor_pattern,
                    GraphExtractor(scholarly).plan(coauthor_pattern),
                    library.path_count(),
                )
            ],
        )
        results = evaluator.run()
        assert len(results) == 1
        assert evaluator.last_stats.requests == 1


class TestDriftIntegration:
    def test_batched_drift_matches_sequential(
        self, scholarly, coauthor_pattern
    ):
        extractor = GraphExtractor(scholarly, backend="vectorized")
        sequential = extractor.extract(coauthor_pattern, library.path_count())
        batched = extractor.extract_many([coauthor_pattern])[0]
        assert batched.drift is not None
        assert sequential.drift is not None
        assert batched.drift.plan_drift == pytest.approx(
            sequential.drift.plan_drift
        )
