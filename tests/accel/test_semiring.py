"""Tests for the semiring kernel registry (repro.accel.semiring)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.accel.semiring import (
    ObjectKernel,
    UfuncKernel,
    register_op_ufunc,
    registered_ops,
    resolve_kernels,
    semiring_plan,
)
from repro.aggregates import library
from repro.aggregates.base import BinaryOp, DistributiveAggregate
from repro.errors import AggregationError


def _single_kernel(aggregate):
    kernels = resolve_kernels(aggregate)
    assert len(kernels) == 1
    return kernels[0]


class TestResolution:
    def test_path_count_is_native(self):
        kernel = _single_kernel(library.path_count())
        assert isinstance(kernel, UfuncKernel)
        assert kernel.native

    def test_max_min_is_ufunc_but_not_native(self):
        kernel = _single_kernel(library.max_min())
        assert isinstance(kernel, UfuncKernel)
        assert not kernel.native

    def test_exists_path_uses_boolean_encoding(self):
        kernel = _single_kernel(library.exists_path())
        assert isinstance(kernel, UfuncKernel)
        assert kernel.boolean

    def test_algebraic_gets_kernel_per_component(self):
        aggregate = library.avg_path_value()
        kernels = resolve_kernels(aggregate)
        assert len(kernels) == len(aggregate.components)

    def test_custom_op_falls_back_to_object_kernel(self):
        gcd = BinaryOp("gcd", lambda a, b: a or b, 0.0)
        aggregate = DistributiveAggregate(gcd, gcd, name="gcd-paths")
        kernel = _single_kernel(aggregate)
        assert isinstance(kernel, ObjectKernel)

    def test_boolean_ops_over_numbers_fall_back(self):
        # Python's `and`/`or` over general numbers is not min/max, so a
        # boolean-op aggregate with non-bool values must not vectorize.
        from repro.aggregates.library import OP_AND

        aggregate = DistributiveAggregate(
            OP_AND, OP_AND, edge_value=lambda w: w, name="and-numbers"
        )
        kernel = _single_kernel(aggregate)
        assert isinstance(kernel, ObjectKernel)

    def test_holistic_raises(self):
        with pytest.raises(AggregationError, match="holistic"):
            resolve_kernels(library.median_path_value())

    def test_register_op_ufunc_upgrades_resolution(self):
        op = BinaryOp("test-hypot", lambda a, b: (a**2 + b**2) ** 0.5, 0.0)
        aggregate = DistributiveAggregate(op, op, name="hypot-paths")
        assert isinstance(_single_kernel(aggregate), ObjectKernel)
        register_op_ufunc("test-hypot", np.hypot)
        try:
            kernel = _single_kernel(aggregate)
            assert isinstance(kernel, UfuncKernel)
            assert kernel.combine is np.hypot
        finally:
            # registry mutation must not leak into other tests
            from repro.accel import semiring

            semiring._OP_UFUNCS.pop("test-hypot", None)

    def test_registered_ops_lists_defaults(self):
        ops = registered_ops()
        assert ops["add"] == "add"
        assert ops["mul"] == "multiply"
        assert ops["and"] == "minimum"


class TestSemiringPlan:
    def test_native_described(self):
        (description,) = semiring_plan(library.path_count())
        assert "native" in description
        assert "(mul, add)" in description

    def test_expansion_described(self):
        (description,) = semiring_plan(library.max_min())
        assert "ufunc expansion" in description

    def test_boolean_flagged(self):
        (description,) = semiring_plan(library.exists_path())
        assert "boolean" in description

    def test_object_fallback_described(self):
        op = BinaryOp("mystery", lambda a, b: a, 0.0)
        (description,) = semiring_plan(
            DistributiveAggregate(op, op, name="mystery-paths")
        )
        assert "fallback" in description


def _csr(rows, cols, values, n=4):
    return csr_matrix(
        (
            np.asarray(values, dtype=np.float64),
            (np.asarray(rows), np.asarray(cols)),
        ),
        shape=(n, n),
    )


class TestUfuncKernel:
    def test_matmul_matches_dense_sum_product(self):
        kernel = _single_kernel(library.path_count())
        a = _csr([0, 0, 1], [1, 2, 2], [1.0, 1.0, 1.0])
        b = _csr([1, 2, 2], [3, 3, 0], [1.0, 1.0, 1.0])
        result, flops = kernel.matmul(a, b)
        assert np.array_equal(result.toarray(), (a @ b).toarray())
        # a column 1 (1 entry) × b row 1 (1 entry) + a column 2 (2) × b row 2 (2)
        assert flops == 5

    def test_flops_counts_index_pairs(self):
        kernel = _single_kernel(library.path_count())
        a = _csr([0, 1], [2, 2], [1.0, 1.0])
        b = _csr([2, 2], [0, 3], [1.0, 1.0])
        _, flops = kernel.matmul(a, b)
        # 2 entries in a's column 2, each meeting 2 entries in b's row 2
        assert flops == 4

    def test_zero_values_are_not_pruned(self):
        # weighted sums can legitimately be 0.0; the entry is still a path
        kernel = _single_kernel(library.weighted_path_count())
        a = _csr([0], [1], [0.0])
        b = _csr([1], [2], [5.0])
        result, flops = kernel.matmul(a, b)
        assert flops == 1
        assert result.nnz == 1  # explicit structural zero kept
        assert result[0, 2] == 0.0

    def test_cancelling_negatives_keep_structure(self):
        kernel = _single_kernel(library.weighted_path_count())
        a = _csr([0, 0], [1, 2], [1.0, -1.0])
        b = _csr([1, 2], [3, 3], [1.0, 1.0])
        result, _ = kernel.matmul(a, b)
        # 1·1 + (−1)·1 = 0 — scipy's native matmul would prune this entry
        assert result.nnz == 1
        assert result[0, 3] == 0.0

    def test_min_max_semiring(self):
        kernel = _single_kernel(library.max_min())  # ⊗=min along, ⊕=max across
        a = _csr([0, 0], [1, 2], [3.0, 5.0])
        b = _csr([1, 2], [3, 3], [4.0, 2.0])
        result, flops = kernel.matmul(a, b)
        # paths 0→1→3 (min 3) and 0→2→3 (min 2); max = 3
        assert flops == 2
        assert result[0, 3] == 3.0

    def test_build_merges_duplicates(self):
        kernel = _single_kernel(library.path_count())
        rows = np.asarray([0, 0, 1])
        cols = np.asarray([1, 1, 2])
        values = np.asarray([1.0, 1.0, 1.0])
        matrix = kernel.build(rows, cols, values, 4)
        assert matrix[0, 1] == 2.0
        assert matrix[1, 2] == 1.0
        assert matrix.nnz == 2

    def test_boolean_to_python(self):
        kernel = _single_kernel(library.exists_path())
        assert kernel.to_python(1.0) is True
        assert kernel.to_python(0.0) is False

    def test_empty_operand_short_circuits(self):
        kernel = _single_kernel(library.path_count())
        a = _csr([], [], [])
        b = _csr([1], [2], [1.0])
        result, flops = kernel.matmul(a, b)
        assert flops == 0
        assert result.nnz == 0


class TestObjectKernel:
    def _kernel(self):
        from repro.aggregates.base import OP_ADD, OP_MUL

        # force the object tier regardless of op registration
        return ObjectKernel(
            DistributiveAggregate(OP_MUL, OP_ADD, name="object-sum")
        )

    def test_matmul_matches_ufunc_result(self):
        object_kernel = self._kernel()
        ufunc_kernel = _single_kernel(library.path_count())
        rows = np.asarray([0, 0, 1])
        cols = np.asarray([1, 2, 2])
        values = [1.0, 1.0, 1.0]
        a_obj = object_kernel.build(rows, cols, values, 4)
        b_obj = object_kernel.build(cols, rows, values, 4)
        a_csr = ufunc_kernel.build(rows, cols, np.asarray(values), 4)
        b_csr = ufunc_kernel.build(cols, rows, np.asarray(values), 4)
        result_obj, flops_obj = object_kernel.matmul(a_obj, b_obj)
        result_csr, flops_csr = ufunc_kernel.matmul(a_csr, b_csr)
        assert flops_obj == flops_csr
        assert dict(
            ((r, c), v) for r, c, v in object_kernel.entries(result_obj)
        ) == dict(((r, c), v) for r, c, v in ufunc_kernel.entries(result_csr))

    def test_nnz_counts_entries(self):
        kernel = self._kernel()
        matrix = kernel.build(
            np.asarray([0, 1]), np.asarray([1, 2]), [1.0, 2.0], 4
        )
        assert kernel.nnz(matrix) == 2
