"""The static kernel-eligibility verdict must agree with the runtime
backend decision — zero disagreements, by construction: both sides call
:func:`repro.core.backend.vectorized_fallback_reason`.  This suite
proves the agreement empirically across the full workload catalog and
every fallback trigger, then smoke-tests the ``cli check`` command."""

from __future__ import annotations

import pytest

from repro.aggregates.library import (
    avg_path_value,
    max_min,
    median_path_value,
    path_count,
)
from repro.core.extractor import GraphExtractor
from repro.lint import static_eligibility
from repro.workloads.harness import reference_graph
from repro.workloads.patterns import WORKLOADS

AGGREGATE_FACTORIES = {
    "path_count": path_count,       # distributive, native scipy kernel
    "max_min": max_min,             # distributive, ufunc expansion
    "avg": avg_path_value,          # algebraic, component-wise kernels
    "median": median_path_value,    # holistic, must fall back
}

_GRAPHS = {
    dataset: reference_graph(dataset, 0.05)
    for dataset in sorted({w.dataset for w in WORKLOADS.values()})
}


def assert_agreement(extractor, aggregate, **flags):
    """The core acceptance property: the static verdict equals what the
    extractor actually decided, backend and reason both."""
    verdict = static_eligibility(aggregate, **flags)
    assert verdict.backend == extractor.last_backend
    assert verdict.reason == extractor.last_fallback_reason


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("agg_name", sorted(AGGREGATE_FACTORIES))
def test_catalog_static_verdicts_match_runtime(name, agg_name):
    workload = WORKLOADS[name]
    graph = _GRAPHS[workload.dataset]
    aggregate = AGGREGATE_FACTORIES[agg_name]()
    extractor = GraphExtractor(graph, backend="vectorized")
    extractor.extract(workload.pattern, aggregate)
    assert_agreement(extractor, AGGREGATE_FACTORIES[agg_name]())


class TestFallbackTriggers:
    """Every run-level fallback trigger, cross-checked on one workload."""

    @pytest.fixture()
    def graph(self):
        return _GRAPHS["dblp"]

    @pytest.fixture()
    def pattern(self):
        return WORKLOADS["dblp-BP1"].pattern

    def test_trace_trigger(self, graph, pattern):
        extractor = GraphExtractor(graph, backend="vectorized")
        extractor.extract(pattern, path_count(), trace=True)
        assert extractor.last_backend == "bsp"
        assert_agreement(extractor, path_count(), trace=True)

    def test_sanitize_trigger(self, graph, pattern):
        extractor = GraphExtractor(
            graph, backend="vectorized", sanitize=True
        )
        extractor.extract(pattern, path_count())
        assert extractor.last_backend == "bsp"
        assert_agreement(extractor, path_count(), sanitize=True)

    def test_resilience_trigger(self, graph, pattern):
        from repro.faults.supervisor import ResiliencePolicy

        policy = ResiliencePolicy()
        extractor = GraphExtractor(
            graph, backend="vectorized", resilience=policy
        )
        extractor.extract(pattern, path_count())
        assert extractor.last_backend == "bsp"
        assert_agreement(extractor, path_count(), resilience=policy)

    def test_holistic_trigger(self, graph, pattern):
        extractor = GraphExtractor(graph, backend="vectorized")
        extractor.extract(pattern, median_path_value())
        assert extractor.last_backend == "bsp"
        assert_agreement(extractor, median_path_value())

    def test_clean_vectorized_run(self, graph, pattern):
        extractor = GraphExtractor(graph, backend="vectorized")
        extractor.extract(pattern, path_count())
        assert extractor.last_backend == "vectorized"
        assert extractor.last_fallback_reason is None
        assert_agreement(extractor, path_count())


class TestCliCheck:
    def test_all_workloads_clean(self, capsys):
        from repro.cli import main

        code = main(["check", "--all-workloads", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "static_eligibility" in out
        assert "NO" not in out

    def test_source_mode_flags_fixture(self, capsys, tmp_path):
        from pathlib import Path

        from repro.cli import main

        fixture = (
            Path(__file__).resolve().parents[1]
            / "lint"
            / "fixtures"
            / "bad_procsafe_program.py"
        )
        code = main(["check", str(fixture)])
        out = capsys.readouterr().out
        assert code == 1
        assert "procsafe-capture" in out
