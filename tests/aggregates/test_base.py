"""Unit tests for repro.aggregates.base."""

import pytest

from repro.aggregates.base import (
    OP_ADD,
    OP_MAX,
    OP_MIN,
    OP_MUL,
    AggregationKind,
    AlgebraicAggregate,
    BinaryOp,
    DistributiveAggregate,
    HolisticAggregate,
)
from repro.errors import AggregationError


class TestBinaryOp:
    def test_call(self):
        assert OP_ADD(2, 3) == 5
        assert OP_MUL(2, 3) == 6
        assert OP_MIN(2, 3) == 2
        assert OP_MAX(2, 3) == 3

    def test_fold_from_identity(self):
        assert OP_ADD.fold([1, 2, 3]) == 6
        assert OP_MUL.fold([2, 3]) == 6
        assert OP_MIN.fold([5, 2, 9]) == 2
        assert OP_MAX.fold([]) == float("-inf")

    def test_custom_op(self):
        concat = BinaryOp("concat", lambda a, b: a + b, "")
        assert concat.fold(["a", "b"]) == "ab"


class TestDistributiveAggregate:
    def test_interface(self):
        agg = DistributiveAggregate(OP_MUL, OP_ADD, edge_value=lambda w: 1.0)
        assert agg.kind is AggregationKind.DISTRIBUTIVE
        assert agg.supports_partial_aggregation
        assert agg.initial_edge(7.0) == 1.0
        assert agg.concat(2.0, 3.0) == 6.0
        assert agg.merge(2.0, 3.0) == 5.0
        assert agg.finalize(4.0) == 4.0

    def test_default_edge_value_is_weight(self):
        agg = DistributiveAggregate(OP_ADD, OP_MIN)
        assert agg.initial_edge(0.7) == 0.7

    def test_finalize_all_folds_merge(self):
        agg = DistributiveAggregate(OP_MUL, OP_ADD)
        assert agg.finalize_all([1.0, 2.0, 3.0]) == 6.0

    def test_finalize_all_empty_raises(self):
        agg = DistributiveAggregate(OP_MUL, OP_ADD)
        with pytest.raises(AggregationError):
            agg.finalize_all([])

    def test_auto_name(self):
        assert DistributiveAggregate(OP_MUL, OP_ADD).name == "mul-add"


class TestAlgebraicAggregate:
    @pytest.fixture
    def avg(self):
        total = DistributiveAggregate(OP_MUL, OP_ADD)
        count = DistributiveAggregate(OP_MUL, OP_ADD, edge_value=lambda w: 1.0)
        return AlgebraicAggregate([total, count], lambda v: v[0] / v[1], name="avg")

    def test_componentwise_operations(self, avg):
        a = avg.initial_edge(2.0)
        b = avg.initial_edge(4.0)
        assert a == (2.0, 1.0)
        assert avg.concat(a, b) == (8.0, 1.0)
        assert avg.merge(a, b) == (6.0, 2.0)

    def test_finalize(self, avg):
        assert avg.finalize((6.0, 2.0)) == 3.0

    def test_finalize_all(self, avg):
        values = [avg.initial_edge(w) for w in (2.0, 4.0, 6.0)]
        assert avg.finalize_all(values) == 4.0

    def test_supports_partial(self, avg):
        assert avg.supports_partial_aggregation
        assert avg.kind is AggregationKind.ALGEBRAIC

    def test_empty_components_rejected(self):
        with pytest.raises(AggregationError):
            AlgebraicAggregate([], lambda v: v)


class TestHolisticAggregate:
    @pytest.fixture
    def median(self):
        return HolisticAggregate(
            OP_MUL, lambda values: sorted(values)[len(values) // 2], name="median"
        )

    def test_no_partial_aggregation(self, median):
        assert median.kind is AggregationKind.HOLISTIC
        assert not median.supports_partial_aggregation
        with pytest.raises(AggregationError, match="holistic"):
            median.merge(1.0, 2.0)

    def test_path_level_still_works(self, median):
        assert median.concat(2.0, 3.0) == 6.0
        assert median.initial_edge(5.0) == 5.0

    def test_finalize_all_collects(self, median):
        assert median.finalize_all([3.0, 1.0, 2.0]) == 2.0

    def test_finalize_all_empty_raises(self, median):
        with pytest.raises(AggregationError):
            median.finalize_all([])
