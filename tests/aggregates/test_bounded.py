"""Tests for bounded holistic aggregations (partial-aggregation TOP-K)."""

import pytest

from repro.aggregates import library
from repro.aggregates.bounded import bounded_k_shortest, bounded_top_k
from repro.baselines.bruteforce import enumerate_paths, extract_bruteforce
from repro.core.evaluator import run_extraction
from repro.core.planner import iter_opt_plan
from repro.errors import AggregationError
from repro.graph.pattern import LinePattern

from tests.conftest import build_scholarly


class TestBoundedTopKUnit:
    def test_single_edge(self):
        agg = bounded_top_k(3)
        assert agg.initial_edge(2.0) == (2.0,)

    def test_concat_keeps_largest_products(self):
        agg = bounded_top_k(2)
        assert agg.concat((3.0, 1.0), (2.0, 1.0)) == (6.0, 3.0)

    def test_merge_truncates(self):
        agg = bounded_top_k(2)
        assert agg.merge((5.0, 1.0), (4.0, 3.0)) == (5.0, 4.0)

    def test_supports_partial_aggregation(self):
        assert bounded_top_k(2).supports_partial_aggregation

    def test_negative_weight_rejected(self):
        with pytest.raises(AggregationError, match="non-negative"):
            bounded_top_k(2).initial_edge(-1.0)

    def test_invalid_k(self):
        with pytest.raises(AggregationError):
            bounded_top_k(0)


class TestBoundedKShortestUnit:
    def test_concat_keeps_smallest_sums(self):
        agg = bounded_k_shortest(2)
        assert agg.concat((1.0, 4.0), (2.0, 3.0)) == (3.0, 4.0)

    def test_merge(self):
        agg = bounded_k_shortest(3)
        assert agg.merge((1.0, 5.0), (2.0,)) == (1.0, 2.0, 5.0)


class TestEquivalenceWithExactHolistic:
    """The bounded version under partial aggregation must match the exact
    holistic TOP-K computed by full enumeration."""

    @pytest.fixture
    def weighted_graph(self):
        graph = build_scholarly()
        # replace some unit weights with varied positive weights
        graph.add_edge(1, 12, "authorBy", weight=0.5)
        graph.add_edge(2, 13, "authorBy", weight=2.5)
        graph.add_edge(1, 11, "authorBy", weight=3.0)  # parallel edge
        return graph

    @pytest.mark.parametrize("k", [1, 2, 5])
    @pytest.mark.parametrize(
        "text",
        [
            "Author -[authorBy]-> Paper <-[authorBy]- Author",
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author",
        ],
    )
    def test_matches_exact_topk(self, weighted_graph, k, text):
        pattern = LinePattern.parse(text)
        exact = extract_bruteforce(
            weighted_graph, pattern, library.top_k_path_values(k)
        )
        plan = iter_opt_plan(pattern)
        bounded = run_extraction(
            weighted_graph, pattern, plan, bounded_top_k(k), mode="partial"
        )
        assert set(bounded.graph.edges) == set(exact.graph.edges)
        for key, exact_values in exact.graph.edges.items():
            assert bounded.graph.edges[key] == pytest.approx(exact_values)

    def test_k_shortest_matches_enumeration(self, weighted_graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        plan = iter_opt_plan(pattern)
        result = run_extraction(
            weighted_graph, pattern, plan, bounded_k_shortest(2), mode="partial"
        )
        sums = {}
        for trail, weights in enumerate_paths(weighted_graph, pattern):
            sums.setdefault((trail[0], trail[-1]), []).append(sum(weights))
        for key, all_sums in sums.items():
            expected = tuple(sorted(all_sums)[:2])
            assert result.graph.edges[key] == pytest.approx(expected)

    def test_bounded_materialises_fewer_paths_than_holistic(self, weighted_graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plan = iter_opt_plan(pattern)
        holistic = run_extraction(
            weighted_graph, pattern, plan, library.top_k_path_values(2),
            mode="basic",
        )
        bounded = run_extraction(
            weighted_graph, pattern, plan, bounded_top_k(2), mode="partial"
        )
        assert bounded.intermediate_paths <= holistic.intermediate_paths
