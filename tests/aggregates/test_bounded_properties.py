"""Property tests for the bounded TOP-K / k-shortest aggregate domains."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.bounded import bounded_k_shortest, bounded_top_k

positive_values = st.lists(
    st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=6,
)


class TestBoundedTopKProperties:
    @settings(max_examples=60, deadline=None)
    @given(left=positive_values, right=positive_values, k=st.integers(1, 5))
    def test_concat_equals_exact_topk_of_products(self, left, right, k):
        """Concatenating truncated sides loses nothing: for non-negative
        values, top-k of the full cross product equals concat of the
        per-side top-k truncations."""
        agg = bounded_top_k(k)
        left_trunc = tuple(sorted(left, reverse=True)[:k])
        right_trunc = tuple(sorted(right, reverse=True)[:k])
        via_bounded = agg.concat(left_trunc, right_trunc)
        exact = sorted(
            (l * r for l, r in itertools.product(left, right)), reverse=True
        )[:k]
        assert list(via_bounded) == pytest.approx(exact)

    @settings(max_examples=60, deadline=None)
    @given(a=positive_values, b=positive_values, k=st.integers(1, 5))
    def test_merge_commutative_and_idempotent_shape(self, a, b, k):
        agg = bounded_top_k(k)
        ta = tuple(sorted(a, reverse=True)[:k])
        tb = tuple(sorted(b, reverse=True)[:k])
        assert agg.merge(ta, tb) == agg.merge(tb, ta)
        assert len(agg.merge(ta, tb)) <= k
        assert agg.merge(ta, ta)[0] == ta[0]

    @settings(max_examples=40, deadline=None)
    @given(
        a=positive_values, b=positive_values, c=positive_values,
        k=st.integers(1, 4),
    )
    def test_distributivity_on_bounded_domain(self, a, b, c, k):
        """⊗ distributes over ⊕ on truncated lists — the Theorem 3
        condition that justifies running TOP-K with partial aggregation."""
        agg = bounded_top_k(k)
        ta = tuple(sorted(a, reverse=True)[:k])
        tb = tuple(sorted(b, reverse=True)[:k])
        tc = tuple(sorted(c, reverse=True)[:k])
        lhs = agg.concat(ta, agg.merge(tb, tc))
        rhs = agg.merge(agg.concat(ta, tb), agg.concat(ta, tc))
        assert list(lhs) == pytest.approx(list(rhs))


class TestBoundedKShortestProperties:
    @settings(max_examples=60, deadline=None)
    @given(left=positive_values, right=positive_values, k=st.integers(1, 5))
    def test_concat_equals_exact_k_smallest_sums(self, left, right, k):
        agg = bounded_k_shortest(k)
        left_trunc = tuple(sorted(left)[:k])
        right_trunc = tuple(sorted(right)[:k])
        via_bounded = agg.concat(left_trunc, right_trunc)
        exact = sorted(l + r for l, r in itertools.product(left, right))[:k]
        assert list(via_bounded) == pytest.approx(exact)

    @settings(max_examples=40, deadline=None)
    @given(
        a=positive_values, b=positive_values, c=positive_values,
        k=st.integers(1, 4),
    )
    def test_distributivity_on_bounded_domain(self, a, b, c, k):
        agg = bounded_k_shortest(k)
        ta = tuple(sorted(a)[:k])
        tb = tuple(sorted(b)[:k])
        tc = tuple(sorted(c)[:k])
        lhs = agg.concat(ta, agg.merge(tb, tc))
        rhs = agg.merge(agg.concat(ta, tb), agg.concat(ta, tc))
        assert list(lhs) == pytest.approx(list(rhs))
