"""Unit tests for repro.aggregates.classify (Theorem 3 verification)."""

import pytest

from repro.aggregates import library
from repro.aggregates.base import (
    OP_ADD,
    OP_MAX,
    OP_MIN,
    OP_MUL,
    AggregationKind,
    DistributiveAggregate,
)
from repro.aggregates.classify import (
    check_distributive_pair,
    classify,
    validate_aggregate,
)
from repro.errors import AggregationError


class TestCheckDistributivePair:
    @pytest.mark.parametrize(
        "combine,merge",
        [
            (OP_MUL, OP_ADD),  # count / weighted count
            (OP_MIN, OP_MAX),  # max-min
            (OP_MAX, OP_MIN),  # min-max
            (OP_ADD, OP_MAX),  # longest path
            (OP_ADD, OP_MIN),  # shortest path
            (OP_MIN, OP_MIN),  # min is idempotent: distributes over itself
            (OP_MAX, OP_MAX),
        ],
    )
    def test_known_distributive_pairs(self, combine, merge):
        assert check_distributive_pair(combine, merge)

    @pytest.mark.parametrize(
        "combine,merge",
        [
            (OP_ADD, OP_ADD),  # a+(b+c) != (a+b)+(a+c)
            (OP_MUL, OP_MUL),
            (OP_ADD, OP_MUL),
            (OP_MUL, OP_MIN),  # fails for negative multipliers
            (OP_MUL, OP_MAX),
        ],
    )
    def test_known_non_distributive_pairs(self, combine, merge):
        assert not check_distributive_pair(combine, merge)

    def test_restricted_domain_can_pass(self):
        # mul distributes over min on a nonnegative domain
        assert check_distributive_pair(
            OP_MUL, OP_MIN, samples=(0.0, 0.5, 1.0, 2.0)
        )


class TestClassify:
    def test_kinds(self):
        assert classify(library.path_count()) is AggregationKind.DISTRIBUTIVE
        assert classify(library.avg_path_value()) is AggregationKind.ALGEBRAIC
        assert classify(library.median_path_value()) is AggregationKind.HOLISTIC


class TestValidateAggregate:
    def test_library_distributives_pass(self):
        for factory in (
            library.path_count,
            library.weighted_path_count,
            library.max_min,
            library.min_max,
            library.add_max,
            library.sum_min,
        ):
            validate_aggregate(factory())

    def test_library_algebraics_pass(self):
        validate_aggregate(library.avg_path_value())
        validate_aggregate(library.std_path_value())

    def test_holistic_always_passes(self):
        validate_aggregate(library.median_path_value())

    def test_bogus_distributive_rejected(self):
        bogus = DistributiveAggregate(OP_ADD, OP_ADD, name="bogus")
        with pytest.raises(AggregationError, match="does not distribute"):
            validate_aggregate(bogus)
