"""Unit tests for repro.aggregates.library: each aggregate computed by hand
on a small set of paths."""

import math

import pytest

from repro.aggregates import library

#: Three paths given as edge-weight lists.
PATHS = [[2.0, 3.0], [1.0, 5.0], [4.0]]


def evaluate(aggregate, paths=PATHS):
    """Apply the two-level model literally: ⊗ within, ⊕/collect across."""
    values = []
    for weights in paths:
        value = aggregate.initial_edge(weights[0])
        for w in weights[1:]:
            value = aggregate.concat(value, aggregate.initial_edge(w))
        values.append(value)
    return aggregate.finalize_all(values)


class TestDistributive:
    def test_path_count(self):
        assert evaluate(library.path_count()) == 3.0

    def test_weighted_path_count(self):
        # products: 6, 5, 4 -> sum 15
        assert evaluate(library.weighted_path_count()) == 15.0

    def test_max_min(self):
        # per-path minima: 2, 1, 4 -> max 4
        assert evaluate(library.max_min()) == 4.0

    def test_min_max(self):
        # per-path maxima: 3, 5, 4 -> min 3
        assert evaluate(library.min_max()) == 3.0

    def test_add_max(self):
        # per-path sums: 5, 6, 4 -> max 6
        assert evaluate(library.add_max()) == 6.0

    def test_sum_min(self):
        # per-path sums: 5, 6, 4 -> min 4
        assert evaluate(library.sum_min()) == 4.0


class TestAlgebraic:
    def test_avg_path_value(self):
        # products: 6, 5, 4 -> mean 5
        assert evaluate(library.avg_path_value()) == 5.0

    def test_std_path_value(self):
        products = [6.0, 5.0, 4.0]
        mean = sum(products) / 3
        expected = math.sqrt(sum((p - mean) ** 2 for p in products) / 3)
        assert abs(evaluate(library.std_path_value()) - expected) < 1e-12

    def test_std_single_path_is_zero(self):
        assert evaluate(library.std_path_value(), paths=[[2.0, 2.0]]) == 0.0


class TestHolistic:
    def test_median_odd(self):
        # products: 6, 5, 4 -> median 5
        assert evaluate(library.median_path_value()) == 5.0

    def test_median_even(self):
        paths = [[2.0], [4.0], [6.0], [8.0]]
        assert evaluate(library.median_path_value(), paths) == 5.0

    def test_top_k(self):
        assert evaluate(library.top_k_path_values(2)) == (6.0, 5.0)

    def test_top_k_larger_than_n(self):
        assert evaluate(library.top_k_path_values(10)) == (6.0, 5.0, 4.0)

    def test_count_distinct(self):
        paths = [[2.0, 3.0], [6.0], [1.0, 5.0]]  # products 6, 6, 5
        assert evaluate(library.count_distinct_path_values(), paths) == 2


class TestMergeConsistency:
    """⊕-merging partial groups must equal aggregating the whole list —
    the property partial aggregation relies on."""

    @pytest.mark.parametrize(
        "factory",
        [
            library.path_count,
            library.weighted_path_count,
            library.max_min,
            library.min_max,
            library.add_max,
            library.sum_min,
            library.avg_path_value,
        ],
    )
    def test_split_merge_equals_whole(self, factory):
        aggregate = factory()
        values = [aggregate.initial_edge(w) for w in (2.0, 3.0, 5.0, 7.0)]
        whole = aggregate.finalize_all(values)
        left = aggregate.merge(values[0], values[1])
        right = aggregate.merge(values[2], values[3])
        split = aggregate.finalize(aggregate.merge(left, right))
        assert split == pytest.approx(whole)
