"""Unit tests for the brute-force oracle itself (hand-computed answers)."""

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import (
    enumerate_paths,
    extract_bruteforce,
    path_value,
)
from repro.graph.pattern import LinePattern

from tests.conftest import (
    A1,
    A2,
    A3,
    A4,
    COAUTHOR_EXPECTED,
    P1,
    P2,
    P3,
    V1,
    V2,
    build_scholarly,
)


@pytest.fixture
def graph():
    return build_scholarly()


class TestEnumeratePaths:
    def test_coauthor_paths(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        paths = sorted(trail for trail, _ in enumerate_paths(graph, pattern))
        assert (A1, P1, A2) in paths
        assert (A1, P1, A1) in paths  # non-simple walks are included
        assert len(paths) == 12  # 4 authors x their papers' author sets

    def test_direction_respected(self, graph):
        forward = LinePattern.parse("Paper -[citeBy]-> Paper")
        assert sorted(t for t, _ in enumerate_paths(graph, forward)) == [
            (P2, P1),
            (P3, P2),
        ]
        backward = LinePattern.parse("Paper <-[citeBy]- Paper")
        assert sorted(t for t, _ in enumerate_paths(graph, backward)) == [
            (P1, P2),
            (P2, P3),
        ]

    def test_weights_follow_trail(self, graph):
        graph.add_edge(A1, P2, "authorBy", weight=0.5)
        pattern = LinePattern.parse("Author -[authorBy]-> Paper -[publishAt]-> Venue")
        weights = {
            trail: ws for trail, ws in enumerate_paths(graph, pattern)
        }
        assert weights[(A1, P2, V1)] == (0.5, 1.0)

    def test_label_filtering(self, graph):
        # citeBy only connects Papers; an Author-labeled position can't match
        pattern = LinePattern.parse("Author -[citeBy]-> Paper")
        assert list(enumerate_paths(graph, pattern)) == []


class TestPathValue:
    def test_product(self):
        assert path_value(library.weighted_path_count(), (2.0, 3.0)) == 6.0

    def test_count_ignores_weights(self):
        assert path_value(library.path_count(), (2.0, 3.0)) == 1.0

    def test_single_edge(self):
        assert path_value(library.sum_min(), (4.0,)) == 4.0


class TestExtract:
    def test_coauthor_counts(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        result = extract_bruteforce(graph, pattern, library.path_count())
        assert dict(result.graph.edges) == COAUTHOR_EXPECTED
        assert result.final_paths == 12

    def test_metrics_populated(self, graph):
        pattern = LinePattern.parse("Paper -[citeBy]-> Paper")
        result = extract_bruteforce(graph, pattern, library.path_count())
        assert result.metrics.wall_time_s >= 0
        assert result.metrics.counters["final_paths"] == 2

    def test_empty_result(self, graph):
        pattern = LinePattern.chain("Venue", "citeBy", 2)
        result = extract_bruteforce(graph, pattern, library.path_count())
        assert result.graph.num_edges() == 0
        assert result.graph.num_vertices() == 2  # the venues still appear
