"""Unit tests for the graph-database-style baseline."""

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.baselines.graphdb import extract_graphdb
from repro.graph.pattern import LinePattern

from tests.conftest import COAUTHOR_EXPECTED, build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


class TestCorrectness:
    def test_coauthor_counts(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        result = extract_graphdb(graph, pattern, library.path_count())
        assert dict(result.graph.edges) == COAUTHOR_EXPECTED

    @pytest.mark.parametrize(
        "text",
        [
            "Author -[authorBy]-> Paper -[publishAt]-> Venue",
            "Venue <-[publishAt]- Paper <-[authorBy]- Author "
            "-[authorBy]-> Paper -[publishAt]-> Venue",
            "Paper -[citeBy]-> Paper -[citeBy]-> Paper",
        ],
    )
    def test_matches_oracle(self, graph, text):
        pattern = LinePattern.parse(text)
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        result = extract_graphdb(graph, pattern, library.path_count())
        assert result.graph.equals(oracle.graph), result.graph.diff(oracle.graph)

    def test_weighted_aggregate(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue"
        )
        aggregate = library.sum_min()
        oracle = extract_bruteforce(graph, pattern, aggregate)
        result = extract_graphdb(graph, pattern, aggregate)
        assert result.graph.equals(oracle.graph)

    def test_holistic_supported(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        result = extract_graphdb(graph, pattern, library.median_path_value())
        assert all(v == 1.0 for v in result.graph.edges.values())


class TestInstrumentation:
    def test_db_hits_counted(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        result = extract_graphdb(graph, pattern, library.path_count())
        assert result.metrics.counters["db_hits"] > 0
        assert result.metrics.counters["final_paths"] == 12
        assert result.metrics.num_workers == 1

    def test_dead_end_sources_cheap(self, graph):
        # Venue vertices have no citeBy edges: traversal stops immediately
        pattern = LinePattern.chain("Venue", "citeBy", 3)
        result = extract_graphdb(graph, pattern, library.path_count())
        assert result.graph.num_edges() == 0
        assert result.metrics.counters["db_hits"] == 0
