"""Unit tests for the matrix path-algebra baseline."""

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.baselines.matrix import extract_matrix
from repro.errors import AggregationError
from repro.graph.pattern import LinePattern

from tests.conftest import COAUTHOR_EXPECTED, build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestScipyFastPath:
    def test_coauthor_counts(self, graph, coauthor):
        result = extract_matrix(graph, coauthor, library.path_count())
        assert dict(result.graph.edges) == COAUTHOR_EXPECTED
        assert result.metrics.counters["matrix_backend_scipy"] == 1

    def test_matches_oracle_on_length4(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        result = extract_matrix(graph, pattern, library.path_count())
        assert result.graph.equals(oracle.graph)

    def test_nnz_counters(self, graph, coauthor):
        result = extract_matrix(graph, coauthor, library.path_count())
        assert result.metrics.counters["matrix_nnz_final"] == len(COAUTHOR_EXPECTED)
        assert result.metrics.counters["matrix_nnz_intermediate"] > 0

    def test_parallel_edges_summed(self, graph, coauthor):
        graph.add_edge(1, 11, "authorBy")  # a1 authored p1 "twice"
        result = extract_matrix(graph, coauthor, library.path_count())
        assert result.graph.value(1, 2) == 2.0
        assert result.graph.value(1, 1) == 4.0  # 2x2 walks a1-p1-a1


class TestSemiringPath:
    def test_min_plus_shortest_path(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue"
        )
        aggregate = library.sum_min()
        oracle = extract_bruteforce(graph, pattern, aggregate)
        result = extract_matrix(graph, pattern, aggregate)
        assert result.graph.equals(oracle.graph)
        assert result.metrics.counters["matrix_backend_scipy"] == 0

    def test_max_min_bottleneck(self, graph, coauthor):
        aggregate = library.max_min()
        oracle = extract_bruteforce(graph, coauthor, aggregate)
        result = extract_matrix(graph, coauthor, aggregate)
        assert result.graph.equals(oracle.graph)

    def test_algebraic_avg(self, graph, coauthor):
        aggregate = library.avg_path_value()
        oracle = extract_bruteforce(graph, coauthor, aggregate)
        result = extract_matrix(graph, coauthor, aggregate)
        assert result.graph.equals(oracle.graph)

    def test_zero_weight_falls_back_and_keeps_edge(self, graph, coauthor):
        """A zero-valued path must still produce an extracted edge."""
        zero_weight = LinePattern.parse("Author -[authorBy]-> Paper")
        graph.add_vertex(99, "Author")
        graph.add_edge(99, 11, "authorBy", weight=0.0)
        aggregate = library.weighted_path_count()
        oracle = extract_bruteforce(graph, zero_weight, aggregate)
        result = extract_matrix(graph, zero_weight, aggregate)
        assert result.metrics.counters["matrix_backend_scipy"] == 0
        assert result.graph.equals(oracle.graph)
        assert result.graph.value(99, 11) == 0.0


class TestUnsupported:
    def test_holistic_rejected(self, graph, coauthor):
        with pytest.raises(AggregationError, match="matrix"):
            extract_matrix(graph, coauthor, library.median_path_value())
