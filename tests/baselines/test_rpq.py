"""Unit tests for the RPQ frontier baseline."""

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.baselines.rpq import RPQProgram, extract_rpq
from repro.errors import AggregationError
from repro.graph.pattern import LinePattern

from tests.conftest import COAUTHOR_EXPECTED, build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestCorrectness:
    def test_coauthor_counts(self, graph, coauthor):
        result = extract_rpq(graph, coauthor, library.path_count())
        assert dict(result.graph.edges) == COAUTHOR_EXPECTED

    @pytest.mark.parametrize(
        "text",
        [
            "Paper -[publishAt]-> Venue",
            "Author -[authorBy]-> Paper -[publishAt]-> Venue",
            "Venue <-[publishAt]- Paper <-[authorBy]- Author "
            "-[authorBy]-> Paper -[publishAt]-> Venue",
        ],
    )
    def test_matches_oracle(self, graph, text):
        pattern = LinePattern.parse(text)
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        result = extract_rpq(graph, pattern, library.path_count(), num_workers=3)
        assert result.graph.equals(oracle.graph)

    def test_holistic_supported_without_merging(self, graph, coauthor):
        result = extract_rpq(graph, coauthor, library.median_path_value())
        assert all(v == 1.0 for v in result.graph.edges.values())


class TestIterationCount:
    def test_linear_iterations(self, graph):
        """RPQ needs one superstep per pattern edge — the paper's complaint."""
        for length in (2, 3, 4):
            pattern = LinePattern.chain("Paper", "citeBy", length)
            result = extract_rpq(graph, pattern, library.path_count())
            assert result.metrics.num_supersteps == length + 1
            assert result.iterations == length


class TestMergePartials:
    def test_merged_equals_unmerged(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plain = extract_rpq(graph, pattern, library.path_count())
        merged = extract_rpq(
            graph, pattern, library.path_count(), merge_partials=True
        )
        assert merged.graph.equals(plain.graph)
        assert merged.intermediate_paths <= plain.intermediate_paths

    def test_merge_with_holistic_rejected(self, graph, coauthor):
        with pytest.raises(AggregationError):
            RPQProgram(
                graph, coauthor, library.median_path_value(), merge_partials=True
            )
