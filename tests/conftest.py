"""Shared fixtures: small hand-built graphs with known path counts."""

from __future__ import annotations

import pytest

from repro.graph.hetgraph import HeterogeneousGraph
from repro.graph.pattern import LinePattern
from repro.graph.schema import GraphSchema

# Vertex ids of the hand-built scholarly graph (Figure 1 style).
A1, A2, A3, A4 = 1, 2, 3, 4
P1, P2, P3 = 11, 12, 13
V1, V2 = 21, 22


def build_scholarly() -> HeterogeneousGraph:
    """A tiny scholarly graph with hand-checkable path counts.

    - a1, a2 co-author p1 (published at v1)
    - a3, a4 co-author p2 and p3 (published at v1 and v2)
    - citations: p2 -> p1, p3 -> p2
    """
    schema = GraphSchema(
        vertex_labels=["Author", "Paper", "Venue"],
        edge_types=[
            ("authorBy", "Author", "Paper"),
            ("publishAt", "Paper", "Venue"),
            ("citeBy", "Paper", "Paper"),
        ],
    )
    g = HeterogeneousGraph(schema)
    for author in (A1, A2, A3, A4):
        g.add_vertex(author, "Author")
    for paper in (P1, P2, P3):
        g.add_vertex(paper, "Paper")
    for venue in (V1, V2):
        g.add_vertex(venue, "Venue")
    g.add_edge(A1, P1, "authorBy")
    g.add_edge(A2, P1, "authorBy")
    g.add_edge(A3, P2, "authorBy")
    g.add_edge(A4, P2, "authorBy")
    g.add_edge(A3, P3, "authorBy")
    g.add_edge(A4, P3, "authorBy")
    g.add_edge(P1, V1, "publishAt")
    g.add_edge(P2, V1, "publishAt")
    g.add_edge(P3, V2, "publishAt")
    g.add_edge(P2, P1, "citeBy")
    g.add_edge(P3, P2, "citeBy")
    return g


@pytest.fixture
def scholarly() -> HeterogeneousGraph:
    return build_scholarly()


@pytest.fixture
def coauthor_pattern() -> LinePattern:
    return LinePattern.parse(
        "Author -[authorBy]-> Paper <-[authorBy]- Author", name="coauthor"
    )


@pytest.fixture
def same_venue_pattern() -> LinePattern:
    """dblp-SP2 shape: authors publishing at the same venue (length 4)."""
    return LinePattern.parse(
        "Author -[authorBy]-> Paper -[publishAt]-> Venue "
        "<-[publishAt]- Paper <-[authorBy]- Author",
        name="same-venue",
    )


#: Expected co-author path counts on the scholarly graph (walks, so the
#: diagonal pairs through a shared paper are included).
COAUTHOR_EXPECTED = {
    (A1, A1): 1.0,
    (A1, A2): 1.0,
    (A2, A1): 1.0,
    (A2, A2): 1.0,
    (A3, A3): 2.0,
    (A3, A4): 2.0,
    (A4, A3): 2.0,
    (A4, A4): 2.0,
}
