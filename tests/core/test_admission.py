"""Static admission control (:mod:`repro.core.admission`): the
admit/degrade/reject ladder over certified peak-byte bounds, and its
wiring into ``GraphExtractor(memory_budget=...)``."""

from __future__ import annotations

import pytest

from repro.core.admission import (
    ADMISSION_ACTIONS,
    AdmissionController,
)
from repro.core.extractor import GraphExtractor
from repro.core.planner import line_plan, make_plan
from repro.errors import AdmissionError, EngineError
from repro.graph.hetgraph import HeterogeneousGraph
from repro.graph.pattern import LinePattern
from repro.graph.schema import GraphSchema
from repro.lint.bounds import BoundsAnalyzer, PatternBounds

#: A -> B -> C -> D -> E chain where the balanced plan's right leaf
#: concatenates a 21-path funnel the line plan never materialises, so
#: the certified BSP peak of hybrid is far above the line plan's.
FUNNEL_PATTERN = LinePattern.parse(
    "A -[a]-> B -[b]-> C -[c]-> D -[d]-> E"
)


def build_funnel() -> HeterogeneousGraph:
    schema = GraphSchema(
        edge_types=[
            ("a", "A", "B"),
            ("b", "B", "C"),
            ("c", "C", "D"),
            ("d", "D", "E"),
        ]
    )
    g = HeterogeneousGraph(schema)
    g.add_vertex(0, "A")
    g.add_vertex(1, "B")
    g.add_vertex(300, "D")
    g.add_vertex(400, "E")
    for i in range(21):
        g.add_vertex(100 + i, "C")
    g.add_edge(0, 1, "a")
    g.add_edge(1, 100, "b")
    for i in range(21):
        g.add_edge(100 + i, 300, "c")
    g.add_edge(300, 400, "d")
    return g


def funnel_setup():
    graph = build_funnel()
    analyzer = BoundsAnalyzer(
        FUNNEL_PATTERN,
        PatternBounds.from_compact(graph.to_compact(), FUNNEL_PATTERN),
    )
    plan = make_plan(
        FUNNEL_PATTERN, strategy="hybrid", graph=graph, bounds=analyzer
    )
    return graph, analyzer, plan


def peak(analyzer, plan, backend="bsp") -> float:
    return analyzer.analyze(plan, backend=backend).peak_bytes.hi


class TestAdmissionController:
    def test_budget_must_be_positive(self):
        _, analyzer, _ = funnel_setup()
        for bad in (0, -100):
            with pytest.raises(AdmissionError):
                AdmissionController(bad, analyzer)

    def test_admit_on_first_rung(self):
        _, analyzer, plan = funnel_setup()
        budget = peak(analyzer, plan) + 1
        decision = AdmissionController(budget, analyzer).decide(plan, "bsp")
        assert decision.action == "admit"
        assert decision.action in ADMISSION_ACTIONS
        assert decision.backend == "bsp"
        assert decision.plan is plan
        assert len(decision.attempts) == 1
        assert decision.attempts[0].fits
        assert "admit" in decision.describe()

    def test_degrade_to_line_plan(self):
        _, analyzer, plan = funnel_setup()
        hybrid_peak = peak(analyzer, plan)
        line_peak = peak(analyzer, line_plan(FUNNEL_PATTERN))
        assert line_peak < hybrid_peak  # the scenario this graph engineers
        budget = (line_peak + hybrid_peak) / 2
        decision = AdmissionController(budget, analyzer).decide(plan, "bsp")
        assert decision.action == "degrade"
        assert decision.backend == "bsp"
        assert decision.plan.strategy == "line"
        assert [a.fits for a in decision.attempts] == [False, True]
        assert decision.peak_bytes_hi <= budget
        assert "degraded" in decision.describe()

    def test_vectorized_ladder_walks_through_bsp(self):
        _, analyzer, plan = funnel_setup()
        with pytest.raises(AdmissionError) as excinfo:
            AdmissionController(1, analyzer).decide(plan, "vectorized")
        attempts = excinfo.value.decision.attempts
        assert [a.backend for a in attempts] == ["vectorized", "bsp", "bsp"]
        assert attempts[-1].strategy == "line"

    def test_reject_carries_full_decision(self):
        _, analyzer, plan = funnel_setup()
        with pytest.raises(AdmissionError) as excinfo:
            AdmissionController(1, analyzer).decide(plan, "bsp")
        decision = excinfo.value.decision
        assert decision.action == "reject"
        assert decision.backend is None
        assert all(not a.fits for a in decision.attempts)
        assert len(decision.attempts) == 2  # hybrid, then line
        assert "rejected" in decision.describe()
        assert "exceeds budget" in decision.attempts[0].describe()

    def test_planless_run_has_single_rung(self):
        graph = build_funnel()
        pattern = LinePattern.parse("A -[a]-> B")
        analyzer = BoundsAnalyzer(
            pattern, PatternBounds.from_compact(graph.to_compact(), pattern)
        )
        decision = AdmissionController(10**9, analyzer).decide(None, "bsp")
        assert decision.action == "admit"
        assert decision.plan is None
        assert len(decision.attempts) == 1

    def test_decision_as_dict_is_structured(self):
        _, analyzer, plan = funnel_setup()
        budget = peak(analyzer, plan) + 1
        decision = AdmissionController(budget, analyzer).decide(plan, "bsp")
        payload = decision.as_dict()
        assert payload["action"] == "admit"
        assert payload["requested_backend"] == "bsp"
        assert payload["attempts"][0]["strategy"] == "hybrid"
        assert payload["attempts"][0]["fits"] is True


class TestExtractorAdmission:
    def test_invalid_budget_rejected_at_construction(self):
        graph = build_funnel()
        for bad in (0, -1):
            with pytest.raises(EngineError):
                GraphExtractor(graph, memory_budget=bad)

    def test_no_budget_means_no_admission(self):
        graph = build_funnel()
        extractor = GraphExtractor(graph)
        result = extractor.extract(FUNNEL_PATTERN)
        assert extractor.last_admission is None
        assert "admission_checked" not in result.metrics.counters

    def test_admitted_run_counts_and_extracts(self):
        graph = build_funnel()
        extractor = GraphExtractor(graph, memory_budget=10**9)
        result = extractor.extract(FUNNEL_PATTERN)
        assert extractor.last_admission.action == "admit"
        assert result.metrics.counters["admission_checked"] == 1
        assert result.metrics.counters["admission_admitted"] == 1
        baseline = GraphExtractor(graph).extract(FUNNEL_PATTERN)
        assert result.graph.equals(baseline.graph)

    def test_degraded_run_swaps_plan_and_preserves_result(self):
        graph, analyzer, plan = funnel_setup()
        hybrid_peak = peak(analyzer, plan)
        line_peak = peak(analyzer, line_plan(FUNNEL_PATTERN))
        budget = int((line_peak + hybrid_peak) / 2)
        extractor = GraphExtractor(graph, backend="bsp", memory_budget=budget)
        result = extractor.extract(FUNNEL_PATTERN)
        assert extractor.last_admission.action == "degrade"
        assert extractor.last_admission.plan.strategy == "line"
        assert extractor.last_backend == "bsp"
        assert result.metrics.counters["admission_degraded"] == 1
        # the degraded plan still carries bounds, and they still hold
        assert result.drift is not None
        assert result.drift.containment_violations() == []
        baseline = GraphExtractor(graph).extract(FUNNEL_PATTERN)
        assert result.graph.equals(baseline.graph)

    def test_rejected_run_raises_and_records_decision(self):
        graph = build_funnel()
        extractor = GraphExtractor(graph, memory_budget=1)
        with pytest.raises(AdmissionError) as excinfo:
            extractor.extract(FUNNEL_PATTERN)
        assert excinfo.value.decision.action == "reject"
        assert extractor.last_admission is excinfo.value.decision

    def test_admission_error_is_an_engine_error(self):
        assert issubclass(AdmissionError, EngineError)
