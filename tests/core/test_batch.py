"""Tests for batched (multi-pattern) extraction."""

import pytest

from repro.aggregates import library
from repro.core.batch import BatchedExtractionProgram, run_batch_extraction
from repro.core.evaluator import PathConcatenationProgram, run_extraction
from repro.core.extractor import GraphExtractor
from repro.core.planner import iter_opt_plan
from repro.errors import PlanError
from repro.graph.pattern import LinePattern

from tests.conftest import build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


PATTERN_TEXTS = [
    "Author -[authorBy]-> Paper <-[authorBy]- Author",                 # h=1
    "Author -[authorBy]-> Paper -[publishAt]-> Venue",                 # h=1
    "Author -[authorBy]-> Paper -[publishAt]-> Venue "
    "<-[publishAt]- Paper <-[authorBy]- Author",                       # h=2
    "Paper -[publishAt]-> Venue",                                      # length 1
]


def make_jobs(graph, texts=PATTERN_TEXTS):
    jobs = []
    for text in texts:
        pattern = LinePattern.parse(text)
        plan = iter_opt_plan(pattern) if pattern.length > 1 else None
        jobs.append((pattern, plan, library.path_count()))
    return jobs


class TestBatchedExtraction:
    def test_matches_individual_runs(self, graph):
        jobs = make_jobs(graph)
        batched = run_batch_extraction(graph, jobs, num_workers=3)
        for (pattern, plan, aggregate), result in zip(jobs, batched):
            individual = run_extraction(graph, pattern, plan, aggregate)
            assert result.graph.equals(individual.graph), pattern

    def test_supersteps_are_max_not_sum(self, graph):
        jobs = make_jobs(graph)
        batched = run_batch_extraction(graph, jobs, num_workers=2)
        # the deepest plan has height 2 -> 3 supersteps for everything
        assert batched[0].metrics.num_supersteps == 3
        individual_total = 0
        for pattern, plan, aggregate in jobs:
            individual_total += run_extraction(
                graph, pattern, plan, aggregate
            ).metrics.num_supersteps
        assert batched[0].metrics.num_supersteps < individual_total

    def test_per_job_counters_namespaced(self, graph):
        jobs = make_jobs(graph)
        batched = run_batch_extraction(graph, jobs, num_workers=2)
        counters = batched[0].metrics.counters
        assert counters["job0.intermediate_paths"] > 0
        assert counters["job2.intermediate_paths"] > 0

    def test_basic_mode_batches(self, graph):
        jobs = make_jobs(graph, PATTERN_TEXTS[:2])
        batched = run_batch_extraction(graph, jobs, mode="basic")
        for (pattern, plan, aggregate), result in zip(jobs, batched):
            individual = run_extraction(graph, pattern, plan, aggregate)
            assert result.graph.equals(individual.graph)

    def test_empty_batch_rejected(self):
        with pytest.raises(PlanError, match="at least one"):
            BatchedExtractionProgram([])

    def test_trace_rejected(self, graph):
        pattern = LinePattern.parse(PATTERN_TEXTS[0])
        program = PathConcatenationProgram(
            graph, pattern, iter_opt_plan(pattern), library.path_count(),
            mode="basic", trace=True,
        )
        with pytest.raises(PlanError, match="trace"):
            BatchedExtractionProgram([program])


class TestExtractorFacade:
    def test_extract_many(self, graph):
        extractor = GraphExtractor(graph, num_workers=2)
        patterns = [LinePattern.parse(t) for t in PATTERN_TEXTS]
        results = extractor.extract_many(patterns)
        assert len(results) == len(patterns)
        for pattern, result in zip(patterns, results):
            individual = extractor.extract(pattern)
            assert result.graph.equals(individual.graph)

    def test_extract_many_validates_patterns(self, graph):
        from repro.errors import PatternMismatchError

        extractor = GraphExtractor(graph)
        with pytest.raises(PatternMismatchError):
            extractor.extract_many([LinePattern.parse("Ghost -[authorBy]-> Paper")])


class TestBatchModes:
    def test_holistic_aggregate_forces_basic(self, graph):
        extractor = GraphExtractor(graph, num_workers=2)
        patterns = [LinePattern.parse(t) for t in PATTERN_TEXTS[:2]]
        results = extractor.extract_many(
            patterns, aggregate=library.median_path_value()
        )
        for pattern, result in zip(patterns, results):
            individual = extractor.extract(pattern, library.median_path_value())
            assert result.graph.equals(individual.graph)

    def test_weighted_aggregate_in_batch(self, graph):
        graph.add_edge(1, 12, "authorBy", weight=0.5)
        extractor = GraphExtractor(graph, num_workers=2)
        patterns = [LinePattern.parse(t) for t in PATTERN_TEXTS]
        results = extractor.extract_many(
            patterns, aggregate=library.weighted_path_count()
        )
        for pattern, result in zip(patterns, results):
            individual = extractor.extract(
                pattern, library.weighted_path_count()
            )
            assert result.graph.equals(individual.graph)

    def test_batch_with_filters_and_wildcards(self, graph):
        graph.add_vertex(11, "Paper", {"year": 2008})
        graph.add_vertex(12, "Paper", {"year": 2012})
        graph.add_vertex(13, "Paper", {"year": 2015})
        extractor = GraphExtractor(graph, num_workers=2)
        patterns = [
            LinePattern.parse(
                "Author -[authorBy]-> Paper{year >= 2010} <-[authorBy]- Author"
            ),
            LinePattern.parse("Author -[authorBy]-> * <-[authorBy]- *"),
            LinePattern.parse("Paper -[citeBy]- Paper"),
        ]
        results = extractor.extract_many(patterns)
        for pattern, result in zip(patterns, results):
            individual = extractor.extract(pattern)
            assert result.graph.equals(individual.graph), pattern
