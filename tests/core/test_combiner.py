"""Tests for the optional in-flight message combiner (Giraph-style)."""

import pytest

from repro.aggregates import library
from repro.core.evaluator import PathConcatenationProgram, run_extraction
from repro.core.planner import iter_opt_plan
from repro.errors import PlanError
from repro.graph.pattern import LinePattern

from tests.conftest import build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def sp2():
    return LinePattern.parse(
        "Author -[authorBy]-> Paper -[publishAt]-> Venue "
        "<-[publishAt]- Paper <-[authorBy]- Author"
    )


class TestCombiner:
    def test_same_result_with_and_without(self, graph, sp2):
        plan = iter_opt_plan(sp2)
        plain = run_extraction(graph, sp2, plan, library.path_count())
        combined = run_extraction(
            graph, sp2, plan, library.path_count(), use_combiner=True
        )
        assert combined.graph.equals(plain.graph)

    def test_combiner_never_increases_ingest_work(self, graph, sp2):
        plan = iter_opt_plan(sp2)
        plain = run_extraction(graph, sp2, plan, library.path_count())
        combined = run_extraction(
            graph, sp2, plan, library.path_count(), use_combiner=True
        )
        # messages sent are identical; the combiner shrinks what arrives,
        # so total work cannot grow
        assert combined.metrics.total_messages == plain.metrics.total_messages
        assert combined.metrics.total_work <= plain.metrics.total_work

    def test_combiner_requires_partial_mode(self, graph, sp2):
        plan = iter_opt_plan(sp2)
        with pytest.raises(PlanError, match="use_combiner"):
            PathConcatenationProgram(
                graph, sp2, plan, library.path_count(),
                mode="basic", use_combiner=True,
            )

    def test_combiner_with_min_aggregate(self, graph, sp2):
        plan = iter_opt_plan(sp2)
        aggregate = library.sum_min()
        plain = run_extraction(graph, sp2, plan, library.sum_min())
        combined = run_extraction(
            graph, sp2, plan, aggregate, use_combiner=True
        )
        assert combined.graph.equals(plain.graph)
