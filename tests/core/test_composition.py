"""Tests for composing extractions (ExtractedGraph.to_hetgraph)."""

import pytest

from repro.aggregates import library
from repro.core.extractor import GraphExtractor
from repro.graph.pattern import LinePattern

from tests.conftest import A1, A2, A3, A4, build_scholarly


@pytest.fixture
def coauthor_result():
    graph = build_scholarly()
    extractor = GraphExtractor(graph)
    pattern = LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
    return graph, extractor.extract(pattern, library.path_count())


class TestToHetgraph:
    def test_symmetric_extraction_rewraps(self, coauthor_result):
        _, result = coauthor_result
        rewrapped = result.graph.to_hetgraph(edge_label="coauthor")
        assert rewrapped.count_label("Author") == 4
        assert rewrapped.num_edges() == result.graph.num_edges()
        # aggregate values became weights
        assert rewrapped.out_edges(A3, "coauthor")
        weights = dict(rewrapped.out_edges(A3, "coauthor"))
        assert weights[A4] == 2.0

    def test_bipartite_needs_labels(self):
        graph = build_scholarly()
        extractor = GraphExtractor(graph)
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue"
        )
        result = extractor.extract(pattern)
        with pytest.raises(ValueError, match="bipartite"):
            result.graph.to_hetgraph()
        recovered = result.graph.to_hetgraph(graph=graph, edge_label="publishes")
        assert recovered.count_label("Author") == 4
        assert recovered.count_label("Venue") == 2

    def test_two_stage_extraction(self, coauthor_result):
        """Extract co-authors, then find authors two co-author hops apart
        by extracting over the extracted graph."""
        _, result = coauthor_result
        stage_one = result.graph.to_hetgraph(edge_label="coauthor")
        two_hops = LinePattern.chain("Author", "coauthor", 2)
        second = GraphExtractor(stage_one).extract(
            two_hops, library.path_count()
        )
        # a1's coauthor neighbourhood is {a1, a2}; two hops stays inside it
        assert second.graph.has_edge(A1, A2)
        assert second.graph.has_edge(A1, A1)
        assert not second.graph.has_edge(A1, A3)
        # weighted second stage: counts multiply along paths
        weighted = GraphExtractor(stage_one).extract(
            two_hops, library.weighted_path_count()
        )
        # a3 -> a4 -> a3 (weight 2 each) plus a3 -> a3 -> a3 (self loops, 2 each)
        assert weighted.graph.value(A3, A3) > weighted.graph.value(A1, A1)

    def test_forced_vertex_label(self, coauthor_result):
        _, result = coauthor_result
        rewrapped = result.graph.to_hetgraph(
            vertex_label="Person", edge_label="knows"
        )
        assert rewrapped.count_label("Person") == 4


class TestWildcardComposition:
    def test_wildcard_endpoints_need_labels(self):
        graph = build_scholarly()
        extractor = GraphExtractor(graph, validate_patterns=False)
        pattern = LinePattern.parse("* -[citeBy]-> *")
        result = extractor.extract(pattern)
        # same start/end label ('*') -> rewrapping uses it directly unless
        # overridden; force a concrete label instead
        rewrapped = result.graph.to_hetgraph(
            vertex_label="Node", edge_label="cites"
        )
        assert rewrapped.count_label("Node") == result.graph.num_vertices()
        assert rewrapped.num_edges() == result.graph.num_edges()
