"""Unit tests for repro.core.cost (Eq. 3, 4, 7)."""

import pytest

from repro.core.cost import CostModel
from repro.core.plan import PCP
from repro.errors import PlanError
from repro.graph.pattern import LinePattern
from repro.graph.stats import GraphStatistics

from tests.conftest import build_scholarly


@pytest.fixture
def stats():
    return GraphStatistics.collect(build_scholarly())


@pytest.fixture
def sp2():
    """Author-Paper-Venue-Paper-Author (length 4)."""
    return LinePattern.parse(
        "Author -[authorBy]-> Paper -[publishAt]-> Venue "
        "<-[publishAt]- Paper <-[authorBy]- Author"
    )


class TestSegmentCount:
    def test_single_slot_is_edge_count(self, stats, sp2):
        model = CostModel(sp2, stats)
        assert model.segment_count(0, 1) == 6.0  # authorBy edges
        assert model.segment_count(1, 2) == 3.0  # publishAt edges

    def test_uniform_join(self, stats, sp2):
        model = CostModel(sp2, stats)
        # author-paper-venue: 6 * 3 / |Paper| = 6
        assert model.segment_count(0, 2) == pytest.approx(6.0)
        # full pattern: 6*3*3*6 / (3*2*3) = 18
        assert model.segment_count(0, 4) == pytest.approx(18.0)

    def test_split_independence(self, stats, sp2):
        """The closed form means the estimate is split-invariant."""
        model = CostModel(sp2, stats)
        full = model.segment_count(0, 4)
        for k in (1, 2, 3):
            joined = (
                model.segment_count(0, k)
                * model.segment_count(k, 4)
                / model.label_population(k)
            )
            assert joined == pytest.approx(full)

    def test_invalid_segment(self, stats, sp2):
        model = CostModel(sp2, stats)
        with pytest.raises(PlanError):
            model.segment_count(2, 2)
        with pytest.raises(PlanError):
            model.segment_count(0, 9)

    def test_empty_label_population_floor(self, stats):
        pattern = LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        model = CostModel(pattern, stats)
        assert model.label_population(0) == 4
        # unknown labels floor at 1, keeping divisions well defined
        ghost = LinePattern.parse("Ghost -[authorBy]-> Paper <-[authorBy]- Ghost")
        ghost_model = CostModel(ghost, stats)
        assert ghost_model.label_population(0) == 1


class TestNodeCost:
    def test_node_cost_equals_expected_output(self, stats, sp2):
        model = CostModel(sp2, stats)
        # node output estimate == segment count of what it produces
        assert model.node_cost(0, 2, 4) == pytest.approx(model.segment_count(0, 4))
        assert model.node_cost(0, 1, 2) == pytest.approx(model.segment_count(0, 2))

    def test_plan_cost_sums_nodes(self, stats, sp2):
        model = CostModel(sp2, stats)
        plan = PCP.from_pivot_chooser(sp2, lambda i, j: i + (j - i) // 2)
        total = sum(model.node_cost_of(node) for node in plan.nodes())
        assert model.plan_cost(plan) == pytest.approx(total)

    def test_left_deep_costlier_than_balanced_on_sp2(self, stats, sp2):
        model = CostModel(sp2, stats)
        balanced = PCP.from_pivot_chooser(sp2, lambda i, j: i + (j - i) // 2)
        left_deep = PCP.from_pivot_chooser(sp2, lambda i, j: j - 1)
        assert model.plan_cost(balanced) <= model.plan_cost(left_deep)


class TestPartialAggregationCosts:
    def test_partial_costs_never_exceed_basic(self, stats, sp2):
        basic = CostModel(sp2, stats, partial_aggregation=False)
        partial = CostModel(sp2, stats, partial_aggregation=True)
        plan = PCP.from_pivot_chooser(sp2, lambda i, j: i + (j - i) // 2)
        for node in plan.nodes():
            assert partial.node_cost_of(node) <= basic.node_cost_of(node)

    def test_partial_output_capped_by_pair_population(self, stats, sp2):
        partial = CostModel(sp2, stats, partial_aggregation=True)
        cap = partial.label_population(0) * partial.label_population(4)
        assert partial.node_cost(0, 2, 4) <= cap
