"""Basic-mode path accounting: ``produced`` counters are charged at the
actual emission sites, so they equal the number of materialised path
messages — not a precomputed product."""

from __future__ import annotations

from repro.aggregates import library
from repro.core.evaluator import run_extraction
from repro.core.planner import make_plan

from tests.conftest import COAUTHOR_EXPECTED


def _run(graph, pattern, **kwargs):
    plan = make_plan(pattern, "iter_opt", graph=graph)
    return run_extraction(
        graph, pattern, plan, library.path_count(), mode="basic", **kwargs
    )


class TestBasicModeCounters:
    def test_intermediate_paths_equal_materialised_paths(
        self, scholarly, coauthor_pattern
    ):
        result = _run(scholarly, coauthor_pattern)
        # every full path is materialised exactly once at the root pivot,
        # so the counter equals the total path count
        expected = int(sum(COAUTHOR_EXPECTED.values()))
        assert result.metrics.counters["intermediate_paths"] == expected
        root_counter = [
            value
            for name, value in result.metrics.counters.items()
            if name.startswith("node_paths:")
        ]
        assert root_counter == [expected]

    def test_traced_run_counts_identically(self, scholarly, coauthor_pattern):
        plain = _run(scholarly, coauthor_pattern)
        traced = _run(scholarly, coauthor_pattern, trace=True)
        assert (
            traced.metrics.counters["intermediate_paths"]
            == plain.metrics.counters["intermediate_paths"]
        )
        assert traced.metrics.counters["final_paths"] == plain.metrics.counters[
            "final_paths"
        ]

    def test_longer_pattern_counts_all_levels(self, scholarly):
        from repro.graph.pattern import LinePattern

        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author "
            "-[authorBy]-> Paper"
        )
        basic = _run(scholarly, pattern)
        # the sum over node counters must equal the aggregate counter
        node_total = sum(
            value
            for name, value in basic.metrics.counters.items()
            if name.startswith("node_paths:")
        )
        assert basic.metrics.counters["intermediate_paths"] == node_total
