"""Unit tests for repro.core.evaluator (Algorithms 1-3)."""

import pytest

from repro.aggregates import library
from repro.core.evaluator import PathConcatenationProgram, run_extraction
from repro.core.planner import iter_opt_plan, line_plan
from repro.errors import AggregationError, PlanError
from repro.graph.pattern import LinePattern

from tests.conftest import (
    A1,
    A2,
    A3,
    A4,
    COAUTHOR_EXPECTED,
    P1,
    P2,
    P3,
    V1,
    V2,
    build_scholarly,
)


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestBasicMode:
    def test_coauthor_counts(self, graph, coauthor):
        plan = iter_opt_plan(coauthor)
        result = run_extraction(
            graph, coauthor, plan, library.path_count(), mode="basic"
        )
        assert dict(result.graph.edges) == COAUTHOR_EXPECTED

    def test_final_paths_counted(self, graph, coauthor):
        plan = iter_opt_plan(coauthor)
        result = run_extraction(
            graph, coauthor, plan, library.path_count(), mode="basic"
        )
        assert result.final_paths == sum(COAUTHOR_EXPECTED.values())

    def test_iterations_equal_plan_height(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plan = iter_opt_plan(pattern)
        result = run_extraction(
            graph, pattern, plan, library.path_count(), mode="basic"
        )
        assert result.iterations == plan.height + 0  # H enumeration steps
        assert result.metrics.num_supersteps == plan.height + 1


class TestPartialMode:
    def test_same_result_as_basic(self, graph, coauthor):
        plan = iter_opt_plan(coauthor)
        basic = run_extraction(
            graph, coauthor, plan, library.path_count(), mode="basic"
        )
        partial = run_extraction(
            graph, coauthor, plan, library.path_count(), mode="partial"
        )
        assert partial.graph.equals(basic.graph)

    def test_fewer_or_equal_intermediate_paths(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plan = iter_opt_plan(pattern)
        basic = run_extraction(
            graph, pattern, plan, library.path_count(), mode="basic"
        )
        partial = run_extraction(
            graph, pattern, plan, library.path_count(), mode="partial"
        )
        assert partial.intermediate_paths <= basic.intermediate_paths

    def test_holistic_rejected(self, graph, coauthor):
        plan = iter_opt_plan(coauthor)
        with pytest.raises(AggregationError, match="holistic"):
            PathConcatenationProgram(
                graph, coauthor, plan, library.median_path_value(), mode="partial"
            )

    def test_algebraic_supported(self, graph, coauthor):
        plan = iter_opt_plan(coauthor)
        result = run_extraction(
            graph, coauthor, plan, library.avg_path_value(), mode="partial"
        )
        # all edges have weight 1, so every average is 1.0
        assert all(v == 1.0 for v in result.graph.edges.values())


class TestDirectionHandling:
    def test_backward_heavy_pattern(self, graph):
        """dblp-SP3 shape: venues of the same author."""
        pattern = LinePattern.parse(
            "Venue <-[publishAt]- Paper <-[authorBy]- Author "
            "-[authorBy]-> Paper -[publishAt]-> Venue"
        )
        plan = iter_opt_plan(pattern)
        result = run_extraction(graph, pattern, plan, library.path_count())
        # a3/a4 each connect v1<->v2 via (p2, p3): so (V1,V2) has 2 paths
        assert result.graph.value(V1, V2) == 2.0
        assert result.graph.value(V2, V1) == 2.0
        # v1 to itself: a1 via p1-p1, a2 via p1-p1, a3 via p2-p2, a4 via p2-p2
        assert result.graph.value(V1, V1) == 4.0

    def test_citation_chain(self, graph):
        pattern = LinePattern.chain("Paper", "citeBy", 2)
        plan = iter_opt_plan(pattern)
        result = run_extraction(graph, pattern, plan, library.path_count())
        # p3 -> p2 -> p1 is the only citeBy chain of length 2
        assert dict(result.graph.edges) == {(P3, P1): 1.0}


class TestSingleEdgePatterns:
    def test_direct_evaluation(self, graph):
        pattern = LinePattern.parse("Paper -[publishAt]-> Venue")
        result = run_extraction(graph, pattern, None, library.path_count())
        assert dict(result.graph.edges) == {
            (P1, V1): 1.0,
            (P2, V1): 1.0,
            (P3, V2): 1.0,
        }
        assert result.metrics.num_supersteps == 2

    def test_direct_partial_merges_parallel_edges(self, graph):
        graph.add_edge(P1, V1, "publishAt")  # parallel edge
        pattern = LinePattern.parse("Paper -[publishAt]-> Venue")
        result = run_extraction(
            graph, pattern, None, library.path_count(), mode="partial"
        )
        assert result.graph.value(P1, V1) == 2.0

    def test_plan_required_for_longer_patterns(self, graph, coauthor):
        with pytest.raises(PlanError, match="need a plan"):
            PathConcatenationProgram(
                graph, coauthor, None, library.path_count()
            )


class TestTraceMode:
    def test_traced_paths_are_real_walks(self, graph, coauthor):
        plan = iter_opt_plan(coauthor)
        result = run_extraction(
            graph, coauthor, plan, library.path_count(), mode="basic", trace=True
        )
        traced = result.traced_paths
        assert set(traced) == set(COAUTHOR_EXPECTED)
        assert sorted(traced[(A3, A4)]) == [(A3, P2, A4), (A3, P3, A4)]
        assert traced[(A1, A2)] == [(A1, P1, A2)]

    def test_trace_requires_basic(self, graph, coauthor):
        plan = iter_opt_plan(coauthor)
        with pytest.raises(PlanError, match="trace"):
            PathConcatenationProgram(
                graph, coauthor, plan, library.path_count(),
                mode="partial", trace=True,
            )

    def test_trace_with_line_plan_length4(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plan = line_plan(pattern)
        result = run_extraction(
            graph, pattern, plan, library.path_count(), mode="basic", trace=True
        )
        for (start, end), trails in result.traced_paths.items():
            for trail in trails:
                assert trail[0] == start
                assert trail[-1] == end
                assert len(trail) == 5


class TestWorkers:
    @pytest.mark.parametrize("workers", [1, 2, 3, 7])
    def test_result_independent_of_worker_count(self, graph, coauthor, workers):
        plan = iter_opt_plan(coauthor)
        result = run_extraction(
            graph, coauthor, plan, library.path_count(), num_workers=workers
        )
        assert dict(result.graph.edges) == COAUTHOR_EXPECTED

    def test_invalid_mode(self, graph, coauthor):
        plan = iter_opt_plan(coauthor)
        with pytest.raises(PlanError, match="mode"):
            PathConcatenationProgram(
                graph, coauthor, plan, library.path_count(), mode="turbo"
            )
