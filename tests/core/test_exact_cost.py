"""Tests for the exact-leaf cost model refinement."""

import pytest

from repro.aggregates import library
from repro.core.cost import CostModel, ExactLeafCostModel
from repro.core.evaluator import run_extraction
from repro.core.planner import hybrid_plan, iter_opt_plan, make_plan
from repro.errors import PlanError
from repro.graph.pattern import LinePattern
from repro.graph.stats import GraphStatistics

from tests.conftest import build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestExactLeafCosts:
    def test_leaf_cost_is_exact(self, graph, coauthor):
        """The NL-NL leaf estimate equals the measured produced paths."""
        model = ExactLeafCostModel(coauthor, graph)
        plan = iter_opt_plan(coauthor)
        result = run_extraction(
            graph, coauthor, plan, library.path_count(), mode="basic"
        )
        # single-node plan: its output count is the intermediate total
        assert model.plan_cost(plan) == result.intermediate_paths

    def test_uniform_model_differs_under_skew(self, graph, coauthor):
        """On the hand-built graph papers have 2 authors each, so uniform
        and exact agree; adding a hub paper splits them apart."""
        uniform = CostModel(coauthor, GraphStatistics.collect(graph))
        exact = ExactLeafCostModel(coauthor, graph)
        assert exact.node_cost(0, 1, 2) == pytest.approx(
            uniform.node_cost(0, 1, 2)
        )
        # hub: one paper with 4 extra authors
        for author in (101, 102, 103, 104):
            graph.add_vertex(author, "Author")
            graph.add_edge(author, 11, "authorBy")
        hub_uniform = CostModel(coauthor, GraphStatistics.collect(graph))
        hub_exact = ExactLeafCostModel(coauthor, graph)
        assert hub_exact.node_cost(0, 1, 2) > hub_uniform.node_cost(0, 1, 2)

    def test_exact_still_exact_with_hub(self, graph, coauthor):
        for author in (101, 102, 103):
            graph.add_vertex(author, "Author")
            graph.add_edge(author, 11, "authorBy")
        model = ExactLeafCostModel(coauthor, graph)
        plan = iter_opt_plan(coauthor)
        result = run_extraction(
            graph, coauthor, plan, library.path_count(), mode="basic"
        )
        assert model.plan_cost(plan) == result.intermediate_paths

    def test_ql_nodes_fall_back_to_uniform(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        uniform = CostModel(pattern, GraphStatistics.collect(graph))
        exact = ExactLeafCostModel(pattern, graph)
        # the root node [0,2,4] has two QL sides: same estimate
        assert exact.node_cost(0, 2, 4) == pytest.approx(
            uniform.node_cost(0, 2, 4)
        )

    def test_partial_aggregation_cap_applies(self, graph, coauthor):
        model = ExactLeafCostModel(coauthor, graph, partial_aggregation=True)
        cap = model.label_population(0) * model.label_population(2)
        assert model.node_cost(0, 1, 2) <= cap


class TestPlannerIntegration:
    def test_make_plan_with_exact_estimator(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plan = make_plan(
            pattern, strategy="hybrid", graph=graph, estimator="exact-leaf"
        )
        assert plan.strategy == "hybrid"
        assert plan.height == 2

    def test_exact_estimator_requires_graph(self, coauthor):
        with pytest.raises(PlanError, match="graph"):
            make_plan(coauthor, strategy="path_opt", estimator="exact-leaf")

    def test_unknown_estimator(self, graph, coauthor):
        with pytest.raises(PlanError, match="estimator"):
            make_plan(
                coauthor, strategy="path_opt", graph=graph, estimator="magic"
            )

    def test_plans_agree_on_results(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        uniform_plan = make_plan(pattern, graph=graph, estimator="uniform")
        exact_plan = make_plan(pattern, graph=graph, estimator="exact-leaf")
        a = run_extraction(graph, pattern, uniform_plan, library.path_count())
        b = run_extraction(graph, pattern, exact_plan, library.path_count())
        assert a.graph.equals(b.graph)