"""Unit tests for repro.core.extractor (the public façade)."""

import pytest

from repro.aggregates import library
from repro.core.extractor import GraphExtractor
from repro.errors import AggregationError, PatternMismatchError
from repro.graph.pattern import LinePattern

from tests.conftest import COAUTHOR_EXPECTED, build_scholarly


@pytest.fixture
def extractor():
    return GraphExtractor(build_scholarly(), num_workers=2)


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestExtract:
    def test_default_aggregate_is_path_count(self, extractor, coauthor):
        result = extractor.extract(coauthor)
        assert dict(result.graph.edges) == COAUTHOR_EXPECTED

    def test_result_carries_plan_and_metrics(self, extractor, coauthor):
        result = extractor.extract(coauthor)
        assert result.plan is not None
        assert result.plan.strategy == "hybrid"
        assert result.metrics.num_supersteps >= 2
        summary = result.summary()
        assert summary["result_edges"] == len(COAUTHOR_EXPECTED)
        assert summary["plan_strategy"] == "hybrid"

    def test_strategy_override(self, extractor):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        result = extractor.extract(pattern, strategy="line")
        assert result.plan.strategy == "line"
        assert result.iterations == 3

    def test_explicit_plan_bypasses_selection(self, extractor, coauthor):
        plan = extractor.plan(coauthor, strategy="iter_opt")
        result = extractor.extract(coauthor, plan=plan)
        assert result.plan is plan

    def test_holistic_falls_back_to_basic(self, extractor, coauthor):
        result = extractor.extract(coauthor, library.median_path_value())
        # every path has value 1 -> median 1
        assert all(v == 1.0 for v in result.graph.edges.values())

    def test_invalid_distributive_declaration_rejected(self, extractor, coauthor):
        from repro.aggregates.base import OP_ADD, DistributiveAggregate

        bogus = DistributiveAggregate(OP_ADD, OP_ADD, name="bogus")
        with pytest.raises(AggregationError):
            extractor.extract(coauthor, bogus)

    def test_pattern_validation(self, extractor):
        bad = LinePattern.parse("Editor -[authorBy]-> Paper")
        with pytest.raises(PatternMismatchError):
            extractor.extract(bad)

    def test_validation_can_be_disabled(self):
        extractor = GraphExtractor(build_scholarly(), validate_patterns=False)
        bad = LinePattern.parse("Editor -[authorBy]-> Paper")
        result = extractor.extract(bad)
        assert result.graph.num_edges() == 0

    def test_single_edge_pattern(self, extractor):
        result = extractor.extract(LinePattern.parse("Paper -[publishAt]-> Venue"))
        assert result.plan is None
        assert result.graph.num_edges() == 3

    def test_vertices_include_isolated_label_members(self, extractor, coauthor):
        result = extractor.extract(coauthor)
        # all four authors belong to V' even if some had no co-author edges
        assert result.graph.vertices == {1, 2, 3, 4}


class TestPlanning:
    def test_stats_cached(self, extractor, coauthor):
        first = extractor.stats
        assert extractor.stats is first

    def test_plan_for_single_edge_is_none(self, extractor):
        assert extractor.plan(LinePattern.parse("Paper -[publishAt]-> Venue")) is None

    def test_trace_forces_basic_mode(self, extractor, coauthor):
        result = extractor.extract(coauthor, trace=True)
        assert result.traced_paths is not None
        assert set(result.traced_paths) == set(COAUTHOR_EXPECTED)
