"""Tests for incremental extraction maintenance."""

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.core.incremental import IncrementalExtractor
from repro.errors import AggregationError, SchemaError
from repro.graph.filters import VertexFilter
from repro.graph.pattern import LinePattern

from tests.conftest import A1, A2, A3, A4, P1, P2, P3, V1, V2, build_scholarly


def assert_consistent(incremental, pattern, aggregate_factory):
    """The maintained result equals a from-scratch extraction."""
    oracle = extract_bruteforce(
        incremental.graph, pattern, aggregate_factory()
    )
    maintained = incremental.extracted()
    assert maintained.equals(oracle.graph, rel_tol=1e-7), maintained.diff(
        oracle.graph
    )


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestGraphRemoveEdge:
    def test_remove_existing(self):
        graph = build_scholarly()
        graph.remove_edge(P2, P1, "citeBy")
        assert graph.count_edge_label("citeBy") == 1
        assert graph.out_edges(P2, "citeBy") == []

    def test_remove_one_parallel_instance(self):
        graph = build_scholarly()
        graph.add_edge(A1, P1, "authorBy")
        graph.remove_edge(A1, P1, "authorBy")
        assert len(graph.out_edges(A1, "authorBy")) == 1

    def test_remove_missing_raises(self):
        graph = build_scholarly()
        with pytest.raises(SchemaError, match="no edge"):
            graph.remove_edge(A1, P2, "authorBy")


class TestInsertion:
    def test_single_insert_matches_recompute(self, coauthor):
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, coauthor)
        touched = inc.add_edge(A1, P2, "authorBy")
        assert (A1, A3) in touched
        assert_consistent(inc, coauthor, library.path_count)

    def test_insert_sequence(self, coauthor):
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, coauthor)
        for src, dst in [(A1, P2), (A2, P3), (A2, P2), (A1, P1)]:
            inc.add_edge(src, dst, "authorBy")
            assert_consistent(inc, coauthor, library.path_count)

    def test_insert_on_longer_pattern(self):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, pattern)
        inc.add_edge(P1, V2, "publishAt")
        assert_consistent(inc, pattern, library.path_count)
        inc.add_edge(A1, P3, "authorBy")
        assert_consistent(inc, pattern, library.path_count)

    def test_insert_same_label_chain(self):
        """citeBy chains: the new edge can match several slots at once."""
        pattern = LinePattern.chain("Paper", "citeBy", 2)
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, pattern)
        inc.add_edge(P1, P3, "citeBy")  # creates a cycle p1->p3->p2->p1
        assert_consistent(inc, pattern, library.path_count)
        inc.add_edge(P1, P1, "citeBy")  # self-loop: matches both slots
        assert_consistent(inc, pattern, library.path_count)

    def test_irrelevant_edge_changes_nothing(self, coauthor):
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, coauthor)
        before = dict(inc.extracted().edges)
        touched = inc.add_edge(P3, P1, "citeBy")  # citeBy not in pattern
        assert touched == {}
        assert dict(inc.extracted().edges) == before

    def test_weighted_aggregate(self, coauthor):
        graph = build_scholarly()
        inc = IncrementalExtractor(
            graph, coauthor, library.weighted_path_count()
        )
        inc.add_edge(A1, P2, "authorBy", weight=0.5)
        assert_consistent(inc, coauthor, library.weighted_path_count)

    def test_algebraic_aggregate(self, coauthor):
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, coauthor, library.avg_path_value())
        inc.add_edge(A1, P2, "authorBy", weight=2.0)
        assert_consistent(inc, coauthor, library.avg_path_value)

    def test_filters_respected(self):
        graph = build_scholarly()
        graph.add_vertex(P1, "Paper", {"year": 2008})
        graph.add_vertex(P2, "Paper", {"year": 2012})
        graph.add_vertex(P3, "Paper", {"year": 2015})
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        ).with_filter(1, VertexFilter("year", "ge", 2010))
        inc = IncrementalExtractor(graph, pattern)
        inc.add_edge(A1, P1, "authorBy")  # filtered paper: no new paths
        assert_consistent(inc, pattern, library.path_count)
        inc.add_edge(A1, P2, "authorBy")  # passes the filter
        assert_consistent(inc, pattern, library.path_count)

    def test_holistic_rejected(self, coauthor):
        with pytest.raises(AggregationError, match="holistic"):
            IncrementalExtractor(
                build_scholarly(), coauthor, library.median_path_value()
            )


class TestDeletion:
    def test_delete_matches_recompute(self, coauthor):
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, coauthor)
        touched = inc.remove_edge(A3, P2, "authorBy")
        assert_consistent(inc, coauthor, library.path_count)
        # (a3, a4) dropped from 2 shared papers to 1
        assert touched[(A3, A4)] == 1.0

    def test_pair_disappears_when_last_path_dies(self, coauthor):
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, coauthor)
        inc.remove_edge(A1, P1, "authorBy")
        assert not inc.extracted().has_edge(A1, A2)
        assert_consistent(inc, coauthor, library.path_count)

    def test_insert_then_delete_roundtrip(self, coauthor):
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, coauthor)
        before = dict(inc.extracted().edges)
        inc.add_edge(A1, P2, "authorBy")
        inc.remove_edge(A1, P2, "authorBy")
        assert dict(inc.extracted().edges) == pytest.approx(before)

    def test_delete_on_longer_pattern(self):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, pattern)
        inc.remove_edge(P2, V1, "publishAt")
        assert_consistent(inc, pattern, library.path_count)

    def test_non_invertible_merge_rejected(self, coauthor):
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, coauthor, library.max_min())
        with pytest.raises(AggregationError, match="invertible"):
            inc.remove_edge(A1, P1, "authorBy")

    def test_chain_deletion_with_reuse(self):
        """Deleting an edge that remaining paths could reuse elsewhere."""
        pattern = LinePattern.chain("Paper", "citeBy", 2)
        graph = build_scholarly()
        inc = IncrementalExtractor(graph, pattern)
        inc.add_edge(P1, P3, "citeBy")
        inc.add_edge(P1, P1, "citeBy")
        inc.remove_edge(P1, P3, "citeBy")
        assert_consistent(inc, pattern, library.path_count)
        inc.remove_edge(P1, P1, "citeBy")
        assert_consistent(inc, pattern, library.path_count)
