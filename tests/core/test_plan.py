"""Unit tests for repro.core.plan (Definitions 5-6, Theorem 2)."""

import pytest

from repro.core.plan import PCP, PCPNode, Placement, SideKind
from repro.errors import PlanError
from repro.graph.pattern import LinePattern


def chain(length):
    return LinePattern.chain("Patent", "citeBy", length)


def mid_chooser(i, j):
    return i + (j - i) // 2


class TestConstruction:
    def test_balanced_plan_length4(self):
        plan = PCP.from_pivot_chooser(chain(4), mid_chooser)
        assert plan.num_nodes == 3
        assert plan.height == 2
        root = plan.root
        assert (root.i, root.k, root.j) == (0, 2, 4)
        assert root.pattern_type == "QL-QL"
        assert root.left.pattern_type == "NL-NL"
        assert root.right.pattern_type == "NL-NL"

    def test_left_deep_plan(self):
        plan = PCP.from_pivot_chooser(chain(5), lambda i, j: j - 1)
        assert plan.num_nodes == 4
        assert plan.height == 4
        # every node has an NL right side
        assert all(node.right_kind is SideKind.NL for node in plan.nodes())

    def test_node_count_matches_theorem_2(self):
        for length in range(2, 12):
            plan = PCP.from_pivot_chooser(chain(length), mid_chooser)
            assert plan.num_nodes == length - 1

    def test_length_one_rejected(self):
        with pytest.raises(PlanError, match="length 1"):
            PCP.from_pivot_chooser(chain(1), mid_chooser)

    def test_bad_pivot_rejected(self):
        with pytest.raises(PlanError, match="pivot"):
            PCP.from_pivot_chooser(chain(4), lambda i, j: i)


class TestPlacements:
    def test_root_and_children_placements(self):
        plan = PCP.from_pivot_chooser(chain(4), mid_chooser)
        assert plan.root.placement is Placement.AT_END
        assert plan.root.left.placement is Placement.AT_END
        assert plan.root.right.placement is Placement.AT_START


class TestLevels:
    def test_levels_root_is_one(self):
        plan = PCP.from_pivot_chooser(chain(8), mid_chooser)
        by_level = plan.nodes_by_level()
        assert [node.level for node in by_level[1]] == [1]
        assert max(by_level) == plan.height

    def test_schedule_children_before_parents(self):
        plan = PCP.from_pivot_chooser(chain(7), mid_chooser)
        seen = set()
        for step in plan.evaluation_schedule():
            for node in step:
                if node.left:
                    assert node.left.node_id in seen
                if node.right:
                    assert node.right.node_id in seen
                seen.add(node.node_id)
        assert len(seen) == plan.num_nodes

    def test_same_level_nodes_share_iteration(self):
        plan = PCP.from_pivot_chooser(chain(4), mid_chooser)
        schedule = plan.evaluation_schedule()
        assert len(schedule) == 2
        assert {n.pattern_type for n in schedule[0]} == {"NL-NL"}
        assert schedule[1][0] is plan.root


class TestNodeProperties:
    def test_side_kinds_length3(self):
        plan = PCP.from_pivot_chooser(chain(3), lambda i, j: i + 1)
        root = plan.root
        assert root.left_kind is SideKind.NL
        assert root.right_kind is SideKind.QL
        assert root.pattern_type == "NL-QL"

    def test_post_order_ids(self):
        plan = PCP.from_pivot_chooser(chain(4), mid_chooser)
        ids = [node.node_id for node in plan.nodes()]
        assert ids == sorted(ids)
        assert plan.root.node_id == plan.num_nodes - 1

    def test_leaf_detection(self):
        plan = PCP.from_pivot_chooser(chain(4), mid_chooser)
        leaves = [n for n in plan.nodes() if n.is_leaf]
        assert len(leaves) == 2
        assert all(n.pattern_type == "NL-NL" for n in leaves)


class TestValidation:
    def test_signature_is_structural(self):
        a = PCP.from_pivot_chooser(chain(4), mid_chooser)
        b = PCP.from_pivot_chooser(chain(4), mid_chooser, strategy="other")
        assert a.signature() == b.signature()
        c = PCP.from_pivot_chooser(chain(4), lambda i, j: j - 1)
        assert a.signature() != c.signature()

    def test_describe_contains_nodes(self):
        plan = PCP.from_pivot_chooser(chain(4), mid_chooser)
        text = plan.describe()
        assert "pp" in text
        assert "NL-NL" in text

    def test_validate_rejects_mangled_tree(self):
        plan = PCP.from_pivot_chooser(chain(4), mid_chooser)
        plan.root.k = plan.root.j  # corrupt
        with pytest.raises(PlanError):
            plan.validate()
