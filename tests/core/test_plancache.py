"""Canonical subplan fingerprints and the certificate-carrying plan
cache (repro.core.plancache): fingerprint stability across plan objects,
the fingerprint ⇒ identical-sparse-product law, keyed lookup, and the
two invalidation paths (version bumps and cost-model drift)."""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.evaluator import VectorizedEvaluator
from repro.accel.semiring import resolve_kernels
from repro.aggregates import library
from repro.core.extractor import GraphExtractor
from repro.core.plancache import (
    PlanCache,
    aggregate_kind,
    kernel_signature,
    pattern_key,
    slot_fingerprint,
    subplan_fingerprint,
)
from repro.core.planner import STRATEGIES, make_plan
from repro.errors import PlanError
from repro.graph.pattern import LinePattern

from tests.conftest import build_scholarly
from tests.test_properties import graphs, patterns

CITE2 = "Paper -[citeBy]-> Paper -[citeBy]-> Paper"
CITE4 = (
    "Paper -[citeBy]-> Paper -[citeBy]-> Paper "
    "-[citeBy]-> Paper -[citeBy]-> Paper"
)


def _sig():
    return kernel_signature(resolve_kernels(library.path_count())[0])


class TestFingerprints:
    def test_stable_across_plan_objects(self, scholarly):
        pattern_a = LinePattern.parse(CITE2)
        pattern_b = LinePattern.parse(CITE2)
        plan_a = make_plan(pattern_a, "line", graph=scholarly)
        plan_b = make_plan(pattern_b, "line", graph=scholarly)
        sig = _sig()
        assert subplan_fingerprint(
            pattern_a, plan_a.root, sig
        ) == subplan_fingerprint(pattern_b, plan_b.root, sig)
        assert pattern_key(pattern_a) == pattern_key(pattern_b)

    def test_homogeneous_chain_shares_prefix_subtree(self, scholarly):
        """A left-deep length-4 citeBy chain contains the length-2 chain
        as its innermost subtree — content-equal, so fingerprint-equal
        even though the plans belong to different patterns."""
        p2 = LinePattern.parse(CITE2)
        p4 = LinePattern.parse(CITE4)
        plan2 = make_plan(p2, "line", graph=scholarly)
        plan4 = make_plan(p4, "line", graph=scholarly)
        inner = plan4.root
        while inner.left is not None:
            inner = inner.left
        sig = _sig()
        assert subplan_fingerprint(p4, inner, sig) == subplan_fingerprint(
            p2, plan2.root, sig
        )
        # all four slots of the homogeneous chain are content-equal
        fps = {slot_fingerprint(p4, slot, sig) for slot in range(1, 5)}
        assert len(fps) == 1

    def test_direction_and_label_change_fingerprint(self):
        fwd = LinePattern.parse("Author -[authorBy]-> Paper")
        bwd = LinePattern.parse("Paper <-[authorBy]- Author")
        other = LinePattern.parse("Paper -[publishAt]-> Venue")
        sig = _sig()
        fps = {
            slot_fingerprint(fwd, 1, sig),
            slot_fingerprint(bwd, 1, sig),
            slot_fingerprint(other, 1, sig),
        }
        assert len(fps) == 3

    def test_filters_change_pattern_key(self):
        plain = LinePattern.parse("Author -[authorBy]-> Paper")
        filtered = LinePattern.parse(
            "Author{h_index >= 2} -[authorBy]-> Paper"
        )
        assert pattern_key(plain) != pattern_key(filtered)

    def test_kernel_signature_distinguishes_aggregates(self):
        count_sig = kernel_signature(
            resolve_kernels(library.path_count())[0]
        )
        exists_sig = kernel_signature(
            resolve_kernels(library.exists_path())[0]
        )
        assert count_sig != exists_sig
        pattern = LinePattern.parse(CITE2)
        assert slot_fingerprint(pattern, 1, count_sig) != slot_fingerprint(
            pattern, 1, exists_sig
        )

    def test_aggregate_kind_identity(self):
        assert aggregate_kind(library.path_count()) == aggregate_kind(
            library.path_count()
        )
        kinds = {
            aggregate_kind(library.path_count()),
            aggregate_kind(library.max_min()),
            aggregate_kind(library.avg_path_value()),
        }
        assert len(kinds) == 3


def _node_matrix(evaluator, compact, node, ci=0):
    """Recursively evaluate one PCP node's sparse product the way the
    vectorized evaluator would (masked slot matrices, kernel matmul)."""
    kernel = evaluator._kernels[ci]
    if node.left is None:
        left = evaluator._slot_matrix(compact, node.k, ci)[0]
    else:
        left = _node_matrix(evaluator, compact, node.left, ci)
    if node.right is None:
        right = evaluator._slot_matrix(compact, node.k + 1, ci)[0]
    else:
        right = _node_matrix(evaluator, compact, node.right, ci)
    return kernel.matmul(left, right)[0]


class TestFingerprintProductLaw:
    """The sharing soundness law: fingerprint-equal subplans evaluate to
    *identical* sparse products (this is what lets the multi-query DAG
    compute each canonical node once and fan the matrix out)."""

    @settings(max_examples=25, deadline=None)
    @given(
        graph=graphs(),
        pattern=patterns(max_length=4),
        strategy_a=st.sampled_from(STRATEGIES),
        strategy_b=st.sampled_from(STRATEGIES),
    )
    def test_equal_fingerprints_mean_equal_products(
        self, graph, pattern, strategy_a, strategy_b
    ):
        plan_a = make_plan(pattern, strategy_a, graph=graph)
        plan_b = make_plan(pattern, strategy_b, graph=graph)
        aggregate = library.path_count()
        eval_a = VectorizedEvaluator(graph, pattern, plan_a, aggregate)
        eval_b = VectorizedEvaluator(graph, pattern, plan_b, aggregate)
        sig = kernel_signature(eval_a._kernels[0])
        compact = graph.to_compact()
        products_by_fp = {}
        for evaluator, plan in ((eval_a, plan_a), (eval_b, plan_b)):
            for node in plan.nodes():
                fp = subplan_fingerprint(pattern, node, sig)
                matrix = _node_matrix(evaluator, compact, node)
                seen = products_by_fp.get(fp)
                if seen is None:
                    products_by_fp[fp] = matrix
                else:
                    assert (seen - matrix).count_nonzero() == 0
                    assert seen.shape == matrix.shape

    def test_cross_pattern_shared_subtree_products_match(self):
        graph = build_scholarly()
        p2 = LinePattern.parse(CITE2)
        p4 = LinePattern.parse(CITE4)
        plan2 = make_plan(p2, "line", graph=graph)
        plan4 = make_plan(p4, "line", graph=graph)
        aggregate = library.path_count()
        eval2 = VectorizedEvaluator(graph, p2, plan2, aggregate)
        eval4 = VectorizedEvaluator(graph, p4, plan4, aggregate)
        compact = graph.to_compact()
        inner = plan4.root
        while inner.left is not None:
            inner = inner.left
        m2 = _node_matrix(eval2, compact, plan2.root)
        m4 = _node_matrix(eval4, compact, inner)
        assert (m2 - m4).count_nonzero() == 0


class TestPlanCache:
    def _key(self, cache, graph, pattern):
        return cache.key_for(
            graph, pattern, library.path_count(), strategy="iter_opt"
        )

    def test_miss_then_hit(self, scholarly, coauthor_pattern):
        cache = PlanCache()
        key = self._key(cache, scholarly, coauthor_pattern)
        assert cache.lookup(key) is None
        plan = make_plan(coauthor_pattern, "iter_opt", graph=scholarly)
        cache.store(key, plan)
        entry = cache.lookup(key)
        assert entry is not None and entry.plan is plan
        assert cache.stats()["plan_cache_hits"] == 1
        assert cache.stats()["plan_cache_misses"] == 1
        assert entry.hits == 1

    def test_version_bump_changes_key_and_evicts(
        self, scholarly, coauthor_pattern
    ):
        cache = PlanCache()
        key = self._key(cache, scholarly, coauthor_pattern)
        cache.store(key, make_plan(coauthor_pattern, "iter_opt", graph=scholarly))
        scholarly.add_edge(1, 12, "authorBy")
        fresh_key = self._key(cache, scholarly, coauthor_pattern)
        assert fresh_key != key
        assert cache.evict_stale(scholarly.version) == 1
        assert len(cache) == 0
        assert cache.stats()["plan_cache_evicted_version"] == 1

    def test_drift_breach_evicts_within_band_keeps(
        self, scholarly, coauthor_pattern
    ):
        cache = PlanCache(drift_threshold=4.0)
        key = self._key(cache, scholarly, coauthor_pattern)
        cache.store(key, make_plan(coauthor_pattern, "iter_opt", graph=scholarly))
        assert not cache.observe_drift(key, SimpleNamespace(plan_drift=2.0))
        assert key in cache
        assert cache.observe_drift(key, SimpleNamespace(plan_drift=9.0))
        assert key not in cache
        assert cache.stats()["plan_cache_evicted_drift"] == 1
        # under-estimates breach the symmetric band too
        cache.store(key, None)
        assert cache.observe_drift(key, SimpleNamespace(plan_drift=0.1))

    def test_capacity_lru_eviction(self, scholarly):
        cache = PlanCache(capacity=2)
        specs = [
            "Author -[authorBy]-> Paper",
            "Paper -[publishAt]-> Venue",
            "Paper -[citeBy]-> Paper",
        ]
        keys = []
        for spec in specs:
            pattern = LinePattern.parse(spec)
            key = self._key(cache, scholarly, pattern)
            cache.store(key, None)
            keys.append(key)
        assert len(cache) == 2
        assert keys[0] not in cache  # oldest evicted
        assert cache.stats()["plan_cache_evicted_capacity"] == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(PlanError):
            PlanCache(drift_threshold=1.0)
        with pytest.raises(PlanError):
            PlanCache(capacity=0)


class TestExtractorIntegration:
    def test_repeat_extracts_hit_and_store_certificate(
        self, scholarly, coauthor_pattern
    ):
        extractor = GraphExtractor(
            scholarly, backend="vectorized", plan_cache=True
        )
        first = extractor.extract(coauthor_pattern, library.path_count())
        second = extractor.extract(coauthor_pattern, library.path_count())
        assert first.graph.edges == second.graph.edges
        stats = extractor.cache_stats()
        assert stats["plan_cache_misses"] == 1
        assert stats["plan_cache_hits"] >= 1
        entry = next(iter(extractor.plan_cache._entries.values()))
        assert entry.certificate is not None
        assert entry.plan is not None and entry.plan.node_bounds

    def test_mutation_invalidates_cached_plan(
        self, scholarly, coauthor_pattern
    ):
        extractor = GraphExtractor(
            scholarly, backend="vectorized", plan_cache=True
        )
        extractor.extract(coauthor_pattern, library.path_count())
        scholarly.add_edge(2, 12, "authorBy")
        result = extractor.extract(coauthor_pattern, library.path_count())
        stats = extractor.cache_stats()
        assert stats["plan_cache_evicted_version"] >= 1
        assert stats["plan_cache_misses"] == 2
        # the replanned extraction sees the new edge
        assert result.graph.edges[(1, 2)] >= 1.0

    def test_cache_off_by_default(self, scholarly, coauthor_pattern):
        extractor = GraphExtractor(scholarly)
        assert extractor.plan_cache is None
        extractor.extract(coauthor_pattern, library.path_count())
        assert extractor.cache_stats()["plan_cache_hits"] == 0
