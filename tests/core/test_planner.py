"""Unit tests for repro.core.planner (§5.2: the four strategies)."""

import math
import random

import pytest

from repro.core.cost import CostModel
from repro.core.planner import (
    STRATEGIES,
    hybrid_plan,
    iter_opt_plan,
    line_plan,
    make_plan,
    path_opt_plan,
)
from repro.errors import PlanError
from repro.graph.pattern import LinePattern
from repro.graph.stats import GraphStatistics

from tests.conftest import build_scholarly


def chain(length):
    return LinePattern.chain("Paper", "citeBy", length)


@pytest.fixture
def stats():
    return GraphStatistics.collect(build_scholarly())


class TestLineStrategy:
    def test_height_is_linear(self):
        for length in range(2, 10):
            assert line_plan(chain(length)).height == length - 1

    def test_direction_right(self):
        plan = line_plan(chain(4), direction="right")
        assert plan.root.k == 1

    def test_invalid_direction(self):
        with pytest.raises(PlanError):
            line_plan(chain(3), direction="up")


class TestIterOptStrategy:
    def test_height_is_log(self):
        for length in range(2, 33):
            plan = iter_opt_plan(chain(length))
            assert plan.height == max(math.ceil(math.log2(length)), 1)

    def test_random_tiebreak_still_minimal_height(self):
        rng = random.Random(3)
        for length in (3, 5, 7, 9, 11, 13):
            plan = iter_opt_plan(chain(length), rng=rng)
            assert plan.height == math.ceil(math.log2(length))

    def test_deterministic_without_rng(self):
        a = iter_opt_plan(chain(9))
        b = iter_opt_plan(chain(9))
        assert a.signature() == b.signature()


class TestPathOptStrategy:
    def test_minimises_over_all_plans_small(self, stats):
        """Exhaustive check: path_opt's cost equals the true minimum over
        every possible plan for a short pattern."""
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        model = CostModel(pattern, stats)

        def all_costs(i, j):
            if j - i < 2:
                return [0.0]
            costs = []
            for k in range(i + 1, j):
                for lc in all_costs(i, k):
                    for rc in all_costs(k, j):
                        costs.append(lc + rc + model.node_cost(i, k, j))
            return costs

        best = min(all_costs(0, pattern.length))
        plan = path_opt_plan(pattern, model)
        assert model.plan_cost(plan) == pytest.approx(best)
        assert plan.estimated_cost == pytest.approx(best)

    def test_cost_never_above_other_strategies(self, stats):
        pattern = LinePattern.chain("Paper", "citeBy", 6)
        model = CostModel(pattern, stats)
        path_cost = model.plan_cost(path_opt_plan(pattern, model))
        assert path_cost <= model.plan_cost(line_plan(pattern)) + 1e-9
        assert path_cost <= model.plan_cost(iter_opt_plan(pattern)) + 1e-9
        assert path_cost <= model.plan_cost(hybrid_plan(pattern, model)) + 1e-9


class TestHybridStrategy:
    def test_minimal_height_always(self, stats):
        for length in range(2, 17):
            pattern = LinePattern.chain("Paper", "citeBy", length)
            model = CostModel(pattern, stats)
            plan = hybrid_plan(pattern, model)
            assert plan.height == max(math.ceil(math.log2(length)), 1)

    def test_cost_between_path_opt_and_iter_opt(self, stats):
        for length in (4, 5, 6, 7, 8):
            pattern = LinePattern.chain("Paper", "citeBy", length)
            model = CostModel(pattern, stats)
            hybrid_cost = model.plan_cost(hybrid_plan(pattern, model))
            assert (
                model.plan_cost(path_opt_plan(pattern, model))
                <= hybrid_cost + 1e-9
            )
            assert hybrid_cost <= model.plan_cost(iter_opt_plan(pattern)) + 1e-9

    def test_hybrid_optimal_among_min_height_plans(self, stats):
        """Exhaustive check on length 5: hybrid's cost is the minimum over
        all plans of minimal height."""
        pattern = LinePattern.chain("Paper", "citeBy", 5)
        model = CostModel(pattern, stats)
        min_height = math.ceil(math.log2(5))

        def enumerate_plans(i, j):
            """(cost, height) pairs for all subtrees over [i, j]."""
            if j - i < 2:
                return [(0.0, 0)]
            options = []
            for k in range(i + 1, j):
                for lc, lh in enumerate_plans(i, k):
                    for rc, rh in enumerate_plans(k, j):
                        options.append(
                            (lc + rc + model.node_cost(i, k, j), 1 + max(lh, rh))
                        )
            return options

        candidates = [
            cost
            for cost, height in enumerate_plans(0, 5)
            if height == min_height
        ]
        plan = hybrid_plan(pattern, model)
        assert model.plan_cost(plan) == pytest.approx(min(candidates))


class TestMakePlan:
    def test_dispatch(self, stats):
        pattern = chain(4)
        graph = build_scholarly()
        for strategy in STRATEGIES:
            plan = make_plan(pattern, strategy=strategy, graph=graph)
            assert plan.strategy == strategy
            assert plan.num_nodes == 3

    def test_stats_shortcut(self, stats):
        plan = make_plan(chain(4), strategy="hybrid", stats=stats)
        assert plan.strategy == "hybrid"

    def test_missing_stats_for_cost_strategies(self):
        with pytest.raises(PlanError, match="statistics"):
            make_plan(chain(4), strategy="path_opt")

    def test_unknown_strategy(self):
        with pytest.raises(PlanError, match="unknown strategy"):
            make_plan(chain(4), strategy="greedy")
