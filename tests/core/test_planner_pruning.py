"""Sound branch-and-bound pruning in the DP planners
(:func:`repro.core.planner._solve_dp` with a ``BoundsAnalyzer``): prune
records are real proofs, and pruning never changes extraction results."""

from __future__ import annotations

import pytest

from repro.aggregates.library import path_count
from repro.core.evaluator import run_extraction
from repro.core.extractor import GraphExtractor
from repro.core.planner import STRATEGIES, make_plan
from repro.graph.hetgraph import HeterogeneousGraph
from repro.graph.pattern import LinePattern
from repro.graph.schema import GraphSchema
from repro.lint.bounds import Interval

from tests.conftest import build_scholarly

#: A -> B -> C -> D chain: twenty A->B edges funnel into a single B, so
#: segment [0,2] certifies 20 paths while [1,3] certifies exactly 1 —
#: pivoting the root at 2 is provably dominated by pivoting at 1.
SKEW_PATTERN = LinePattern.parse("A -[x]-> B -[y]-> C -[z]-> D")

SAME_VENUE = LinePattern.parse(
    "Author -[authorBy]-> Paper -[publishAt]-> Venue "
    "<-[publishAt]- Paper <-[authorBy]- Author",
)


def build_skewed() -> HeterogeneousGraph:
    schema = GraphSchema(
        edge_types=[("x", "A", "B"), ("y", "B", "C"), ("z", "C", "D")]
    )
    g = HeterogeneousGraph(schema)
    for i in range(20):
        g.add_vertex(i, "A")
    g.add_vertex(100, "B")
    g.add_vertex(200, "C")
    g.add_vertex(300, "D")
    for i in range(20):
        g.add_edge(i, 100, "x")
    g.add_edge(100, 200, "y")
    g.add_edge(200, 300, "z")
    return g


class TestPruneRecords:
    def test_dominated_pivot_is_pruned_with_proof(self):
        graph = build_skewed()
        plan = make_plan(
            SKEW_PATTERN, strategy="path_opt", graph=graph, bounds="measured"
        )
        assert len(plan.prune_trace) == 1
        record = plan.prune_trace[0]
        assert record.segment == (0, 3)
        assert record.pivot == 2
        assert record.incumbent_pivot == 1
        # the proof obligation: certified lower strictly dominates
        assert record.certified_lower > record.incumbent_upper
        # and the planner actually avoided the dominated pivot
        assert plan.root.k == 1

    def test_no_bounds_means_no_trace(self):
        graph = build_skewed()
        plan = make_plan(SKEW_PATTERN, strategy="path_opt", graph=graph)
        assert plan.prune_trace == []
        assert plan.node_bounds == {}

    def test_incumbent_always_survives(self):
        """Pruning can never empty the pivot set (lo <= hi on the
        incumbent's own interval), so plans always materialise."""
        graph = build_skewed()
        for strategy in ("path_opt", "hybrid"):
            plan = make_plan(
                SKEW_PATTERN,
                strategy=strategy,
                graph=graph,
                bounds="measured",
            )
            assert plan.num_nodes == SKEW_PATTERN.length - 1

    def test_uniform_graph_prunes_nothing(self):
        """On the scholarly graph the same-venue segments are too close
        for any pivot to be *provably* dominated — pruning stays
        conservative."""
        graph = build_scholarly()
        plan = make_plan(
            SAME_VENUE, strategy="hybrid", graph=graph, bounds="measured"
        )
        assert plan.prune_trace == []


class TestPruningPreservesResults:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_extraction_equivalence_on_skewed_graph(self, strategy):
        graph = build_skewed()
        plain = make_plan(SKEW_PATTERN, strategy=strategy, graph=graph)
        pruned = make_plan(
            SKEW_PATTERN, strategy=strategy, graph=graph, bounds="measured"
        )
        # sound pruning only skips provably-dominated candidates, so the
        # chosen plan and the extracted graph are identical
        assert pruned.signature() == plain.signature()
        a = run_extraction(graph, SKEW_PATTERN, plain, path_count())
        b = run_extraction(graph, SKEW_PATTERN, pruned, path_count())
        assert a.graph.equals(b.graph)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_extraction_equivalence_on_scholarly(self, strategy):
        graph = build_scholarly()
        plain = make_plan(SAME_VENUE, strategy=strategy, graph=graph)
        pruned = make_plan(
            SAME_VENUE, strategy=strategy, graph=graph, bounds="measured"
        )
        a = run_extraction(graph, SAME_VENUE, plain, path_count())
        b = run_extraction(graph, SAME_VENUE, pruned, path_count())
        assert a.graph.equals(b.graph)


class TestPlanAnnotations:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_gets_certified_annotations(self, strategy):
        graph = build_skewed()
        plan = make_plan(
            SKEW_PATTERN, strategy=strategy, graph=graph, bounds="measured"
        )
        assert plan.bounds_source == "measured"
        assert isinstance(plan.certified_cost, Interval)
        assert set(plan.node_bounds) == {n.node_id for n in plan.nodes()}
        assert all(hi >= 0 for hi in plan.node_bounds.values())

    def test_certified_cost_contains_observed_basic_total(self):
        """Eq. 3's certified counterpart: in basic BSP mode the summed
        ``node_paths`` counters land inside ``plan.certified_cost``."""
        graph = build_skewed()
        plan = make_plan(
            SKEW_PATTERN, strategy="hybrid", graph=graph, bounds="measured"
        )
        result = GraphExtractor(graph, partial_aggregation=False).extract(
            SKEW_PATTERN, plan=plan
        )
        assert plan.certified_cost.contains(result.intermediate_paths)

    def test_declared_bounds_also_annotate(self):
        graph = build_skewed()
        schema = graph.schema
        schema.declare_label_cardinality("A", 20)
        schema.declare_label_cardinality("B", 1)
        schema.declare_edge_bounds(
            "x", "A", "B", max_count=20, max_out_degree=1, max_in_degree=20
        )
        plan = make_plan(
            SKEW_PATTERN,
            strategy="hybrid",
            graph=graph,
            schema=schema,
            bounds="declared",
        )
        assert plan.bounds_source == "declared"
        assert plan.certified_cost.lo == 0.0
