"""Unit tests for repro.core.result."""

import pytest

from repro.core.result import ExtractedGraph, ExtractionResult
from repro.engine.metrics import RunMetrics, SuperstepMetrics


def make(edges, start="A", end="B", vertices=None):
    return ExtractedGraph(start, end, vertices or {1, 2, 3}, edges)


class TestExtractedGraph:
    def test_queries(self):
        g = make({(1, 2): 3.0, (2, 1): 3.0})
        assert g.num_edges() == 2
        assert g.num_vertices() == 3
        assert g.value(1, 2) == 3.0
        assert g.has_edge(2, 1)
        assert not g.has_edge(1, 3)
        with pytest.raises(KeyError):
            g.value(1, 3)

    def test_sorted_edges(self):
        g = make({(2, 1): 1.0, (1, 2): 2.0})
        assert g.sorted_edges() == [(1, 2, 2.0), (2, 1, 1.0)]

    def test_as_undirected_collapses_pairs(self):
        g = make({(1, 2): 3.0, (2, 1): 3.0, (2, 2): 1.0})
        und = g.as_undirected()
        assert dict(und.edges) == {(1, 2): 3.0, (2, 2): 1.0}

    def test_as_undirected_with_merge(self):
        g = make({(1, 2): 3.0, (2, 1): 4.0})
        und = g.as_undirected(merge=max)
        assert dict(und.edges) == {(1, 2): 4.0}


class TestEquality:
    def test_equal_within_tolerance(self):
        a = make({(1, 2): 1.0})
        b = make({(1, 2): 1.0 + 1e-12})
        assert a.equals(b)
        assert a.diff(b) == []

    def test_differing_values(self):
        a = make({(1, 2): 1.0})
        b = make({(1, 2): 2.0})
        assert not a.equals(b)
        assert "left=1.0 right=2.0" in a.diff(b)[0]

    def test_differing_structure(self):
        a = make({(1, 2): 1.0})
        b = make({(1, 3): 1.0})
        assert not a.equals(b)
        assert len(a.diff(b)) == 2

    def test_infinite_values_compare_exactly(self):
        inf = float("inf")
        assert make({(1, 2): inf}).equals(make({(1, 2): inf}))
        assert not make({(1, 2): inf}).equals(make({(1, 2): 1.0}))

    def test_non_numeric_values(self):
        a = make({(1, 2): (1.0, 2.0)})
        assert a.equals(make({(1, 2): (1.0, 2.0)}))
        assert not a.equals(make({(1, 2): (1.0, 3.0)}))


class TestExtractionResult:
    def test_derived_properties(self):
        metrics = RunMetrics(num_workers=2)
        for step in range(3):
            metrics.supersteps.append(
                SuperstepMetrics(superstep=step, work_per_worker=[1, 1])
            )
        metrics.counters["intermediate_paths"] = 42
        metrics.counters["final_paths"] = 7
        result = ExtractionResult(graph=make({(1, 2): 1.0}), metrics=metrics)
        assert result.iterations == 2
        assert result.intermediate_paths == 42
        assert result.final_paths == 7
        summary = result.summary()
        assert summary["result_edges"] == 1
        assert "plan_strategy" not in summary
