"""Tests for the sampling-based cost model."""

import pytest

from repro.aggregates import library
from repro.core.cost import CostModel
from repro.core.evaluator import run_extraction
from repro.core.planner import hybrid_plan, path_opt_plan
from repro.core.sampling import SamplingCostModel, _slot_neighbors
from repro.graph.filters import VertexFilter
from repro.graph.pattern import LinePattern
from repro.graph.stats import GraphStatistics

from tests.conftest import A1, A2, P1, V1, build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestSlotNeighbors:
    def test_forward_slot(self, graph, coauthor):
        assert _slot_neighbors(graph, coauthor, 1, A1) == [P1]

    def test_backward_slot(self, graph, coauthor):
        assert sorted(_slot_neighbors(graph, coauthor, 2, P1)) == [A1, A2]

    def test_filters_respected(self, graph):
        graph.add_vertex(P1, "Paper", {"year": 2008})
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper"
        ).with_filter(1, VertexFilter("year", "ge", 2010))
        assert _slot_neighbors(graph, pattern, 1, A1) == []


class TestEstimates:
    def test_exact_on_single_slot(self, graph, coauthor):
        """A single edge slot: the walk's weight is exactly the degree, so
        with enough samples the estimate converges near the true count."""
        model = SamplingCostModel(coauthor, graph, num_samples=2000, seed=1)
        assert model.segment_count(0, 1) == pytest.approx(6.0, rel=0.2)

    def test_full_pattern_close_to_truth(self, graph, coauthor):
        model = SamplingCostModel(coauthor, graph, num_samples=4000, seed=2)
        # true number of co-author walks is 12 (tests/conftest)
        assert model.segment_count(0, 2) == pytest.approx(12.0, rel=0.25)

    def test_deterministic_under_seed(self, graph, coauthor):
        a = SamplingCostModel(coauthor, graph, num_samples=100, seed=5)
        b = SamplingCostModel(coauthor, graph, num_samples=100, seed=5)
        assert a.segment_count(0, 2) == b.segment_count(0, 2)

    def test_cached(self, graph, coauthor):
        model = SamplingCostModel(coauthor, graph, num_samples=50, seed=3)
        first = model.segment_count(0, 2)
        assert model.segment_count(0, 2) == first

    def test_empty_label_returns_zero(self, graph):
        pattern = LinePattern.parse("Ghost -[authorBy]-> Paper")
        model = SamplingCostModel(pattern, graph, num_samples=10)
        assert model.segment_count(0, 1) == 0.0

    def test_captures_skew_uniform_misses(self, graph, coauthor):
        """Attach a hub paper: sampling sees the degree correlation that
        the uniform model averages away."""
        for author in range(200, 215):
            graph.add_vertex(author, "Author")
            graph.add_edge(author, P1, "authorBy")
        uniform = CostModel(coauthor, GraphStatistics.collect(graph))
        sampled = SamplingCostModel(coauthor, graph, num_samples=4000, seed=7)
        # true count: sum over papers of (#authors)^2 = 17^2 + 2^2 + 2^2
        true = 17 * 17 + 4 + 4
        uniform_error = abs(uniform.segment_count(0, 2) - true)
        sampled_error = abs(sampled.segment_count(0, 2) - true)
        assert sampled_error < uniform_error


class TestPlannerIntegration:
    def test_planner_accepts_sampling_model(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        model = SamplingCostModel(pattern, graph, num_samples=100, seed=11)
        for planner in (hybrid_plan, path_opt_plan):
            plan = planner(pattern, model)
            result = run_extraction(graph, pattern, plan, library.path_count())
            oracle = run_extraction(
                graph, pattern, hybrid_plan(
                    pattern, CostModel(pattern, GraphStatistics.collect(graph))
                ), library.path_count(),
            )
            assert result.graph.equals(oracle.graph)
