"""Unit tests for the DBLP-like generator."""

import pytest

from repro.datasets.dblp import dblp_schema, generate_dblp, tiny_dblp
from repro.errors import DatasetError


class TestSchema:
    def test_labels_and_types(self):
        schema = dblp_schema()
        assert schema.vertex_labels == frozenset({"Author", "Paper", "Venue"})
        assert schema.has_edge_type("authorBy", "Author", "Paper")
        assert schema.has_edge_type("publishAt", "Paper", "Venue")
        assert schema.has_edge_type("citeBy", "Paper", "Paper")


class TestGenerate:
    def test_vertex_counts(self):
        g = generate_dblp(n_authors=100, n_papers=150, n_venues=10, seed=1)
        assert g.count_label("Author") == 100
        assert g.count_label("Paper") == 150
        assert g.count_label("Venue") == 10

    def test_every_paper_has_one_venue(self):
        g = generate_dblp(n_authors=50, n_papers=80, n_venues=8, seed=2)
        for paper in g.vertices_with_label("Paper"):
            assert g.out_degree(paper, "publishAt") == 1

    def test_mean_degrees_reasonable(self):
        g = generate_dblp(
            n_authors=500, n_papers=800, n_venues=20,
            papers_per_author=3.0, citations_per_paper=2.0, seed=3,
        )
        author_by = g.count_edge_label("authorBy") / 500
        cite_by = g.count_edge_label("citeBy") / 800
        assert 2.5 < author_by < 3.5
        assert 1.6 < cite_by < 2.4

    def test_deterministic(self):
        a = generate_dblp(n_authors=40, n_papers=60, n_venues=5, seed=9)
        b = generate_dblp(n_authors=40, n_papers=60, n_venues=5, seed=9)
        assert sorted((e.src, e.dst, e.label) for e in a.edges()) == sorted(
            (e.src, e.dst, e.label) for e in b.edges()
        )

    def test_weight_range(self):
        g = generate_dblp(
            n_authors=30, n_papers=40, n_venues=4, seed=5, weight_range=(0.2, 0.8)
        )
        weights = [e.weight for e in g.edges()]
        assert all(0.2 <= w <= 0.8 for w in weights)

    def test_venue_popularity_skewed(self):
        g = generate_dblp(n_authors=200, n_papers=2000, n_venues=20, seed=6)
        in_degrees = sorted(
            (g.in_degree(v, "publishAt") for v in g.vertices_with_label("Venue")),
            reverse=True,
        )
        assert in_degrees[0] > 3 * in_degrees[-1]

    def test_invalid_counts(self):
        with pytest.raises(DatasetError):
            generate_dblp(n_authors=0)


def test_tiny_dblp_is_small():
    g = tiny_dblp()
    assert g.num_vertices() < 500
    assert g.schema.has_edge_type("authorBy")
