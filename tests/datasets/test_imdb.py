"""Unit + integration tests for the IMDB-like generator."""

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.core.extractor import GraphExtractor
from repro.datasets.imdb import (
    COSTAR,
    DIRECTOR_ACTOR,
    SAME_GENRE_ACTORS,
    generate_imdb,
    imdb_schema,
    tiny_imdb,
)
from repro.errors import DatasetError


class TestSchema:
    def test_labels_and_types(self):
        schema = imdb_schema()
        assert schema.vertex_labels == frozenset(
            {"Actor", "Movie", "Director", "Genre"}
        )
        assert schema.has_edge_type("actsIn", "Actor", "Movie")
        assert schema.has_edge_type("directs", "Director", "Movie")
        assert schema.has_edge_type("hasGenre", "Movie", "Genre")

    def test_builtin_patterns_validate(self):
        schema = imdb_schema()
        for pattern in (COSTAR, DIRECTOR_ACTOR, SAME_GENRE_ACTORS):
            pattern.validate_against(schema)
        assert COSTAR.is_symmetric()
        assert SAME_GENRE_ACTORS.is_symmetric()


class TestGenerate:
    def test_vertex_counts(self):
        g = generate_imdb(
            n_actors=50, n_movies=40, n_directors=8, n_genres=5, seed=1
        )
        assert g.count_label("Actor") == 50
        assert g.count_label("Movie") == 40
        assert g.count_label("Director") == 8
        assert g.count_label("Genre") == 5

    def test_every_movie_has_one_director(self):
        g = tiny_imdb()
        for movie in g.vertices_with_label("Movie"):
            assert g.in_degree(movie, "directs") == 1

    def test_genre_cap(self):
        g = tiny_imdb()
        assert all(
            g.out_degree(m, "hasGenre") <= 3
            for m in g.vertices_with_label("Movie")
        )

    def test_deterministic(self):
        a = generate_imdb(n_actors=30, n_movies=25, n_directors=5, n_genres=4, seed=9)
        b = generate_imdb(n_actors=30, n_movies=25, n_directors=5, n_genres=4, seed=9)
        assert sorted((e.src, e.dst, e.label) for e in a.edges()) == sorted(
            (e.src, e.dst, e.label) for e in b.edges()
        )

    def test_invalid_counts(self):
        with pytest.raises(DatasetError):
            generate_imdb(n_genres=0)


class TestExtractionOnImdb:
    @pytest.mark.parametrize(
        "pattern", [COSTAR, DIRECTOR_ACTOR, SAME_GENRE_ACTORS]
    )
    def test_matches_oracle(self, pattern):
        graph = tiny_imdb()
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        result = GraphExtractor(graph, num_workers=3).extract(pattern)
        assert result.graph.equals(oracle.graph)

    def test_costar_self_loops_exist(self):
        """Non-simple semantics: every actor with a movie co-stars with
        themselves."""
        graph = tiny_imdb()
        result = GraphExtractor(graph).extract(COSTAR)
        actors_with_movies = [
            a for a in graph.vertices_with_label("Actor")
            if graph.out_degree(a, "actsIn") > 0
        ]
        assert all(result.graph.has_edge(a, a) for a in actors_with_movies)
