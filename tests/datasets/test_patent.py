"""Unit tests for the patent-like generator."""

import pytest

from repro.datasets.patent import generate_patent, patent_schema, tiny_patent
from repro.errors import DatasetError


class TestSchema:
    def test_labels_and_types(self):
        schema = patent_schema()
        assert schema.vertex_labels == frozenset(
            {"Inventor", "Patent", "Location", "Category"}
        )
        assert schema.has_edge_type("invents", "Inventor", "Patent")
        assert schema.has_edge_type("citeBy", "Patent", "Patent")
        assert schema.has_edge_type("locatedAt", "Patent", "Location")
        assert schema.has_edge_type("belongTo", "Patent", "Category")


class TestGenerate:
    def test_vertex_counts(self):
        g = generate_patent(
            n_inventors=60, n_patents=100, n_locations=8, n_categories=5, seed=1
        )
        assert g.count_label("Inventor") == 60
        assert g.count_label("Patent") == 100
        assert g.count_label("Location") == 8
        assert g.count_label("Category") == 5

    def test_every_patent_located_and_categorised(self):
        g = generate_patent(
            n_inventors=40, n_patents=70, n_locations=6, n_categories=4, seed=2
        )
        for patent in g.vertices_with_label("Patent"):
            assert g.out_degree(patent, "locatedAt") == 1
            assert g.out_degree(patent, "belongTo") == 1

    def test_deterministic(self):
        kwargs = dict(
            n_inventors=30, n_patents=50, n_locations=5, n_categories=3, seed=4
        )
        a = generate_patent(**kwargs)
        b = generate_patent(**kwargs)
        assert sorted((e.src, e.dst, e.label) for e in a.edges()) == sorted(
            (e.src, e.dst, e.label) for e in b.edges()
        )

    def test_invalid_counts(self):
        with pytest.raises(DatasetError):
            generate_patent(n_locations=0)


def test_tiny_patent_is_small():
    g = tiny_patent()
    assert g.num_vertices() < 400
    assert g.schema.has_edge_type("invents")
