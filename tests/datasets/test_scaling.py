"""Unit tests for the dataset scaling (Fig. 10(b) methodology)."""

import pytest

from repro.datasets.dblp import generate_dblp
from repro.datasets.scaling import (
    augment_with_clones,
    sample_induced,
    scale_graph,
)
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def base():
    return generate_dblp(n_authors=200, n_papers=300, n_venues=20, seed=13)


class TestSampleInduced:
    def test_per_label_fraction(self, base):
        sampled = sample_induced(base, 0.5, seed=1)
        assert sampled.count_label("Author") == 100
        assert sampled.count_label("Paper") == 150
        assert sampled.count_label("Venue") == 10

    def test_edges_are_induced(self, base):
        sampled = sample_induced(base, 0.4, seed=2)
        for edge in sampled.edges():
            assert sampled.has_vertex(edge.src)
            assert sampled.has_vertex(edge.dst)
        assert sampled.num_edges() <= base.num_edges()

    def test_full_fraction_keeps_everything(self, base):
        sampled = sample_induced(base, 1.0, seed=3)
        assert sampled.num_vertices() == base.num_vertices()
        assert sampled.num_edges() == base.num_edges()

    def test_invalid_fraction(self, base):
        with pytest.raises(DatasetError):
            sample_induced(base, 0.0)
        with pytest.raises(DatasetError):
            sample_induced(base, 1.5)


class TestAugmentWithClones:
    def test_adds_requested_clones(self, base):
        grown = augment_with_clones(base, "Venue", 15, seed=4)
        assert grown.count_label("Venue") == base.count_label("Venue") + 15
        assert grown.count_label("Author") == base.count_label("Author")

    def test_clones_copy_incident_edges(self, base):
        grown = augment_with_clones(
            base, "Venue", 10, seed=5, incident_edge_label="publishAt"
        )
        new_venues = set(grown.vertices_with_label("Venue")) - set(
            base.vertices_with_label("Venue")
        )
        # at least one clone of a non-empty venue must carry edges
        assert any(grown.in_degree(v, "publishAt") > 0 for v in new_venues)

    def test_zero_extra_is_copy(self, base):
        same = augment_with_clones(base, "Venue", 0, seed=6)
        assert same.num_vertices() == base.num_vertices()
        assert same.num_edges() == base.num_edges()

    def test_unknown_label_rejected(self, base):
        with pytest.raises(DatasetError):
            augment_with_clones(base, "Ghost", 5)


class TestScaleGraph:
    def test_downscale_uses_sampling(self, base):
        small = scale_graph(base, 0.5, clone_label="Venue", seed=7)
        assert small.num_vertices() == pytest.approx(
            base.num_vertices() * 0.5, rel=0.05
        )

    def test_upscale_uses_cloning(self, base):
        big = scale_graph(base, 1.5, clone_label="Venue", seed=8)
        assert big.num_vertices() == pytest.approx(
            base.num_vertices() * 1.5, rel=0.05
        )
        assert big.count_label("Author") == base.count_label("Author")

    def test_factor_one_is_identity(self, base):
        assert scale_graph(base, 1.0, clone_label="Venue") is base

    def test_invalid_factor(self, base):
        with pytest.raises(DatasetError):
            scale_graph(base, -1.0, clone_label="Venue")
