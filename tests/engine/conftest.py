"""Shared fixtures for the engine suites.

The procpool tests create real ``/dev/shm`` segments; the autouse
fixture below scrapes the shm filesystem after *every* engine test and
fails on any ``repro_*`` residue, so a leaked segment is caught by the
test that leaked it, not by a later unrelated failure.
"""

from __future__ import annotations

import os

import pytest

_SHM_DIR = "/dev/shm"


def shm_residue() -> list:
    """Names of leaked ``repro_*`` shared-memory segments."""
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # platform without a POSIX shm filesystem
        return []
    return [name for name in names if name.startswith("repro_")]


@pytest.fixture(autouse=True)
def _no_shm_residue():
    yield
    residue = shm_residue()
    assert not residue, (
        f"leaked shared-memory segments in {_SHM_DIR}: {residue}"
    )
