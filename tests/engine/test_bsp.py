"""Unit tests for repro.engine.bsp: superstep semantics, halting, metrics."""

import pytest

from repro.engine.bsp import BSPEngine, ComputeContext, VertexProgram
from repro.errors import EngineError


class EchoChain(VertexProgram):
    """Each vertex i forwards a token to vertex i+1 for a fixed number of
    hops; verifies message delivery order and superstep alignment."""

    def __init__(self, hops, n):
        self.hops = hops
        self.n = n
        self.seen = {}

    def num_supersteps(self):
        return self.hops + 1

    def compute(self, ctx):
        if ctx.superstep == 0 and ctx.vid == 0:
            ctx.send(1, ("token", 1))
            return
        for token, hop in ctx.messages:
            self.seen.setdefault(ctx.vid, []).append((ctx.superstep, hop))
            if hop < self.hops:
                ctx.send((ctx.vid + 1) % self.n, (token, hop + 1))

    def finish(self, states, metrics):
        return self.seen


class TestMessageDelivery:
    def test_one_superstep_per_hop(self):
        engine = BSPEngine(list(range(5)), num_workers=2)
        seen = engine.run(EchoChain(hops=3, n=5))
        # vertex k receives the token at superstep k with hop count k
        assert seen == {1: [(1, 1)], 2: [(2, 2)], 3: [(3, 3)]}

    def test_messages_not_delivered_same_superstep(self):
        class SameStep(VertexProgram):
            def __init__(self):
                self.got_early = False

            def num_supersteps(self):
                return 1

            def compute(self, ctx):
                if ctx.messages:
                    self.got_early = True
                ctx.send(ctx.vid, "x")

        program = SameStep()
        BSPEngine([1, 2], num_workers=1).run(program)
        assert not program.got_early


class TestQuiescence:
    def test_stops_when_no_messages(self):
        class Quiet(VertexProgram):
            def compute(self, ctx):
                if ctx.superstep == 0 and ctx.vid == 0:
                    ctx.send(1, "ping")

        engine = BSPEngine([0, 1], num_workers=1)
        engine.run(Quiet())
        # superstep 0 sends, superstep 1 consumes, superstep 2 sees nothing
        assert engine.last_metrics.num_supersteps == 2

    def test_runaway_program_raises(self):
        class Chatty(VertexProgram):
            def compute(self, ctx):
                ctx.send(ctx.vid, "again")

        engine = BSPEngine([0], num_workers=1, max_supersteps=10)
        with pytest.raises(EngineError, match="quiesce"):
            engine.run(Chatty())

    def test_planned_run_exceeding_bound_raises(self):
        class Long(VertexProgram):
            def num_supersteps(self):
                return 100

            def compute(self, ctx):
                pass

        engine = BSPEngine([0], num_workers=1, max_supersteps=10)
        with pytest.raises(EngineError, match="exceeding"):
            engine.run(Long())


class TestState:
    def test_state_persists_across_supersteps(self):
        class Counter(VertexProgram):
            def num_supersteps(self):
                return 3

            def compute(self, ctx):
                state = ctx.state()
                state["count"] = state.get("count", 0) + 1

            def finish(self, states, metrics):
                return {vid: s["count"] for vid, s in states.items()}

        result = BSPEngine([1, 2], num_workers=2).run(Counter())
        assert result == {1: 3, 2: 3}


class TestAccounting:
    def test_vertex_scans_counted(self):
        class Noop(VertexProgram):
            def num_supersteps(self):
                return 2

            def compute(self, ctx):
                pass

        engine = BSPEngine(list(range(10)), num_workers=2)
        engine.run(Noop())
        metrics = engine.last_metrics
        assert metrics.num_supersteps == 2
        assert metrics.total_work == 20  # one scan per vertex per superstep

    def test_explicit_work_charged_to_owner(self):
        class Worker0Heavy(VertexProgram):
            def num_supersteps(self):
                return 1

            def compute(self, ctx):
                if ctx.vid == 0:
                    ctx.add_work(100)

        engine = BSPEngine([0, 1], num_workers=2)
        engine.run(Worker0Heavy())
        work = engine.last_metrics.supersteps[0].work_per_worker
        assert work[0] == 101  # scan + explicit
        assert work[1] == 1

    def test_message_counts(self):
        class Sender(VertexProgram):
            def num_supersteps(self):
                return 1

            def compute(self, ctx):
                ctx.send(0, "m")
                ctx.send(1, "m")

        engine = BSPEngine([0, 1, 2], num_workers=1)
        engine.run(Sender())
        assert engine.last_metrics.total_messages == 6

    def test_counters_via_context(self):
        class Counting(VertexProgram):
            def num_supersteps(self):
                return 1

            def compute(self, ctx):
                ctx.add_counter("things", 2)

        engine = BSPEngine([0, 1], num_workers=1)
        engine.run(Counting())
        assert engine.last_metrics.counters["things"] == 4


class TestCombiner:
    def test_combiner_merges_per_destination(self):
        class SumCombine(VertexProgram):
            def __init__(self):
                self.received = {}

            def num_supersteps(self):
                return 2

            def combiner(self):
                return lambda vid, msgs: [sum(msgs)]

            def compute(self, ctx):
                if ctx.superstep == 0:
                    ctx.send(0, 1)
                    ctx.send(0, 2)
                else:
                    if ctx.messages:
                        self.received[ctx.vid] = list(ctx.messages)

        program = SumCombine()
        BSPEngine([0, 1], num_workers=1).run(program)
        assert program.received == {0: [6]}  # (1+2) from each of two vertices


class TestConfiguration:
    def test_invalid_max_supersteps(self):
        with pytest.raises(EngineError):
            BSPEngine([1], num_workers=1, max_supersteps=0)

    def test_partitions_exposed(self):
        engine = BSPEngine(list(range(6)), num_workers=3)
        assert sorted(v for part in engine.partitions for v in part) == list(range(6))
