"""Tests for checkpoint/recovery (Pregel-style fault tolerance)."""

import pytest

from repro.aggregates import library
from repro.core.evaluator import run_extraction
from repro.core.planner import iter_opt_plan
from repro.engine.bsp import BSPEngine, VertexProgram
from repro.engine.checkpoint import (
    FileCheckpointStore,
    InMemoryCheckpointStore,
    RecoverableBSPEngine,
)
from repro.errors import EngineError
from repro.graph.pattern import LinePattern

from tests.conftest import COAUTHOR_EXPECTED, build_scholarly


class Accumulator(VertexProgram):
    """Each vertex accumulates its messages; vertex 0 seeds a wave.  An
    optional crash is armed for one specific (attempt, superstep)."""

    def __init__(self, steps=4, crash_at=None):
        self.steps = steps
        self.crash_at = crash_at
        self.attempt = 0

    def num_supersteps(self):
        return self.steps

    def compute(self, ctx):
        if self.crash_at is not None and ctx.superstep == self.crash_at:
            self.crash_at = None  # only crash once
            raise RuntimeError("injected failure")
        state = ctx.state()
        state["total"] = state.get("total", 0) + sum(ctx.messages)
        ctx.send((ctx.vid + 1) % 4, 1)

    def finish(self, states, metrics):
        return {vid: s.get("total", 0) for vid, s in states.items()}


class TestStores:
    def test_in_memory_roundtrip(self):
        store = InMemoryCheckpointStore()
        assert store.latest() is None
        from repro.engine.metrics import RunMetrics

        store.save(2, {1: {"x": 1}}, {1: [5]}, RunMetrics(num_workers=1))
        assert store.latest() == 2
        states, inbox, metrics, globals_ = store.load(2)
        assert globals_ == {}
        assert states == {1: {"x": 1}}
        assert inbox == {1: [5]}

    def test_in_memory_snapshots_are_isolated(self):
        from repro.engine.metrics import RunMetrics

        store = InMemoryCheckpointStore()
        states = {1: {"x": 1}}
        store.save(0, states, {}, RunMetrics(num_workers=1))
        states[1]["x"] = 99  # mutate after saving
        loaded, _, _, _ = store.load(0)
        assert loaded[1]["x"] == 1

    def test_missing_checkpoint_raises(self):
        with pytest.raises(EngineError):
            InMemoryCheckpointStore().load(7)

    def test_file_store_roundtrip(self, tmp_path):
        from repro.engine.metrics import RunMetrics

        store = FileCheckpointStore(tmp_path / "ckpt")
        store.save(
            0,
            {1: {"a": (1, 2)}},
            {2: [(0, 1, 2.0)]},
            RunMetrics(num_workers=2),
            {"delta": 0.5},
        )
        store.save(3, {}, {}, RunMetrics(num_workers=2))
        assert store.latest() == 3
        states, inbox, _, globals_ = store.load(0)
        assert globals_ == {"delta": 0.5}
        assert states == {1: {"a": (1, 2)}}
        assert inbox == {2: [(0, 1, 2.0)]}
        store.clear()
        assert store.latest() is None


class TestConcurrentWriters:
    """Concurrent-writer safety of the file store: per-writer unique tmp
    names + ``os.replace`` mean a writer SIGKILLed mid-checkpoint can
    never leave a truncated file under the final name, and parallel
    savers of the *same* superstep never interleave into a torn
    snapshot."""

    def test_parallel_writers_same_superstep_stay_intact(self, tmp_path):
        import multiprocessing as mp

        from repro.engine.metrics import RunMetrics

        directory = tmp_path / "ckpt"

        def writer(tag):
            store = FileCheckpointStore(directory)
            payload = {vid: {"tag": tag, "blob": "x" * 4096} for vid in range(50)}
            for _ in range(20):
                store.save(0, payload, {}, RunMetrics(num_workers=1))

        ctx = mp.get_context("fork")
        procs = [ctx.Process(target=writer, args=(tag,)) for tag in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        store = FileCheckpointStore(directory)
        # whoever won the last rename, the snapshot must load intact
        states, _, _, _ = store.load(0)
        assert len(states) == 50
        assert states[0]["tag"] in range(4)
        # no stray tmp files left behind by any writer
        assert not list(directory.glob("*.tmp"))

    def test_writer_killed_mid_save_never_corrupts(self, tmp_path):
        import os
        import signal
        import multiprocessing as mp

        from repro.engine.metrics import RunMetrics

        directory = tmp_path / "ckpt"
        store = FileCheckpointStore(directory)
        store.save(1, {1: {"x": 1}}, {}, RunMetrics(num_workers=1))

        def slow_writer(started):
            victim = FileCheckpointStore(directory)
            big = {vid: {"blob": "y" * 65536} for vid in range(200)}
            started.set()
            while True:
                victim.save(1, big, {}, RunMetrics(num_workers=1))

        ctx = mp.get_context("fork")
        started = ctx.Event()
        proc = ctx.Process(target=slow_writer, args=(started,))
        proc.start()
        started.wait(10.0)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join()
        # whatever instant the SIGKILL landed at, the published snapshot
        # is one of the writers' complete payloads — never a torn file
        from repro.engine.checkpoint import newest_intact

        states, _, _, _ = store.load(1)
        assert states == {1: {"x": 1}} or len(states) == 200
        intact = newest_intact(store)
        assert intact is not None and intact[0] == 1
        # clear() sweeps any tmp the killed writer left behind
        store.clear()
        assert not list(directory.glob("*"))


class TestRecovery:
    def test_result_identical_to_plain_engine(self):
        plain = BSPEngine(list(range(4)), num_workers=2).run(Accumulator())
        recoverable = RecoverableBSPEngine(list(range(4)), num_workers=2).run(
            Accumulator()
        )
        assert recoverable == plain

    def test_crash_then_resume_gives_same_result(self):
        expected = BSPEngine(list(range(4)), num_workers=2).run(Accumulator())
        engine = RecoverableBSPEngine(list(range(4)), num_workers=2)
        program = Accumulator(crash_at=2)
        with pytest.raises(RuntimeError, match="injected"):
            engine.run(program)
        result = engine.run(program, resume=True)
        assert result == expected

    def test_no_metric_double_counting_after_resume(self):
        engine = RecoverableBSPEngine(list(range(4)), num_workers=2)
        program = Accumulator(crash_at=2)
        with pytest.raises(RuntimeError):
            engine.run(program)
        engine.run(program, resume=True)
        # 4 planned supersteps; superstep 2 was replayed once, counted once
        assert engine.last_metrics.num_supersteps == 4
        assert [s.superstep for s in engine.last_metrics.supersteps] == [0, 1, 2, 3]

    def test_checkpoint_every_respected(self):
        store = InMemoryCheckpointStore()
        engine = RecoverableBSPEngine(
            list(range(4)), num_workers=1, checkpoint_every=2, store=store
        )
        engine.run(Accumulator(steps=5))
        assert sorted(store._snapshots) == [0, 2, 4]

    def test_resume_without_checkpoint_raises(self):
        engine = RecoverableBSPEngine([0], num_workers=1)
        with pytest.raises(EngineError, match="no checkpoint"):
            engine.run(Accumulator(), resume=True)

    def test_invalid_checkpoint_every(self):
        with pytest.raises(EngineError):
            RecoverableBSPEngine([0], checkpoint_every=0)


class TestExtractionRecovery:
    def test_extraction_survives_midrun_crash(self, tmp_path):
        """An extraction interrupted mid-plan resumes from the file store
        and produces the exact expected co-author graph."""
        graph = build_scholarly()
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plan = iter_opt_plan(pattern)
        expected = run_extraction(graph, pattern, plan, library.path_count())

        from repro.core.evaluator import PathConcatenationProgram

        class CrashyProgram(PathConcatenationProgram):
            crashed = False

            def compute(self, ctx):
                if not CrashyProgram.crashed and ctx.superstep == 1:
                    CrashyProgram.crashed = True
                    raise RuntimeError("node died")
                super().compute(ctx)

        program = CrashyProgram(graph, pattern, plan, library.path_count())
        engine = RecoverableBSPEngine(
            list(graph.vertices()),
            num_workers=3,
            store=FileCheckpointStore(tmp_path / "ckpt"),
        )
        with pytest.raises(RuntimeError, match="node died"):
            engine.run(program)
        extracted = engine.run(program, resume=True)
        assert extracted.equals(expected.graph)


class TestCheckpointIntegrity:
    """Satellite hardening: checksummed snapshots, corruption detection,
    newest-intact fallback, stray-file tolerance."""

    def _metrics(self):
        from repro.engine.metrics import RunMetrics

        return RunMetrics(num_workers=1)

    def test_file_store_detects_bit_flip(self, tmp_path):
        from repro.errors import CheckpointCorruptionError

        store = FileCheckpointStore(tmp_path)
        store.save(0, {1: {"x": 1}}, {}, self._metrics())
        path = tmp_path / "checkpoint_000000.pkl"
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptionError, match="checksum"):
            store.load(0)

    def test_file_store_detects_truncation(self, tmp_path):
        from repro.errors import CheckpointCorruptionError

        store = FileCheckpointStore(tmp_path)
        store.save(0, {1: {"x": 1}}, {}, self._metrics())
        store.corrupt(0)  # truncates the file to half
        with pytest.raises(CheckpointCorruptionError):
            store.load(0)

    def test_file_store_reads_legacy_headerless_snapshot(self, tmp_path):
        import pickle

        store = FileCheckpointStore(tmp_path)
        snapshot = ({1: {"x": 7}}, {}, self._metrics(), {"g": 1})
        (tmp_path / "checkpoint_000002.pkl").write_bytes(
            pickle.dumps(snapshot)
        )
        states, _, _, globals_ = store.load(2)
        assert states == {1: {"x": 7}} and globals_ == {"g": 1}

    def test_file_store_rejects_wrong_shaped_pickle(self, tmp_path):
        import pickle

        from repro.errors import CheckpointCorruptionError

        store = FileCheckpointStore(tmp_path)
        (tmp_path / "checkpoint_000001.pkl").write_bytes(
            pickle.dumps({"not": "a snapshot"})
        )
        with pytest.raises(CheckpointCorruptionError, match="shape"):
            store.load(1)

    def test_snapshots_and_latest_ignore_stray_names(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        store.save(1, {}, {}, self._metrics())
        store.save(4, {}, {}, self._metrics())
        (tmp_path / "checkpoint_final.pkl").write_bytes(b"junk")
        (tmp_path / "checkpoint_.pkl").write_bytes(b"junk")
        assert store.snapshots() == [1, 4]
        assert store.snapshots(newest_first=True) == [4, 1]
        assert store.latest() == 4

    def test_in_memory_corrupt_hook(self):
        from repro.errors import CheckpointCorruptionError

        store = InMemoryCheckpointStore()
        store.save(0, {}, {}, self._metrics())
        store.corrupt(0)
        assert store.snapshots() == [0]  # still listed ...
        with pytest.raises(CheckpointCorruptionError):
            store.load(0)  # ... but refuses to load

    def test_newest_intact_walks_past_corruption(self, tmp_path):
        from repro.engine.checkpoint import newest_intact

        store = FileCheckpointStore(tmp_path)
        for step in (0, 1, 2):
            store.save(step, {1: {"step": step}}, {}, self._metrics())
        store.corrupt(2)
        superstep, (states, _, _, _) = newest_intact(store)
        assert superstep == 1
        assert states == {1: {"step": 1}}

    def test_newest_intact_none_when_all_corrupt(self):
        from repro.engine.checkpoint import newest_intact

        store = InMemoryCheckpointStore()
        store.save(0, {}, {}, self._metrics())
        store.corrupt(0)
        assert newest_intact(store) is None


class TestResumeFallback:
    def test_resume_falls_back_to_newest_intact(self, tmp_path):
        """The newest checkpoint is corrupt: resume transparently replays
        from the newest *intact* one and still matches the fault-free
        result."""
        expected = BSPEngine(list(range(4)), num_workers=2).run(Accumulator())
        store = FileCheckpointStore(tmp_path)
        engine = RecoverableBSPEngine(
            list(range(4)), num_workers=2, store=store
        )
        with pytest.raises(RuntimeError):
            engine.run(Accumulator(crash_at=3))
        store.corrupt(3)  # the barrier snapshot closest to the crash
        result = engine.run(Accumulator(), resume=True)
        assert result == expected
        assert engine.last_resume_superstep == 2
        # replay from 2: supersteps still counted exactly once
        assert [s.superstep for s in engine.last_metrics.supersteps] == [
            0, 1, 2, 3,
        ]

    def test_resume_with_every_checkpoint_corrupt_raises(self):
        from repro.errors import CheckpointCorruptionError

        store = InMemoryCheckpointStore()
        engine = RecoverableBSPEngine(
            list(range(4)), num_workers=2, store=store
        )
        with pytest.raises(RuntimeError):
            engine.run(Accumulator(crash_at=2))
        for step in store.snapshots():
            store.corrupt(step)
        with pytest.raises(CheckpointCorruptionError, match="every checkpoint"):
            engine.run(Accumulator(), resume=True)
