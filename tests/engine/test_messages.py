"""Unit tests for repro.engine.messages."""

from repro.engine.messages import Mailbox


class TestMailbox:
    def test_send_and_deliver(self):
        box = Mailbox()
        box.send(1, "a")
        box.send(1, "b")
        box.send(2, "c")
        assert box.sent_count == 3
        inbox = box.deliver()
        assert inbox == {1: ["a", "b"], 2: ["c"]}

    def test_deliver_resets(self):
        box = Mailbox()
        box.send(1, "a")
        box.deliver()
        assert box.is_empty()
        assert box.sent_count == 0
        assert box.deliver() == {}

    def test_send_many(self):
        box = Mailbox()
        box.send_many(1, ["a", "b"])
        box.send(1, "c")
        box.send_many(1, [])
        assert box.sent_count == 3
        assert box.deliver() == {1: ["a", "b", "c"]}

    def test_combiner_applied_per_destination(self):
        box = Mailbox()
        box.send(1, 2)
        box.send(1, 3)
        box.send(2, 5)
        inbox = box.deliver(combiner=lambda vid, msgs: [sum(msgs)])
        assert inbox == {1: [5], 2: [5]}

    def test_is_empty(self):
        box = Mailbox()
        assert box.is_empty()
        box.send(1, "x")
        assert not box.is_empty()
