"""Unit tests for repro.engine.metrics."""

from repro.engine.metrics import RunMetrics, SuperstepMetrics


def make_run():
    metrics = RunMetrics(num_workers=2)
    metrics.supersteps.append(
        SuperstepMetrics(superstep=0, work_per_worker=[10, 30], messages_sent=5)
    )
    metrics.supersteps.append(
        SuperstepMetrics(superstep=1, work_per_worker=[20, 20], messages_sent=7)
    )
    return metrics


class TestSuperstepMetrics:
    def test_totals(self):
        step = SuperstepMetrics(superstep=0, work_per_worker=[3, 7])
        assert step.total_work == 10
        assert step.makespan == 7

    def test_empty_workers(self):
        step = SuperstepMetrics(superstep=0, work_per_worker=[])
        assert step.makespan == 0


class TestRunMetrics:
    def test_aggregates(self):
        metrics = make_run()
        assert metrics.num_supersteps == 2
        assert metrics.total_work == 80
        assert metrics.total_messages == 12

    def test_simulated_parallel_time(self):
        metrics = make_run()
        # makespans 30 + 20, plus overhead per superstep
        assert metrics.simulated_parallel_time() == 50
        assert metrics.simulated_parallel_time(superstep_overhead=5) == 60

    def test_counters(self):
        metrics = make_run()
        metrics.add_counter("paths", 3)
        metrics.add_counter("paths", 4)
        assert metrics.counters["paths"] == 7

    def test_worker_imbalance(self):
        metrics = make_run()
        # step 0: max 30 / avg 20 = 1.5; step 1: 20/20 = 1.0
        assert abs(metrics.worker_imbalance() - 1.25) < 1e-9

    def test_imbalance_skips_empty_steps(self):
        metrics = RunMetrics(num_workers=2)
        metrics.supersteps.append(
            SuperstepMetrics(superstep=0, work_per_worker=[0, 0])
        )
        assert metrics.worker_imbalance() == 1.0

    def test_summary_keys(self):
        metrics = make_run()
        metrics.add_counter("intermediate_paths", 11)
        summary = metrics.summary()
        assert summary["workers"] == 2
        assert summary["supersteps"] == 2
        assert summary["total_work"] == 80
        assert summary["intermediate_paths"] == 11
