"""Unit tests for repro.engine.metrics."""

from repro.engine.metrics import RunMetrics, SuperstepMetrics


def make_run():
    metrics = RunMetrics(num_workers=2)
    metrics.supersteps.append(
        SuperstepMetrics(superstep=0, work_per_worker=[10, 30], messages_sent=5)
    )
    metrics.supersteps.append(
        SuperstepMetrics(superstep=1, work_per_worker=[20, 20], messages_sent=7)
    )
    return metrics


class TestSuperstepMetrics:
    def test_totals(self):
        step = SuperstepMetrics(superstep=0, work_per_worker=[3, 7])
        assert step.total_work == 10
        assert step.makespan == 7

    def test_empty_workers(self):
        step = SuperstepMetrics(superstep=0, work_per_worker=[])
        assert step.makespan == 0


class TestRunMetrics:
    def test_aggregates(self):
        metrics = make_run()
        assert metrics.num_supersteps == 2
        assert metrics.total_work == 80
        assert metrics.total_messages == 12

    def test_simulated_parallel_time(self):
        metrics = make_run()
        # makespans 30 + 20, plus overhead per superstep
        assert metrics.simulated_parallel_time() == 50
        assert metrics.simulated_parallel_time(superstep_overhead=5) == 60

    def test_counters(self):
        metrics = make_run()
        metrics.add_counter("paths", 3)
        metrics.add_counter("paths", 4)
        assert metrics.counters["paths"] == 7

    def test_worker_imbalance(self):
        metrics = make_run()
        # step 0: max 30 / avg 20 = 1.5; step 1: 20/20 = 1.0
        assert abs(metrics.worker_imbalance() - 1.25) < 1e-9

    def test_imbalance_skips_empty_steps(self):
        metrics = RunMetrics(num_workers=2)
        metrics.supersteps.append(
            SuperstepMetrics(superstep=0, work_per_worker=[0, 0])
        )
        assert metrics.worker_imbalance() == 1.0

    def test_summary_keys(self):
        metrics = make_run()
        metrics.add_counter("intermediate_paths", 11)
        summary = metrics.summary()
        assert summary["workers"] == 2
        assert summary["supersteps"] == 2
        assert summary["total_work"] == 80
        assert summary["counter:intermediate_paths"] == 11

    def test_summary_counter_cannot_clobber_fixed_field(self):
        # Regression: a program counter named like a structural field used
        # to overwrite it in summary(); counters are now namespaced.
        metrics = make_run()
        metrics.add_counter("total_work", 999_999)
        summary = metrics.summary()
        assert summary["total_work"] == 80
        assert summary["counter:total_work"] == 999_999

    def test_summary_includes_imbalance(self):
        summary = make_run().summary()
        assert abs(summary["worker_imbalance"] - 1.25) < 1e-6


class TestEdgeCases:
    def test_worker_imbalance_all_zero_work(self):
        metrics = RunMetrics(num_workers=4)
        for step in range(3):
            metrics.supersteps.append(
                SuperstepMetrics(superstep=step, work_per_worker=[0, 0, 0, 0])
            )
        assert metrics.worker_imbalance() == 1.0

    def test_worker_imbalance_no_supersteps(self):
        assert RunMetrics(num_workers=4).worker_imbalance() == 1.0

    def test_makespan_empty_worker_list(self):
        step = SuperstepMetrics(superstep=0, work_per_worker=[])
        assert step.makespan == 0
        assert step.total_work == 0

    def test_simulated_parallel_time_empty_run(self):
        metrics = RunMetrics(num_workers=2)
        assert metrics.simulated_parallel_time() == 0
        assert metrics.simulated_parallel_time(superstep_overhead=10) == 0

    def test_simulated_parallel_time_overhead_per_superstep(self):
        metrics = make_run()
        base = metrics.simulated_parallel_time()
        # the overhead is charged once per superstep, even work-free ones
        metrics.supersteps.append(
            SuperstepMetrics(superstep=2, work_per_worker=[0, 0])
        )
        assert metrics.simulated_parallel_time(superstep_overhead=5) == base + 15
