"""Unit tests for the threaded BSP executor."""

import pytest

from repro.aggregates import library
from repro.core.evaluator import run_extraction
from repro.core.planner import iter_opt_plan
from repro.engine.bsp import BSPEngine, VertexProgram
from repro.engine.parallel import ThreadedBSPEngine
from repro.errors import EngineError
from repro.graph.pattern import LinePattern

from tests.conftest import COAUTHOR_EXPECTED, build_scholarly


class AddCounter(VertexProgram):
    def num_supersteps(self):
        return 2

    def compute(self, ctx):
        ctx.add_counter("ticks")
        ctx.add_work(1)
        if ctx.superstep == 0:
            ctx.send(ctx.vid, ctx.vid)

    def finish(self, states, metrics):
        return metrics


class TestThreadedEngine:
    def test_counters_and_work_merged(self):
        engine = ThreadedBSPEngine(list(range(10)), num_workers=3)
        metrics = engine.run(AddCounter())
        assert metrics.counters["ticks"] == 20
        assert metrics.total_work == 40  # scan + explicit per vertex per step
        assert metrics.total_messages == 10

    def test_matches_serial_engine(self):
        serial = BSPEngine(list(range(10)), num_workers=3).run(AddCounter())
        threaded = ThreadedBSPEngine(list(range(10)), num_workers=3).run(
            AddCounter()
        )
        assert threaded.counters == serial.counters
        assert threaded.total_messages == serial.total_messages
        assert threaded.total_work == serial.total_work

    def test_worker_exception_propagates(self):
        class Boom(VertexProgram):
            def num_supersteps(self):
                return 1

            def compute(self, ctx):
                raise ValueError("worker crash")

        engine = ThreadedBSPEngine([1, 2], num_workers=2)
        with pytest.raises(ValueError, match="worker crash"):
            engine.run(Boom())

    def test_quiescence_halting(self):
        class Quiet(VertexProgram):
            def compute(self, ctx):
                if ctx.superstep == 0 and ctx.vid == 0:
                    ctx.send(1, "ping")

        engine = ThreadedBSPEngine([0, 1], num_workers=2)
        engine.run(Quiet())
        assert engine.last_metrics.num_supersteps == 2

    def test_runaway_raises(self):
        class Chatty(VertexProgram):
            def compute(self, ctx):
                ctx.send(ctx.vid, "again")

        engine = ThreadedBSPEngine([0], num_workers=1, max_supersteps=5)
        with pytest.raises(EngineError, match="quiesce"):
            engine.run(Chatty())


class TestThreadedExtraction:
    def test_extraction_matches_serial(self):
        graph = build_scholarly()
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        plan = iter_opt_plan(pattern)
        engine = ThreadedBSPEngine(list(graph.vertices()), num_workers=4)
        result = run_extraction(
            graph, pattern, plan, library.path_count(), engine=engine
        )
        assert dict(result.graph.edges) == COAUTHOR_EXPECTED

    def test_length4_pattern_with_combiner(self):
        graph = build_scholarly()
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plan = iter_opt_plan(pattern)
        serial = run_extraction(graph, pattern, plan, library.path_count())
        engine = ThreadedBSPEngine(list(graph.vertices()), num_workers=3)
        threaded = run_extraction(
            graph,
            pattern,
            plan,
            library.path_count(),
            use_combiner=True,
            engine=engine,
        )
        assert threaded.graph.equals(serial.graph)


class TestPoisoning:
    """After a mid-superstep failure the engine's shared state is not
    barrier-consistent: further runs must be refused until reset()."""

    class Boom(VertexProgram):
        def __init__(self, crash_superstep=1):
            self.crash_superstep = crash_superstep

        def num_supersteps(self):
            return 3

        def compute(self, ctx):
            if ctx.superstep == self.crash_superstep:
                raise RuntimeError("worker died")
            ctx.send(ctx.vid, 1)

        def finish(self, states, metrics):
            return metrics

    def test_failed_superstep_poisons_engine(self):
        engine = ThreadedBSPEngine(list(range(8)), num_workers=4)
        with pytest.raises(RuntimeError, match="worker died"):
            engine.run(self.Boom())
        # the failure must not be silently continuable: a caught
        # exception followed by another run() is refused
        with pytest.raises(EngineError, match="poisoned"):
            engine.run(AddCounter())

    def test_reset_clears_poisoning(self):
        engine = ThreadedBSPEngine(list(range(8)), num_workers=4)
        with pytest.raises(RuntimeError):
            engine.run(self.Boom())
        engine.reset()
        metrics = engine.run(AddCounter())
        assert metrics.counters["ticks"] == 16

    def test_all_futures_drained_before_raise(self):
        """Every worker of the failed superstep finishes (or fails)
        before the exception escapes — no thread keeps computing into a
        dead run."""
        import threading

        done = []
        lock = threading.Lock()

        class SlowBoom(VertexProgram):
            def num_supersteps(self):
                return 1

            def compute(self, ctx):
                import time

                if ctx.vid == 0:
                    raise RuntimeError("fast failure")
                time.sleep(0.02)
                with lock:
                    done.append(ctx.vid)

            def finish(self, states, metrics):
                return metrics

        engine = ThreadedBSPEngine(list(range(4)), num_workers=4)
        with pytest.raises(RuntimeError, match="fast failure"):
            engine.run(SlowBoom())
        # the three surviving workers all completed their slice before
        # the engine surfaced the failure
        assert sorted(done) == [1, 2, 3]

    def test_fresh_engine_unaffected(self):
        engine = ThreadedBSPEngine(list(range(8)), num_workers=4)
        with pytest.raises(RuntimeError):
            engine.run(self.Boom())
        fresh = ThreadedBSPEngine(list(range(8)), num_workers=4)
        assert fresh.run(AddCounter()).counters["ticks"] == 16
