"""The multiprocess BSP engine (:mod:`repro.engine.procpool`).

Covers the four tentpole guarantees:

* **parity** — fork and spawn pools produce byte-identical results,
  metrics and globals to the serial engine, on message-passing programs
  and on real extractions over the shared-memory graph;
* **liveness** — a worker SIGKILLed or stalled mid-superstep is
  detected (pipe EOF / missed heartbeats), its partitions are
  reassigned or its process respawned, and the run completes equal to
  the fault-free run;
* **idempotence** — reassignment uses ``(superstep, partition,
  attempt)`` envelopes, so late duplicate results are discarded rather
  than double-merged;
* **leak-proof shm** — every test is followed by a ``/dev/shm`` scrape
  (autouse fixture in ``conftest.py``); crashes and injected kills must
  not leave ``repro_*`` segments behind.

Vertex programs are module-level classes: the spawn start method
re-imports them in the child, so locals/lambdas would not transport.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.aggregates import library
from repro.core.evaluator import run_extraction
from repro.core.planner import make_plan
from repro.datasets.dblp import generate_dblp
from repro.engine.bsp import BSPEngine, VertexProgram
from repro.engine.procpool import (
    ProcessBSPEngine,
    SharedGraphView,
    SharedSegmentRegistry,
    dumps_program,
    publish_shared_graph,
)
from repro.errors import EngineError, WorkerLostError
from repro.faults.plan import WORKER_KILL, WORKER_STALL, Fault, FaultPlan
from repro.graph.hetgraph import ANY_LABEL
from repro.workloads.patterns import get_workload

# liveness knobs tuned for the test suite: fast heartbeats, a timeout
# short enough that stall detection does not dominate the suite's wall
# clock but long enough that a busy CI box never false-positives
FAST_HB = dict(heartbeat_interval_s=0.02, heartbeat_timeout_s=0.6)


class Ring(VertexProgram):
    """Message-passing ring with per-vertex state and counters — the
    surfaces where a lost-then-reassigned partition could double-count."""

    def __init__(self, n, steps=4, pause_s=0.0):
        self.n = n
        self.steps = steps
        self.pause_s = pause_s

    def num_supersteps(self):
        return self.steps

    def global_reducers(self):
        return {"total_sent": lambda a, b: a + b}

    def compute(self, ctx):
        state = ctx.state(lambda: {"total": 0})
        state["total"] += sum(ctx.messages) if ctx.messages else ctx.vid
        if self.pause_s:
            time.sleep(self.pause_s)
        ctx.send((ctx.vid + 1) % self.n, state["total"])
        ctx.add_counter("computes")
        ctx.reduce_global("total_sent", 1)

    def finish(self, states, metrics):
        return {vid: s["total"] for vid, s in sorted(states.items())}


class Quiescing(VertexProgram):
    """Stops sending after two rounds — exercises the quiescence exit."""

    def compute(self, ctx):
        state = ctx.state(lambda: {"rounds": 0})
        state["rounds"] += 1
        if ctx.superstep < 2:
            ctx.send(ctx.vid, 1)

    def finish(self, states, metrics):
        return {vid: s["rounds"] for vid, s in states.items()}


class Exploding(VertexProgram):
    """Raises a real (non-injected) error inside a worker process."""

    def compute(self, ctx):
        if ctx.superstep == 1 and ctx.vid == 0:
            raise ValueError("boom from a worker process")
        ctx.send(ctx.vid, 1)

    def finish(self, states, metrics):
        return dict(states)


def _serial(program, n):
    engine = BSPEngine(list(range(n)), num_workers=1)
    result = engine.run(program)
    return result, engine


# ----------------------------------------------------------------------
# shared-memory plumbing
# ----------------------------------------------------------------------
class TestSharedSegments:
    def test_registry_create_close_unlinks(self):
        registry = SharedSegmentRegistry()
        segment = registry.create(64)
        name = segment.name
        assert name.startswith("repro_")
        registry.close()
        # closed registries are idempotent and the segment is gone
        registry.close()
        with pytest.raises(FileNotFoundError):
            SharedSegmentRegistry().attach(name)

    def test_attach_does_not_unlink_creators_segment(self):
        owner = SharedSegmentRegistry()
        segment = owner.create(64)
        segment.buf[:4] = b"abcd"
        reader = SharedSegmentRegistry()
        attached = reader.attach(segment.name)
        assert bytes(attached.buf[:4]) == b"abcd"
        reader.close()  # non-creator close must not unlink
        again = SharedSegmentRegistry()
        assert bytes(again.attach(segment.name).buf[:4]) == b"abcd"
        again.close()
        owner.close()

    def test_shared_graph_view_matches_source_graph(self):
        graph = generate_dblp(n_authors=40, n_papers=60, n_venues=6, seed=3)
        registry = SharedSegmentRegistry()
        try:
            descriptor = publish_shared_graph(graph, registry)
            view = SharedGraphView(descriptor, registry)
            assert view.num_vertices() == graph.num_vertices()
            assert set(view.vertices()) == set(graph.vertices())
            for vid in list(graph.vertices())[:50]:
                assert view.label_of(vid) == graph.label_of(vid)
                for label in ("authorBy", "publishAt", "cite"):
                    assert sorted(view.out_edges(vid, label)) == sorted(
                        graph.out_edges(vid, label)
                    )
                    assert sorted(view.in_edges(vid, label)) == sorted(
                        graph.in_edges(vid, label)
                    )
            assert len(view.vertices_matching(ANY_LABEL)) == graph.num_vertices()
            assert set(view.vertices_matching("Author")) == set(
                graph.vertices_matching("Author")
            )
            view.release()
        finally:
            registry.close()

    def test_dumps_program_strips_graph_and_roundtrips(self):
        graph = generate_dblp(n_authors=20, n_papers=30, n_venues=4, seed=5)
        workload = get_workload("dblp-BP1")
        plan = make_plan(workload.pattern, graph=graph)
        from repro.core.evaluator import PathConcatenationProgram

        program = PathConcatenationProgram(
            graph, workload.pattern, plan, library.path_count()
        )
        payload, uses_graph = dumps_program(program)
        assert uses_graph
        assert program.graph is graph  # restored after the swap
        clone = pickle.loads(payload)
        assert not isinstance(clone.graph, type(graph))


# ----------------------------------------------------------------------
# parity with the serial engine
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_ring_matches_serial(self, start_method):
        n = 20
        expected, serial = _serial(Ring(n), n)
        engine = ProcessBSPEngine(
            list(range(n)), num_workers=2, start_method=start_method, **FAST_HB
        )
        got = engine.run(Ring(n))
        assert got == expected
        assert dict(engine.last_metrics.counters)["computes"] == dict(
            serial.last_metrics.counters
        )["computes"]
        assert engine.last_globals == serial.last_globals
        assert engine.last_metrics.num_supersteps == 4
        assert engine.last_workers_lost == 0
        assert engine.last_respawns == 0

    def test_quiescence(self):
        n = 8
        expected, _ = _serial(Quiescing(), n)
        engine = ProcessBSPEngine(
            list(range(n)), num_workers=2, start_method="fork", **FAST_HB
        )
        assert engine.run(Quiescing()) == expected
        assert engine.last_metrics.num_supersteps == 3

    def test_shuffle_seed_preserves_result(self):
        n = 16
        expected, _ = _serial(Ring(n), n)
        engine = ProcessBSPEngine(
            list(range(n)),
            num_workers=3,
            start_method="fork",
            shuffle_seed=7,
            **FAST_HB,
        )
        assert engine.run(Ring(n)) == expected

    def test_worker_error_propagates_and_cleans_up(self):
        engine = ProcessBSPEngine(
            list(range(8)), num_workers=2, start_method="fork", **FAST_HB
        )
        with pytest.raises(ValueError, match="boom from a worker"):
            engine.run(Exploding())
        # the conftest fixture asserts /dev/shm is clean afterwards

    def test_engine_reuse_requires_reset_after_poison(self):
        engine = ProcessBSPEngine(
            list(range(8)), num_workers=2, start_method="fork", **FAST_HB
        )
        with pytest.raises(ValueError):
            engine.run(Exploding())
        with pytest.raises(EngineError):
            engine.run(Ring(8))
        engine.reset()
        expected, _ = _serial(Ring(8), 8)
        assert engine.run(Ring(8)) == expected


# ----------------------------------------------------------------------
# liveness: kills, stalls, respawn budget, idempotent reassignment
# ----------------------------------------------------------------------
class TestLiveness:
    def test_worker_kill_is_absorbed(self):
        n = 60
        expected, serial = _serial(Ring(n, pause_s=0.002), n)
        plan = FaultPlan([Fault(WORKER_KILL, superstep=1)])
        engine = ProcessBSPEngine(
            list(range(n)), num_workers=3, start_method="fork", **FAST_HB
        )
        got = engine.run(Ring(n, pause_s=0.002), faults=plan)
        assert got == expected
        assert plan.injected and plan.injected[0]["kind"] == WORKER_KILL
        assert engine.last_workers_lost >= 1
        assert engine.last_respawns >= 1
        counters = dict(engine.last_metrics.counters)
        assert counters["procpool_workers_lost"] == engine.last_workers_lost
        assert counters["procpool_respawns"] == engine.last_respawns
        # reassignment is idempotent: counters and globals match exactly
        assert counters["computes"] == dict(serial.last_metrics.counters)[
            "computes"
        ]
        assert engine.last_globals == serial.last_globals

    def test_worker_stall_detected_by_heartbeats(self):
        n = 40
        expected, _ = _serial(Ring(n), n)
        plan = FaultPlan([Fault(WORKER_STALL, superstep=1, delay_s=5.0)])
        engine = ProcessBSPEngine(
            list(range(n)),
            num_workers=3,
            start_method="fork",
            heartbeat_interval_s=0.02,
            heartbeat_timeout_s=0.35,
        )
        started = time.monotonic()
        got = engine.run(Ring(n), faults=plan)
        elapsed = time.monotonic() - started
        assert got == expected
        assert engine.last_workers_lost >= 1
        # the stall (5s) was detected at the heartbeat deadline, not
        # waited out
        assert elapsed < 4.0
        assert engine.last_heartbeats > 0

    def test_respawn_budget_exhausted_survivors_absorb(self):
        n = 60
        expected, _ = _serial(Ring(n, pause_s=0.002), n)
        plan = FaultPlan(
            [Fault(WORKER_KILL, superstep=0), Fault(WORKER_KILL, superstep=1)]
        )
        engine = ProcessBSPEngine(
            list(range(n)),
            num_workers=3,
            start_method="fork",
            respawn_limit=1,
            **FAST_HB,
        )
        got = engine.run(Ring(n, pause_s=0.002), faults=plan)
        assert got == expected
        assert engine.last_workers_lost == 2
        assert engine.last_respawns == 1

    def test_total_pool_loss_raises_transient_worker_lost(self):
        n = 30
        plan = FaultPlan([Fault(WORKER_KILL, superstep=0, times=3)])
        engine = ProcessBSPEngine(
            list(range(n)),
            num_workers=1,
            start_method="fork",
            respawn_limit=0,
            **FAST_HB,
        )
        with pytest.raises(WorkerLostError):
            engine.run(Ring(n, pause_s=0.002), faults=plan)
        from repro.faults.supervisor import classify_error

        assert classify_error(WorkerLostError("gone")) == "transient"

    def test_no_duplicates_in_fault_free_run(self):
        n = 20
        engine = ProcessBSPEngine(
            list(range(n)), num_workers=2, start_method="fork", **FAST_HB
        )
        engine.run(Ring(n))
        assert engine.last_duplicates == 0


# ----------------------------------------------------------------------
# real extraction over the shared graph
# ----------------------------------------------------------------------
class TestExtraction:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = generate_dblp(n_authors=120, n_papers=200, n_venues=10, seed=7)
        workload = get_workload("dblp-BP1")
        plan = make_plan(workload.pattern, graph=graph)
        baseline = run_extraction(
            graph, workload.pattern, plan, library.path_count(), num_workers=1
        )
        return graph, workload.pattern, plan, baseline

    def test_extraction_parity_fork(self, setup):
        graph, pattern, plan, baseline = setup
        engine = ProcessBSPEngine.for_graph(
            graph, num_workers=2, start_method="fork", **FAST_HB
        )
        result = run_extraction(
            graph, pattern, plan, library.path_count(), engine=engine
        )
        assert result.graph.equals(baseline.graph)

    def test_extraction_survives_worker_kill(self, setup):
        from repro.core.evaluator import PathConcatenationProgram

        graph, pattern, plan, baseline = setup
        faults = FaultPlan([Fault(WORKER_KILL, superstep=1)])
        engine = ProcessBSPEngine.for_graph(
            graph, num_workers=3, start_method="fork", **FAST_HB
        )
        extracted = engine.run(
            PathConcatenationProgram(graph, pattern, plan, library.path_count()),
            faults=faults,
        )
        assert extracted.equals(baseline.graph)
        assert engine.last_workers_lost >= 1
        assert faults.injected

    def test_traced_run_records_worker_spans(self, setup, tmp_path):
        from repro.obs.instruments import InstrumentRegistry
        from repro.obs.report import load_trace, report_data, worker_table
        from repro.obs.spans import Tracer

        graph, pattern, plan, baseline = setup
        tracer = Tracer(registry=InstrumentRegistry())
        engine = ProcessBSPEngine.for_graph(
            graph, num_workers=2, start_method="fork", **FAST_HB
        )
        result = run_extraction(
            graph, pattern, plan, library.path_count(), engine=engine,
            tracer=tracer,
        )
        assert result.graph.equals(baseline.graph)
        trace_path = tmp_path / "trace.jsonl"
        tracer.export(str(trace_path), fmt="jsonl")
        data = load_trace(str(trace_path))
        assert data.worker_spans, "no per-worker wall-clock spans recorded"
        assert data.procpool is not None
        assert data.procpool["workers"] == 2
        # every worker span carries a real measured slice and a real pid
        for attrs in data.worker_spans:
            assert attrs["duration_wall"] >= 0.0
            assert attrs["pid"] > 0
        table = worker_table(data)
        assert "per-worker wall clock" in table
        assert "procpool [fork]" in table
        document = report_data(str(trace_path))
        assert document["procpool"]["workers"] == 2
        assert document["worker_spans"]

    def test_extractor_backend_process(self, setup):
        from repro import GraphExtractor

        graph, pattern, _, baseline = setup
        extractor = GraphExtractor(
            graph,
            num_workers=2,
            backend="process",
            process_options=dict(start_method="fork", **FAST_HB),
        )
        result = extractor.extract(pattern, library.path_count())
        assert result.graph.equals(baseline.graph)
        assert extractor.last_backend == "process"
        assert extractor.last_fallback_reason is None
        # the sanitizer needs one instrumented in-process run: fall back
        sanitized = extractor.extract(
            pattern, library.path_count(), sanitize=True
        )
        assert sanitized.graph.equals(baseline.graph)
        assert extractor.last_backend == "bsp"
        assert "sanitize" in extractor.last_fallback_reason

    def test_admission_certifies_process_byte_model(self, setup):
        from repro import GraphExtractor

        graph, pattern, _, baseline = setup
        extractor = GraphExtractor(
            graph,
            num_workers=2,
            backend="process",
            memory_budget=10**9,
            process_options=dict(start_method="fork", **FAST_HB),
        )
        result = extractor.extract(pattern, library.path_count())
        assert result.graph.equals(baseline.graph)
        assert extractor.last_admission is not None
        assert extractor.last_admission.action == "admit"


# ----------------------------------------------------------------------
# engine construction validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_rejects_bad_heartbeat_config(self):
        with pytest.raises(EngineError):
            ProcessBSPEngine([1], heartbeat_interval_s=0.0)
        with pytest.raises(EngineError):
            ProcessBSPEngine([1], heartbeat_timeout_s=0.01,
                             heartbeat_interval_s=0.05)
        with pytest.raises(EngineError):
            ProcessBSPEngine([1], respawn_limit=-1)

    def test_rejects_bad_start_method(self):
        with pytest.raises(EngineError):
            ProcessBSPEngine([1], start_method="threads")
