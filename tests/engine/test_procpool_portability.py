"""Fork + spawn portability of everything the repo ships.

The spawn start method is the strictest transport: programs, plans,
aggregates and message payloads must all survive a pickle round-trip
into a fresh interpreter.  This suite pins two facts:

* the static checker (:func:`repro.lint.procsafe.verify_process_safe`)
  accepts exactly the payloads the process engine actually ships —
  every shipped workload program (graph swapped for the shared-memory
  token, as :func:`~repro.engine.procpool.dumps_program` transports it)
  and every library aggregate;
* the dynamic behaviour matches: every catalog workload extracts to the
  same result on a fork pool as on the serial engine, and spawn pools
  (interpreter cold-start and all) agree on representative workloads of
  both datasets, including a holistic aggregate whose full path values
  cross the pipe.
"""

from __future__ import annotations

import pickle

import pytest

from repro.aggregates import library
from repro.core.evaluator import PathConcatenationProgram, run_extraction
from repro.core.planner import make_plan
from repro.datasets.dblp import generate_dblp
from repro.datasets.patent import generate_patent
from repro.engine.procpool import ProcessBSPEngine, dumps_program
from repro.lint.procsafe import verify_process_safe
from repro.workloads.patterns import WORKLOADS, get_workload

FAST_HB = dict(heartbeat_interval_s=0.02, heartbeat_timeout_s=2.0)

#: one workload per dataset family for the (slow) spawn cold-start runs
SPAWN_WORKLOADS = ("dblp-BP1", "patent-SP3")

AGGREGATE_FACTORIES = {
    "add_max": library.add_max,
    "avg_path_value": library.avg_path_value,
    "count_distinct_path_values": library.count_distinct_path_values,
    "exists_path": library.exists_path,
    "max_min": library.max_min,
    "median_path_value": library.median_path_value,
    "min_max": library.min_max,
    "path_count": library.path_count,
    "std_path_value": library.std_path_value,
    "sum_min": library.sum_min,
    "top_k_path_values": lambda: library.top_k_path_values(3),
    "weighted_path_count": library.weighted_path_count,
}


@pytest.fixture(scope="module")
def graphs():
    return {
        "dblp": generate_dblp(
            n_authors=80, n_papers=140, n_venues=8, seed=11
        ),
        "patent": generate_patent(
            n_inventors=80, n_patents=140, n_locations=8, n_categories=6,
            seed=11,
        ),
    }


def _program(graphs, name, aggregate=None):
    workload = get_workload(name)
    graph = graphs[workload.dataset]
    plan = make_plan(workload.pattern, graph=graph)
    return graph, workload.pattern, plan, PathConcatenationProgram(
        graph, workload.pattern, plan, aggregate or library.path_count()
    )


# ----------------------------------------------------------------------
# static process-safety of the shipped payloads
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_program_payload_is_process_safe(graphs, name):
    graph, _, _, program = _program(graphs, name)
    payload, uses_graph = dumps_program(program)
    assert uses_graph
    # verify the object as shipped: graph replaced by the shm token
    verify_process_safe(pickle.loads(payload), name=f"program[{name}]")
    # the swap must not have mutated the caller's program
    assert program.graph is graph


@pytest.mark.parametrize("name", sorted(AGGREGATE_FACTORIES))
def test_library_aggregate_is_process_safe(name):
    verify_process_safe(AGGREGATE_FACTORIES[name](), name=f"aggregate[{name}]")


# ----------------------------------------------------------------------
# dynamic parity: fork everywhere, spawn on representatives
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_fork_extraction_matches_serial(graphs, name):
    graph, pattern, plan, _ = _program(graphs, name)
    baseline = run_extraction(
        graph, pattern, plan, library.path_count(), num_workers=1
    )
    engine = ProcessBSPEngine.for_graph(
        graph, num_workers=2, start_method="fork", **FAST_HB
    )
    result = run_extraction(
        graph, pattern, plan, library.path_count(), engine=engine
    )
    assert result.graph.equals(baseline.graph), result.graph.diff(
        baseline.graph
    )


@pytest.mark.parametrize("name", SPAWN_WORKLOADS)
def test_spawn_extraction_matches_serial(graphs, name):
    graph, pattern, plan, _ = _program(graphs, name)
    baseline = run_extraction(
        graph, pattern, plan, library.path_count(), num_workers=1
    )
    engine = ProcessBSPEngine.for_graph(
        graph, num_workers=2, start_method="spawn", **FAST_HB
    )
    result = run_extraction(
        graph, pattern, plan, library.path_count(), engine=engine
    )
    assert result.graph.equals(baseline.graph), result.graph.diff(
        baseline.graph
    )


def test_spawn_holistic_aggregate_round_trips(graphs):
    """Holistic aggregates ship full path-value lists through the result
    pipe — the heaviest payload the transport carries."""
    aggregate = library.median_path_value
    graph, pattern, plan, _ = _program(graphs, "dblp-BP1")
    baseline = run_extraction(
        graph, pattern, plan, aggregate(), num_workers=1, mode="basic"
    )
    engine = ProcessBSPEngine.for_graph(
        graph, num_workers=2, start_method="spawn", **FAST_HB
    )
    result = run_extraction(
        graph, pattern, plan, aggregate(), engine=engine, mode="basic"
    )
    assert result.graph.equals(baseline.graph)
