"""Tests for the BSP race/determinism sanitizer engine
(:mod:`repro.engine.sanitizer`): every seeded violation class is caught,
clean programs and real workloads report zero findings, and the
``sanitize=True`` delegation works from every engine.
"""

from __future__ import annotations

import pytest

from repro import GraphExtractor, LinePattern, aggregates
from repro.datasets import tiny_dblp
from repro.engine.bsp import BSPEngine, VertexProgram
from repro.engine.checkpoint import RecoverableBSPEngine
from repro.engine.parallel import ThreadedBSPEngine
from repro.engine.sanitizer import (
    SanitizerBSPEngine,
    SanitizerError,
    fingerprint,
    mutable_parts,
)
from repro.errors import EngineError


# ----------------------------------------------------------------------
# programs with seeded violations
# ----------------------------------------------------------------------
class CleanProgram(VertexProgram):
    """Order-insensitive ring sum; owns all its state."""

    def num_supersteps(self):
        return 2

    def compute(self, ctx):
        if ctx.superstep == 0:
            ctx.send((ctx.vid + 1) % 4, (ctx.vid, 1.0))
        else:
            ctx.state()["total"] = sum(m[1] for m in ctx.messages)

    def finish(self, states, metrics):
        return {vid: st.get("total", 0.0) for vid, st in states.items()}


class AliasedPayloadProgram(VertexProgram):
    """One list object shipped to two receivers."""

    def num_supersteps(self):
        return 2

    def compute(self, ctx):
        if ctx.superstep == 0:
            buf = [ctx.vid]
            ctx.send(0, buf)
            ctx.send(1, buf)

    def finish(self, states, metrics):
        return states


class MutateAfterSendProgram(VertexProgram):
    """Payload mutated between send and the superstep barrier."""

    def num_supersteps(self):
        return 2

    def compute(self, ctx):
        if ctx.superstep == 0 and ctx.vid == 0:
            payload = [1, 2]
            ctx.send(1, payload)
            payload.append(3)

    def finish(self, states, metrics):
        return states


class ForeignStateProgram(VertexProgram):
    """Vertex 2 mutates vertex 0's persistent state via ``peek_state``."""

    def num_supersteps(self):
        return 3

    def compute(self, ctx):
        state = ctx.state()
        state.setdefault("x", 0)
        if ctx.vid == 2 and ctx.superstep == 1:
            other = ctx.peek_state(0)
            if other is not None:
                other["x"] = 99

    def finish(self, states, metrics):
        return states


class OrderSensitiveProgram(VertexProgram):
    """Folds messages with string concatenation — ⊕ is not commutative."""

    def num_supersteps(self):
        return 2

    def compute(self, ctx):
        if ctx.superstep == 0:
            ctx.send(0, f"<{ctx.vid}>")
        elif ctx.vid == 0:
            acc = ""
            for message in ctx.messages:
                acc += message
            ctx.state()["acc"] = acc

    def finish(self, states, metrics):
        return states.get(0, {}).get("acc", "")


# ----------------------------------------------------------------------
# fingerprint / mutable-parts primitives
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_structural_equality(self):
        assert fingerprint([1, (2, 3)]) == fingerprint([1, (2, 3)])
        assert fingerprint([1, 2]) != fingerprint([2, 1])

    def test_set_and_dict_are_order_normalised(self):
        assert fingerprint({1, 2, 3}) == fingerprint({3, 1, 2})
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_type_distinguished(self):
        assert fingerprint([1]) != fingerprint((1,))
        assert fingerprint(1) != fingerprint(1.0)

    def test_mutation_changes_fingerprint(self):
        payload = {"values": [1, 2]}
        before = fingerprint(payload)
        payload["values"].append(3)
        assert fingerprint(payload) != before

    def test_mutable_parts_finds_nested(self):
        inner = [1]
        parts = mutable_parts((0, inner))
        assert any(part is inner for part in parts)

    def test_immutable_payload_has_no_parts(self):
        assert mutable_parts((1, "a", (2.0, None))) == []


# ----------------------------------------------------------------------
# violation detection
# ----------------------------------------------------------------------
class TestViolationDetection:
    def test_clean_program_reports_nothing(self):
        engine = SanitizerBSPEngine(range(4))
        result = engine.run(CleanProgram())
        assert engine.last_findings == []
        assert result[1] == pytest.approx(1.0)

    def test_aliased_payload_is_caught(self):
        engine = SanitizerBSPEngine(range(4), strict=False)
        engine.run(AliasedPayloadProgram())
        assert any(
            f.rule == "message-aliasing" for f in engine.last_findings
        )

    def test_mutate_after_send_is_caught(self):
        engine = SanitizerBSPEngine(range(4), strict=False)
        engine.run(MutateAfterSendProgram())
        assert any(
            "mutated between send" in f.message for f in engine.last_findings
        )

    def test_foreign_state_mutation_is_caught(self):
        engine = SanitizerBSPEngine(range(4), strict=False)
        engine.run(ForeignStateProgram())
        assert any(f.rule == "state-escape" for f in engine.last_findings)

    def test_order_sensitive_fold_is_caught(self):
        engine = SanitizerBSPEngine(range(4), strict=False)
        engine.run(OrderSensitiveProgram())
        assert any(
            f.rule == "order-sensitivity" for f in engine.last_findings
        )

    def test_strict_mode_raises_with_findings(self):
        engine = SanitizerBSPEngine(range(4))
        with pytest.raises(SanitizerError) as excinfo:
            engine.run(AliasedPayloadProgram())
        assert excinfo.value.findings
        assert isinstance(excinfo.value, EngineError)

    def test_checks_can_be_disabled(self):
        engine = SanitizerBSPEngine(
            range(4),
            check_payloads=False,
            check_state=False,
            order_check_seeds=(),
        )
        engine.run(AliasedPayloadProgram())
        assert engine.last_findings == []

    def test_findings_carry_program_location(self):
        engine = SanitizerBSPEngine(range(4), strict=False)
        engine.run(AliasedPayloadProgram())
        finding = engine.last_findings[0]
        assert finding.path.endswith("test_sanitizer.py")
        assert finding.line >= 1


# ----------------------------------------------------------------------
# delegation from the other engines
# ----------------------------------------------------------------------
class TestDelegation:
    @pytest.mark.parametrize(
        "engine_cls", [BSPEngine, ThreadedBSPEngine, RecoverableBSPEngine]
    )
    def test_sanitize_flag_delegates(self, engine_cls):
        engine = engine_cls(range(4), num_workers=2)
        with pytest.raises(SanitizerError):
            engine.run(AliasedPayloadProgram(), sanitize=True)

    @pytest.mark.parametrize(
        "engine_cls", [BSPEngine, ThreadedBSPEngine, RecoverableBSPEngine]
    )
    def test_clean_run_mirrors_artifacts(self, engine_cls):
        engine = engine_cls(range(4), num_workers=2)
        result = engine.run(CleanProgram(), sanitize=True)
        assert engine.last_findings == []
        assert engine.last_metrics.num_supersteps == 2
        assert result[1] == pytest.approx(1.0)

    def test_resume_under_sanitize_is_rejected(self):
        engine = RecoverableBSPEngine(range(4))
        with pytest.raises(EngineError, match="superstep 0"):
            engine.run(CleanProgram(), resume=True, sanitize=True)


# ----------------------------------------------------------------------
# real workloads stay clean
# ----------------------------------------------------------------------
class TestRealWorkloads:
    @pytest.fixture(scope="class")
    def graph(self):
        return tiny_dblp()

    @pytest.fixture(scope="class")
    def pattern(self):
        return LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )

    def test_sanitized_extraction_is_clean(self, graph, pattern):
        extractor = GraphExtractor(graph, num_workers=4, sanitize=True)
        result = extractor.extract(pattern, aggregates.path_count())
        assert extractor.last_sanitizer_findings == []
        reference = GraphExtractor(graph, num_workers=4).extract(
            pattern, aggregates.path_count()
        )
        assert result.graph.equals(reference.graph)

    def test_float_aggregate_survives_reordering(self, graph, pattern):
        # weighted sums reassociate under inbox shuffling; the order
        # check must tolerate ULP drift instead of flagging it
        extractor = GraphExtractor(graph, num_workers=4, sanitize=True)
        extractor.extract(pattern, aggregates.weighted_path_count())
        assert extractor.last_sanitizer_findings == []

    def test_holistic_aggregate_is_clean(self, graph, pattern):
        extractor = GraphExtractor(graph, num_workers=2, sanitize=True)
        extractor.extract(pattern, aggregates.median_path_value())
        assert extractor.last_sanitizer_findings == []

    def test_per_call_override(self, graph, pattern):
        extractor = GraphExtractor(graph, num_workers=2)
        extractor.extract(pattern, aggregates.path_count(), sanitize=True)
        assert extractor.last_sanitizer_findings == []

    def test_downstream_vertex_programs_are_clean(self, graph, pattern):
        from repro.analysis.vertex_programs import (
            connected_components_parallel,
            pagerank_parallel,
        )

        extracted = (
            GraphExtractor(graph, num_workers=2)
            .extract(pattern, aggregates.path_count())
            .graph
        )
        ranks = pagerank_parallel(extracted, num_workers=2, sanitize=True)
        assert len(ranks) == len(extracted.vertices)
        components = connected_components_parallel(
            extracted, num_workers=2, sanitize=True
        )
        assert len(components) == len(extracted.vertices)
