"""Tests for repro.faults (chaos engine + supervised recovery)."""
