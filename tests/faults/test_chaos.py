"""Tests for the chaos layer: program wrapper, store wrapper, loader
shim, engine hooks."""

import time

import pytest

from repro.engine.bsp import BSPEngine, VertexProgram
from repro.engine.checkpoint import (
    FileCheckpointStore,
    InMemoryCheckpointStore,
    RecoverableBSPEngine,
)
from repro.engine.parallel import ThreadedBSPEngine
from repro.errors import CheckpointCorruptionError, TransientEngineError
from repro.faults.chaos import (
    ChaosCheckpointStore,
    ChaosProgram,
    FaultyBSPEngine,
    InjectedCrashError,
    InjectedIOError,
    InjectedTransientError,
    chaos_loader,
)
from repro.faults.plan import (
    CHECKPOINT_CORRUPT,
    CHECKPOINT_IO,
    COMPUTE_CRASH,
    LOAD_ERROR,
    STALL,
    TRANSIENT_ERROR,
    Fault,
    FaultPlan,
)

from tests.engine.test_checkpoint import Accumulator


class TestChaosProgram:
    def test_crash_fires_at_exact_site(self):
        plan = FaultPlan([Fault(COMPUTE_CRASH, superstep=2, vertex=1)])
        engine = BSPEngine(list(range(4)), num_workers=2)
        with pytest.raises(InjectedCrashError, match="superstep 2"):
            engine.run(ChaosProgram(Accumulator(), plan))
        (entry,) = plan.injected
        assert entry["superstep"] == 2 and entry["vertex"] == 1

    def test_transparent_when_spent(self):
        expected = BSPEngine(list(range(4)), num_workers=2).run(Accumulator())
        plan = FaultPlan([Fault(TRANSIENT_ERROR, superstep=1)])
        engine = BSPEngine(list(range(4)), num_workers=2)
        with pytest.raises(InjectedTransientError):
            engine.run(ChaosProgram(Accumulator(), plan))
        # second run: plan spent, wrapper is a no-op
        result = engine.run(ChaosProgram(Accumulator(), plan))
        assert result == expected

    def test_stall_sleeps_instead_of_raising(self):
        plan = FaultPlan([Fault(STALL, superstep=0, delay_s=0.05)])
        engine = BSPEngine(list(range(2)), num_workers=1)
        start = time.perf_counter()
        engine.run(ChaosProgram(Accumulator(steps=1), plan))
        assert time.perf_counter() - start >= 0.05
        assert plan.injected[0]["kind"] == STALL

    def test_delegates_program_protocol(self):
        class Custom(VertexProgram):
            def num_supersteps(self):
                return 3

            def combiner(self):
                return lambda vid, msgs: msgs

            def global_reducers(self):
                return {"m": max}

            def span_attrs(self, superstep):
                return {"step": superstep}

            def compute(self, ctx):
                pass

            def finish(self, states, metrics):
                return "done"

        wrapped = ChaosProgram(Custom(), FaultPlan([]))
        assert wrapped.num_supersteps() == 3
        assert wrapped.combiner() is not None
        assert list(wrapped.global_reducers()) == ["m"]
        assert wrapped.span_attrs(1) == {"step": 1}
        assert wrapped.finish({}, None) == "done"


class TestEngineFaultsHook:
    """Every engine's run(..., faults=) injects the plan itself."""

    def test_serial_engine(self):
        plan = FaultPlan([Fault(COMPUTE_CRASH, superstep=1)])
        with pytest.raises(InjectedCrashError):
            BSPEngine(list(range(4))).run(Accumulator(), faults=plan)

    def test_threaded_engine(self):
        plan = FaultPlan([Fault(COMPUTE_CRASH, superstep=1)])
        with pytest.raises(InjectedCrashError):
            ThreadedBSPEngine(list(range(4)), num_workers=2).run(
                Accumulator(), faults=plan
            )

    def test_recoverable_engine_crash_then_resume(self):
        expected = BSPEngine(list(range(4)), num_workers=2).run(Accumulator())
        plan = FaultPlan([Fault(COMPUTE_CRASH, superstep=2)])
        engine = RecoverableBSPEngine(list(range(4)), num_workers=2)
        with pytest.raises(InjectedCrashError):
            engine.run(Accumulator(), faults=plan)
        result = engine.run(Accumulator(), resume=True, faults=plan)
        assert result == expected
        assert engine.last_resume_superstep == 2

    def test_sanitizer_engine(self):
        from repro.engine.sanitizer import SanitizerBSPEngine

        plan = FaultPlan([Fault(COMPUTE_CRASH, superstep=0)])
        with pytest.raises(InjectedCrashError):
            SanitizerBSPEngine(list(range(4))).run(Accumulator(), faults=plan)


class TestFaultyBSPEngine:
    def test_wraps_any_engine(self):
        plan = FaultPlan([Fault(TRANSIENT_ERROR, superstep=0)])
        faulty = FaultyBSPEngine(BSPEngine(list(range(4))), plan)
        with pytest.raises(InjectedTransientError):
            faulty.run(Accumulator())
        # delegation: attributes of the inner engine remain reachable
        assert faulty.num_workers == 1
        assert faulty.max_supersteps == faulty.inner.max_supersteps

    def test_clean_plan_matches_bare_engine(self):
        expected = BSPEngine(list(range(4))).run(Accumulator())
        faulty = FaultyBSPEngine(BSPEngine(list(range(4))), FaultPlan([]))
        assert faulty.run(Accumulator()) == expected


class TestChaosCheckpointStore:
    def _snapshot_args(self):
        from repro.engine.metrics import RunMetrics

        return {0: {"x": 1}}, {}, RunMetrics(num_workers=1)

    def test_io_fault_raised_before_write(self):
        plan = FaultPlan([Fault(CHECKPOINT_IO, save_index=0)])
        store = ChaosCheckpointStore(InMemoryCheckpointStore(), plan)
        states, inbox, metrics = self._snapshot_args()
        with pytest.raises(InjectedIOError):
            store.save(0, states, inbox, metrics)
        assert store.snapshots() == []  # nothing was written
        # the next save (different index) goes through
        store.save(1, states, inbox, metrics)
        assert store.latest() == 1

    def test_corruption_applied_after_write(self, tmp_path):
        plan = FaultPlan([Fault(CHECKPOINT_CORRUPT, save_index=1)])
        store = ChaosCheckpointStore(FileCheckpointStore(tmp_path), plan)
        states, inbox, metrics = self._snapshot_args()
        store.save(0, states, inbox, metrics)
        store.save(2, states, inbox, metrics)  # save index 1 -> corrupted
        assert store.load(0)
        with pytest.raises(CheckpointCorruptionError):
            store.load(2)

    def test_injected_errors_are_transient(self):
        assert issubclass(InjectedIOError, TransientEngineError)
        assert issubclass(InjectedIOError, OSError)
        assert issubclass(InjectedCrashError, TransientEngineError)
        assert issubclass(InjectedTransientError, TransientEngineError)


class TestChaosLoader:
    def test_fails_then_heals(self):
        plan = FaultPlan([Fault(LOAD_ERROR, times=2)])
        loads = []

        def loader(name):
            loads.append(name)
            return f"graph:{name}"

        load = chaos_loader(loader, plan)
        with pytest.raises(InjectedIOError):
            load("dblp")
        with pytest.raises(InjectedIOError):
            load("dblp")
        assert load("dblp") == "graph:dblp"
        # the real loader only ran once the faults were spent
        assert loads == ["dblp"]
