"""Property tests (hypothesis): a crashed-then-recovered run is
indistinguishable from a fault-free run.

Covers both recovery modes per engine: checkpoint resume on the
recoverable engine (replayed supersteps must not double-count metrics,
counters or global aggregators) and restart-from-scratch on the serial /
threaded engines driven through the supervisor.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import library
from repro.core.planner import hybrid_plan, iter_opt_plan
from repro.core.cost import CostModel
from repro.engine.bsp import BSPEngine, VertexProgram
from repro.engine.checkpoint import RecoverableBSPEngine
from repro.faults.chaos import InjectedCrashError
from repro.faults.plan import COMPUTE_CRASH, Fault, FaultPlan
from repro.faults.supervisor import ResiliencePolicy, RetryPolicy, Supervisor
from repro.graph.stats import GraphStatistics

from tests.test_properties import graphs, patterns

FAST_RETRY = RetryPolicy(base_delay_s=0.0, max_delay_s=0.0, jitter=0.0, seed=0)


class WaveProgram(VertexProgram):
    """A quiescing wave with counters and a global aggregator — the
    surfaces where replayed supersteps could double-count."""

    def __init__(self, steps: int = 4) -> None:
        self.steps = steps

    def num_supersteps(self):
        return self.steps

    def global_reducers(self):
        return {"total_sent": lambda a, b: a + b}

    def compute(self, ctx):
        state = ctx.state()
        state["seen"] = state.get("seen", 0) + sum(ctx.messages)
        ctx.add_counter("computes", 1)
        ctx.send((ctx.vid + 1) % 4, ctx.superstep + 1)
        ctx.reduce_global("total_sent", 1)

    def finish(self, states, metrics):
        return {vid: s.get("seen", 0) for vid, s in states.items()}


class TestCheckpointResumeEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        steps=st.integers(min_value=1, max_value=5),
        crash_step=st.integers(min_value=0, max_value=4),
        checkpoint_every=st.integers(min_value=1, max_value=3),
    )
    def test_wave_resume_matches_fault_free(
        self, steps, crash_step, checkpoint_every
    ):
        crash_step = crash_step % steps
        reference_engine = BSPEngine(list(range(4)), num_workers=2)
        expected = reference_engine.run(WaveProgram(steps))
        expected_counters = dict(reference_engine.last_metrics.counters)
        expected_globals = dict(reference_engine.last_globals)

        engine = RecoverableBSPEngine(
            list(range(4)), num_workers=2, checkpoint_every=checkpoint_every
        )
        faults = FaultPlan([Fault(COMPUTE_CRASH, superstep=crash_step)])
        with pytest.raises(InjectedCrashError):
            engine.run(WaveProgram(steps), faults=faults)
        result = engine.run(WaveProgram(steps), resume=True, faults=faults)

        assert result == expected
        # metrics: every superstep counted exactly once, no replay rows
        assert [
            s.superstep for s in engine.last_metrics.supersteps
        ] == list(range(steps))
        assert dict(engine.last_metrics.counters) == expected_counters
        # global aggregator contributions of replayed supersteps are not
        # double-counted either
        assert dict(engine.last_globals) == expected_globals

    @settings(max_examples=12, deadline=None)
    @given(
        graph=graphs(),
        pattern=patterns(min_length=2, max_length=3),
        crash_step=st.integers(min_value=0, max_value=10),
    )
    def test_extraction_resume_matches_fault_free(
        self, graph, pattern, crash_step
    ):
        plan = hybrid_plan(
            pattern, CostModel(pattern, GraphStatistics.collect(graph))
        )
        from repro.core.evaluator import PathConcatenationProgram

        def program():
            return PathConcatenationProgram(
                graph, pattern, plan, library.path_count()
            )

        reference_engine = BSPEngine(list(graph.vertices()), num_workers=3)
        expected = reference_engine.run(program())
        expected_counters = dict(reference_engine.last_metrics.counters)

        supersteps = program().num_supersteps()
        faults = FaultPlan(
            [Fault(COMPUTE_CRASH, superstep=crash_step % supersteps)]
        )
        engine = RecoverableBSPEngine(list(graph.vertices()), num_workers=3)
        with pytest.raises(InjectedCrashError):
            engine.run(program(), faults=faults)
        extracted = engine.run(program(), resume=True, faults=faults)

        assert extracted.equals(expected), extracted.diff(expected)
        assert dict(engine.last_metrics.counters) == expected_counters
        assert engine.last_metrics.num_supersteps == supersteps


class TestSupervisedRestartEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        graph=graphs(max_edges=10),
        pattern=patterns(min_length=2, max_length=3),
        crash_step=st.integers(min_value=0, max_value=10),
        rung=st.sampled_from(["serial", "threaded"]),
    )
    def test_supervised_recovery_matches_fault_free_per_engine(
        self, graph, pattern, crash_step, rung
    ):
        plan = iter_opt_plan(pattern)
        from repro.core.evaluator import run_extraction

        expected = run_extraction(
            graph, pattern, plan, library.path_count(), num_workers=2
        )
        supersteps = expected.metrics.num_supersteps
        faults = FaultPlan(
            [Fault(COMPUTE_CRASH, superstep=crash_step % supersteps)]
        )
        supervisor = Supervisor(
            policy=ResiliencePolicy(retry=FAST_RETRY, ladder=(rung,)),
            sleep=lambda s: None,
        )
        result = supervisor.run_extraction(
            graph,
            pattern,
            plan,
            library.path_count(),
            num_workers=2,
            faults=faults,
        )
        assert result.graph.equals(expected.graph), result.graph.diff(
            expected.graph
        )
        report = result.failure_report
        assert report.succeeded and report.num_retries == 1
        # the recovered run's own counters match a fault-free run exactly
        # (resume must not double-count, restart must not leak state)
        assert dict(result.metrics.counters) == dict(
            expected.metrics.counters
        )
        if rung == "serial":
            # the checkpointing rung recovered by resuming, not restarting
            assert report.recovery_points
        else:
            assert report.recovery_points == []


class TestProcessRungEquivalence:
    """The process rung: real OS workers SIGKILLed / stalled
    mid-superstep must recover to the fault-free result — in-rung via
    reassignment + respawn when the budget allows, via the ladder when
    the whole pool is lost.  Deterministic (no hypothesis): each case
    spawns real processes.
    """

    POOL = dict(
        start_method="fork",
        heartbeat_interval_s=0.02,
        heartbeat_timeout_s=0.6,
        respawn_limit=2,
    )

    @pytest.fixture(autouse=True)
    def _no_shm_residue(self):
        import os

        yield
        residue = [
            name for name in os.listdir("/dev/shm")
            if name.startswith("repro_")
        ]
        assert not residue, f"leaked shared-memory segments: {residue}"

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.datasets.dblp import generate_dblp
        from repro.workloads.patterns import get_workload

        graph = generate_dblp(
            n_authors=100, n_papers=160, n_venues=8, seed=13
        )
        pattern = get_workload("dblp-BP1").pattern
        plan = iter_opt_plan(pattern)
        from repro.core.evaluator import run_extraction

        baseline = run_extraction(
            graph, pattern, plan, library.path_count(), num_workers=1
        )
        return graph, pattern, plan, baseline

    def _policy(self, **overrides):
        from repro.faults.supervisor import PROCESS_LADDER

        options = dict(self.POOL, **overrides.pop("process_options", {}))
        return ResiliencePolicy(
            retry=FAST_RETRY,
            ladder=PROCESS_LADDER,
            process_options=options,
            **overrides,
        )

    def test_worker_kill_recovers_in_rung(self, workload):
        from repro.faults.plan import WORKER_KILL

        graph, pattern, plan, baseline = workload
        faults = FaultPlan([Fault(WORKER_KILL, superstep=1)])
        supervisor = Supervisor(policy=self._policy(), sleep=lambda s: None)
        result = supervisor.run_extraction(
            graph, pattern, plan, library.path_count(), num_workers=3,
            faults=faults,
        )
        assert result.graph.equals(baseline.graph)
        report = result.failure_report
        assert report.succeeded
        assert report.final_rung == "process"
        assert not report.degraded
        assert len(report.faults_injected) == len(faults.injected) == 1
        # the crashed run's counters equal the fault-free run's exactly
        # (reassignment must not double-count the killed worker's slice)
        crashed = dict(result.metrics.counters)
        clean = dict(baseline.metrics.counters)
        for counter in ("intermediate_paths", "final_paths"):
            assert crashed[counter] == clean[counter]

    def test_worker_stall_recovers_in_rung(self, workload):
        from repro.faults.plan import WORKER_STALL

        graph, pattern, plan, baseline = workload
        faults = FaultPlan([Fault(WORKER_STALL, superstep=1, delay_s=3.0)])
        supervisor = Supervisor(policy=self._policy(), sleep=lambda s: None)
        result = supervisor.run_extraction(
            graph, pattern, plan, library.path_count(), num_workers=3,
            faults=faults,
        )
        assert result.graph.equals(baseline.graph)
        assert result.failure_report.final_rung == "process"

    def test_total_pool_loss_degrades_down_the_ladder(self, workload):
        from repro.faults.plan import WORKER_KILL

        graph, pattern, plan, baseline = workload
        # a kill on every superstep with no respawn budget and a single
        # worker: the process rung cannot make progress
        faults = FaultPlan([Fault(WORKER_KILL, superstep=0, times=20)])
        policy = self._policy(process_options={"respawn_limit": 0})
        supervisor = Supervisor(policy=policy, sleep=lambda s: None)
        result = supervisor.run_extraction(
            graph, pattern, plan, library.path_count(), num_workers=1,
            faults=faults,
        )
        assert result.graph.equals(baseline.graph)
        report = result.failure_report
        assert report.degraded
        assert report.final_rung in ("threaded", "serial", "line")
