"""Tests for FaultPlan: determinism, site matching, firing, replay."""

import threading

import pytest

from repro.errors import EngineError
from repro.faults.plan import (
    CHECKPOINT_CORRUPT,
    CHECKPOINT_IO,
    COMPUTE_CRASH,
    FAULT_KINDS,
    LOAD_ERROR,
    STALL,
    TRANSIENT_ERROR,
    Fault,
    FaultPlan,
)


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(EngineError, match="unknown fault kind"):
            Fault("explode")

    def test_zero_times_rejected(self):
        with pytest.raises(EngineError, match="times"):
            Fault(COMPUTE_CRASH, times=0)

    def test_describe_names_site(self):
        assert Fault(COMPUTE_CRASH, superstep=2, vertex=7).describe() == (
            "compute-crash@s2/v7"
        )
        assert Fault(CHECKPOINT_IO, save_index=1).describe() == (
            "checkpoint-io@save1"
        )
        assert "×3" in Fault(TRANSIENT_ERROR, superstep=0, times=3).describe()


class TestFiring:
    def test_compute_fault_matches_superstep_and_vertex(self):
        plan = FaultPlan([Fault(COMPUTE_CRASH, superstep=1, vertex=5)])
        assert plan.compute_fault(0, 5) is None
        assert plan.compute_fault(1, 4) is None
        fired = plan.compute_fault(1, 5)
        assert fired is not None and fired.kind == COMPUTE_CRASH
        # spent after its single firing
        assert plan.compute_fault(1, 5) is None
        assert plan.spent()

    def test_wildcard_vertex_fires_on_first_visit(self):
        plan = FaultPlan([Fault(TRANSIENT_ERROR, superstep=0)])
        assert plan.compute_fault(0, 42) is not None
        assert plan.compute_fault(0, 43) is None

    def test_times_budget(self):
        plan = FaultPlan([Fault(TRANSIENT_ERROR, superstep=0, times=2)])
        assert plan.compute_fault(0, 1) is not None
        assert plan.compute_fault(0, 1) is not None
        assert plan.compute_fault(0, 1) is None

    def test_checkpoint_fault_matches_save_index(self):
        plan = FaultPlan([Fault(CHECKPOINT_IO, save_index=2)])
        assert plan.checkpoint_fault(0, 0) is None
        assert plan.checkpoint_fault(2, 4) is not None
        assert plan.checkpoint_fault(2, 4) is None

    def test_load_fault_counts_calls(self):
        plan = FaultPlan([Fault(LOAD_ERROR, times=2)])
        assert plan.load_fault() is not None
        assert plan.load_fault() is not None
        assert plan.load_fault() is None
        assert [e["call"] for e in plan.injected] == [0, 1]

    def test_injection_log_is_structured(self):
        plan = FaultPlan([Fault(COMPUTE_CRASH, superstep=1)])
        plan.compute_fault(1, 9)
        (entry,) = plan.injected
        assert entry["kind"] == COMPUTE_CRASH
        assert entry["site"] == "compute"
        assert entry["superstep"] == 1 and entry["vertex"] == 9

    def test_on_fire_callback_sees_each_entry(self):
        seen = []
        plan = FaultPlan([Fault(TRANSIENT_ERROR, superstep=0, times=2)])
        plan.on_fire = seen.append
        plan.compute_fault(0, 1)
        plan.compute_fault(0, 2)
        assert [e["vertex"] for e in seen] == [1, 2]

    def test_reset_rearms_and_clears_log(self):
        plan = FaultPlan([Fault(COMPUTE_CRASH, superstep=0)])
        plan.compute_fault(0, 1)
        assert plan.spent() and plan.injected
        plan.reset()
        assert not plan.spent() and plan.injected == []
        assert plan.compute_fault(0, 1) is not None

    def test_firing_is_thread_safe(self):
        plan = FaultPlan([Fault(TRANSIENT_ERROR, superstep=0, times=50)])
        hits = []

        def worker():
            for _ in range(100):
                if plan.compute_fault(0, 0) is not None:
                    hits.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(hits) == 50 == len(plan.injected)


class TestFromSeed:
    def test_same_seed_same_plan(self):
        for seed in range(25):
            a = FaultPlan.from_seed(seed)
            b = FaultPlan.from_seed(seed)
            assert a.describe() == b.describe()

    def test_different_seeds_vary(self):
        descriptions = {FaultPlan.from_seed(seed).describe() for seed in range(25)}
        assert len(descriptions) > 5

    def test_require_kind_guaranteed(self):
        for kind in FAULT_KINDS:
            plan = FaultPlan.from_seed(3, require_kind=kind)
            assert kind in plan.kinds()

    def test_compute_faults_land_within_superstep_budget(self):
        for seed in range(40):
            plan = FaultPlan.from_seed(seed, supersteps=3)
            for fault in plan.faults:
                if fault.superstep is not None:
                    assert 0 <= fault.superstep < 3

    def test_corruption_paired_with_crash(self):
        """A corrupted checkpoint only matters when recovery reads it
        back, so every generated corruption scenario includes a crash."""
        for seed in range(60):
            plan = FaultPlan.from_seed(seed, require_kind=CHECKPOINT_CORRUPT)
            assert CHECKPOINT_CORRUPT in plan.kinds()
            assert COMPUTE_CRASH in plan.kinds()

    def test_stall_duration_honoured(self):
        plan = FaultPlan.from_seed(1, require_kind=STALL, stall_s=1.25)
        (stall,) = [f for f in plan.faults if f.kind == STALL]
        assert stall.delay_s == 1.25
