"""Tests for supervised recovery: classification, backoff, deadlines,
retry/resume, the fallback ladder and extractor wiring."""

import pytest

from repro.aggregates import library
from repro.core.extractor import GraphExtractor
from repro.core.planner import iter_opt_plan
from repro.errors import (
    DeadlineExceededError,
    EngineError,
    SupervisorError,
    TransientEngineError,
)
from repro.faults.plan import (
    COMPUTE_CRASH,
    STALL,
    TRANSIENT_ERROR,
    Fault,
    FaultPlan,
)
from repro.faults.supervisor import (
    Deadline,
    DeadlineGuardProgram,
    FailureReport,
    ResiliencePolicy,
    RetryPolicy,
    Supervisor,
    _DeadlineClock,
    classify_error,
)
from repro.graph.pattern import LinePattern
from repro.obs.instruments import InstrumentRegistry
from repro.obs.spans import Tracer

from tests.conftest import build_scholarly

COAUTHOR = LinePattern.parse(
    "Author -[authorBy]-> Paper <-[authorBy]- Author"
)

#: fast retries so the suite never sleeps for real
FAST_RETRY = RetryPolicy(base_delay_s=0.0, max_delay_s=0.0, jitter=0.0, seed=0)


def make_supervisor(ladder=("serial",), deadline=None, tracer=None, **kw):
    policy = ResiliencePolicy(
        retry=kw.pop("retry", FAST_RETRY), deadline=deadline, ladder=ladder, **kw
    )
    return Supervisor(policy=policy, tracer=tracer, sleep=lambda s: None)


def supervised(supervisor, graph, pattern, faults=None, plan=None):
    return supervisor.run_extraction(
        graph,
        pattern,
        iter_opt_plan(pattern) if plan is None else plan,
        library.path_count(),
        faults=faults,
    )


class TestClassifier:
    def test_transient_family(self):
        assert classify_error(TransientEngineError("x")) == "transient"
        assert classify_error(DeadlineExceededError("x")) == "transient"
        assert classify_error(OSError("disk")) == "transient"
        assert classify_error(TimeoutError()) == "transient"

    def test_fatal_by_default(self):
        assert classify_error(ValueError("bug")) == "fatal"
        assert classify_error(EngineError("contract")) == "fatal"

    def test_extra_transient_types(self):
        assert (
            classify_error(KeyError("k"), transient_types=(KeyError,))
            == "transient"
        )


class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        delays = [policy.backoff_s(a) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=42)
        import random

        a = policy.backoff_s(0, random.Random(42))
        b = policy.backoff_s(0, random.Random(42))
        assert a == b
        assert 0.1 <= a <= 0.15

    def test_at_least_one_attempt(self):
        with pytest.raises(EngineError):
            RetryPolicy(max_attempts=0)


class TestDeadlines:
    def test_run_deadline_trips(self):
        clock = _DeadlineClock(Deadline(run_s=0.0))
        with pytest.raises(DeadlineExceededError, match="run deadline"):
            clock.check(0)

    def test_superstep_deadline_resets_per_superstep(self):
        import time

        clock = _DeadlineClock(Deadline(superstep_s=0.05))
        clock.check(0)
        time.sleep(0.07)
        with pytest.raises(DeadlineExceededError, match="superstep 0"):
            clock.check(0)
        clock.check(1)  # new superstep: fresh budget

    def test_guard_program_checks_before_compute(self):
        calls = []

        class Recording:
            def compute(self, ctx):
                calls.append(ctx.superstep)

            def num_supersteps(self):
                return 1

            def combiner(self):
                return None

            def global_reducers(self):
                return {}

            def span_attrs(self, superstep):
                return None

            def finish(self, states, metrics):
                return states

        guard = DeadlineGuardProgram(Recording(), _DeadlineClock(Deadline(run_s=0.0)))

        class Ctx:
            superstep = 0

        with pytest.raises(DeadlineExceededError):
            guard.compute(Ctx())
        assert calls == []  # inner compute never ran

    def test_stall_fault_is_caught_by_deadline_and_retried(self):
        graph = build_scholarly()
        supervisor = make_supervisor(
            ladder=("serial",), deadline=Deadline(superstep_s=0.05)
        )
        faults = FaultPlan([Fault(STALL, superstep=1, delay_s=0.2)])
        result = supervised(supervisor, graph, COAUTHOR, faults=faults)
        report = result.failure_report
        assert report.succeeded
        assert any(
            a.error_type == "DeadlineExceededError" for a in report.attempts
        )


class TestSupervisedRecovery:
    def test_fault_free_run_reports_single_attempt(self):
        graph = build_scholarly()
        result = supervised(make_supervisor(), graph, COAUTHOR)
        report = result.failure_report
        assert report.succeeded and not report.degraded
        assert report.num_retries == 0 and len(report.attempts) == 1
        assert report.final_rung == "serial"

    def test_crash_retries_and_resumes_to_equal_result(self):
        graph = build_scholarly()
        baseline = supervised(make_supervisor(), graph, COAUTHOR)
        faults = FaultPlan([Fault(COMPUTE_CRASH, superstep=1)])
        result = supervised(make_supervisor(), graph, COAUTHOR, faults=faults)
        assert result.graph.equals(baseline.graph)
        report = result.failure_report
        assert report.num_retries == 1
        assert report.recovery_points == [1]
        assert [e["kind"] for e in report.faults_injected] == [COMPUTE_CRASH]

    def test_transient_errors_exhaust_then_escalate_down_ladder(self):
        graph = build_scholarly()
        baseline = supervised(make_supervisor(), graph, COAUTHOR)
        # more failures than the serial rung's retry budget
        faults = FaultPlan(
            [Fault(TRANSIENT_ERROR, superstep=0, times=FAST_RETRY.max_attempts)]
        )
        supervisor = make_supervisor(ladder=("serial", "line"))
        result = supervised(supervisor, graph, COAUTHOR, faults=faults)
        report = result.failure_report
        assert report.succeeded and report.degraded
        assert report.final_rung == "line"
        assert result.graph.equals(baseline.graph)

    def test_fatal_error_escalates_immediately(self):
        graph = build_scholarly()

        class BuggyAggregate:
            """Delegates to path_count but raises a genuine bug on every
            concatenation — a deterministic, non-transient failure."""

            def __init__(self):
                self.inner = library.path_count()

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def concat(self, a, b):
                raise ValueError("genuine bug")

        supervisor = make_supervisor(ladder=("serial",))
        with pytest.raises(SupervisorError) as excinfo:
            supervisor.run_extraction(
                graph,
                COAUTHOR,
                iter_opt_plan(COAUTHOR),
                BuggyAggregate(),
                faults=None,
            )
        report = excinfo.value.report
        # fatal: one attempt on the only rung, no retries burned
        assert len(report.attempts) == 1
        assert report.attempts[0].outcome == "fatal"
        assert not report.succeeded

    def test_all_rungs_exhausted_raises_with_report(self):
        graph = build_scholarly()
        retry = RetryPolicy(
            max_attempts=2, base_delay_s=0.0, max_delay_s=0.0, jitter=0.0
        )
        # enough armed faults to kill every attempt on both rungs
        faults = FaultPlan([Fault(TRANSIENT_ERROR, times=100)])
        supervisor = make_supervisor(ladder=("serial", "line"), retry=retry)
        with pytest.raises(SupervisorError, match="every ladder rung"):
            supervised(supervisor, graph, COAUTHOR, faults=faults)

    def test_threaded_rung_restarts_on_fresh_engine(self):
        graph = build_scholarly()
        baseline = supervised(make_supervisor(), graph, COAUTHOR)
        faults = FaultPlan([Fault(COMPUTE_CRASH, superstep=1)])
        supervisor = make_supervisor(ladder=("threaded",))
        result = supervised(supervisor, graph, COAUTHOR, faults=faults)
        report = result.failure_report
        # the threaded rung cannot resume: recovery is restart-from-scratch
        assert report.succeeded and report.recovery_points == []
        assert report.num_retries == 1
        assert result.graph.equals(baseline.graph)

    def test_obs_counters_and_events_recorded(self):
        graph = build_scholarly()
        tracer = Tracer(registry=InstrumentRegistry())
        faults = FaultPlan([Fault(COMPUTE_CRASH, superstep=1)])
        supervisor = make_supervisor(tracer=tracer)
        supervised(supervisor, graph, COAUTHOR, faults=faults)
        counters = {
            c.name: c.value
            for c in tracer.registry.collect()
            if c.kind == "counter"
        }
        assert counters["faults_injected_total"] == 1
        assert counters["supervisor_retries_total"] == 1
        assert counters["supervisor_recoveries_total"] == 1
        events = [
            event.name for span in tracer.spans for event in span.events
        ] + [r.get("name") for r in tracer.records if r.get("kind") == "event"]
        assert "fault-injected" in events
        assert "supervisor-retry" in events
        assert "checkpoint-restored" in events


class TestResiliencePolicyValidation:
    def test_empty_ladder_rejected(self):
        with pytest.raises(EngineError, match="at least one rung"):
            ResiliencePolicy(ladder=())

    def test_unknown_rung_rejected(self):
        with pytest.raises(EngineError, match="unknown ladder rung"):
            ResiliencePolicy(ladder=("quantum",))


class TestExtractorWiring:
    def test_resilience_true_uses_default_policy(self):
        graph = build_scholarly()
        extractor = GraphExtractor(graph)
        baseline = extractor.extract(COAUTHOR, library.path_count())
        result = extractor.extract(
            COAUTHOR, library.path_count(), resilience=True
        )
        assert result.failure_report is not None
        assert result.failure_report.succeeded
        assert result.graph.equals(baseline.graph)
        assert extractor.last_failure_report is result.failure_report

    def test_faults_imply_supervision(self):
        graph = build_scholarly()
        extractor = GraphExtractor(graph)
        baseline = extractor.extract(COAUTHOR, library.path_count())
        faults = FaultPlan([Fault(COMPUTE_CRASH, superstep=1)])
        policy = ResiliencePolicy(retry=FAST_RETRY, ladder=("serial",))
        extractor_r = GraphExtractor(graph, resilience=policy)
        result = extractor_r.extract(
            COAUTHOR, library.path_count(), faults=faults
        )
        assert result.graph.equals(baseline.graph)
        assert result.failure_report.num_retries == 1
        summary = result.summary()
        assert summary["retries"] == 1
        assert summary["faults_injected"] == 1

    def test_sanitize_and_resilience_are_exclusive(self):
        graph = build_scholarly()
        extractor = GraphExtractor(graph, sanitize=True)
        with pytest.raises(EngineError, match="mutually exclusive"):
            extractor.extract(
                COAUTHOR, library.path_count(), resilience=True
            )

    def test_failure_report_kept_when_unrecoverable(self):
        graph = build_scholarly()
        retry = RetryPolicy(
            max_attempts=1, base_delay_s=0.0, max_delay_s=0.0, jitter=0.0
        )
        policy = ResiliencePolicy(retry=retry, ladder=("serial",))
        extractor = GraphExtractor(graph, resilience=policy)
        faults = FaultPlan([Fault(TRANSIENT_ERROR, times=100)])
        with pytest.raises(SupervisorError):
            extractor.extract(COAUTHOR, library.path_count(), faults=faults)
        assert extractor.last_failure_report is not None
        assert not extractor.last_failure_report.succeeded


class TestFailureReport:
    def test_as_dict_and_summary(self):
        report = FailureReport()
        assert report.num_retries == 0
        assert "FAILED" in report.summary()
        report.succeeded = True
        report.degraded = True
        report.final_rung = "line"
        assert "degraded" in report.summary()
        payload = report.as_dict()
        assert payload["succeeded"] and payload["degraded"]
        assert payload["attempts"] == []
