"""Hot-path caches on HeterogeneousGraph: label-match tuples, undirected
adjacency entries, and the compact snapshot — all invalidated on any
mutation.  The compact snapshot's measured statistics
(``slot_statistics`` / ``label_cardinality``, the seeds of the
certified-bounds interval domain) are cached per snapshot, so a stale
snapshot would mean stale certificates."""

from __future__ import annotations

from repro.graph.hetgraph import ANY_LABEL, HeterogeneousGraph
from repro.graph.pattern import Direction, PatternEdge

from tests.conftest import A1, A2, P1, P2, P3, build_scholarly

AUTHOR_BY = PatternEdge("authorBy", Direction.FORWARD)


class TestVerticesMatchingCache:
    def test_returns_cached_tuple(self):
        g = build_scholarly()
        first = g.vertices_matching("Author")
        assert first is g.vertices_matching("Author")
        assert isinstance(first, tuple)

    def test_any_label_matches_all_vertices(self):
        g = build_scholarly()
        assert set(g.vertices_matching(ANY_LABEL)) == set(g.vertices())

    def test_add_vertex_invalidates(self):
        g = build_scholarly()
        before = g.vertices_matching("Author")
        g.add_vertex(99, "Author")
        after = g.vertices_matching("Author")
        assert after is not before
        assert 99 in after

    def test_unknown_label_is_empty(self):
        g = build_scholarly()
        assert g.vertices_matching("Ghost") == ()


class TestAnyEdgesCache:
    def test_concatenates_out_and_in(self):
        g = build_scholarly()
        entries = g.any_edges(P2, "citeBy")
        # P2 -> P1 (out) and P3 -> P2 (in): both traversable undirected
        assert set(entries) == {(P1, 1.0), (P3, 1.0)}

    def test_returns_cached_tuple(self):
        g = build_scholarly()
        assert g.any_edges(A1, "authorBy") is g.any_edges(A1, "authorBy")

    def test_add_edge_invalidates(self):
        g = build_scholarly()
        before = g.any_edges(A1, "authorBy")
        g.add_edge(A1, P2, "authorBy")
        after = g.any_edges(A1, "authorBy")
        assert after is not before
        assert len(after) == len(before) + 1

    def test_remove_edge_invalidates(self):
        g = build_scholarly()
        before = g.any_edges(A1, "authorBy")
        g.remove_edge(A1, P1, "authorBy")
        assert len(g.any_edges(A1, "authorBy")) == len(before) - 1


class TestVersionCounter:
    def test_bumps_on_every_mutation(self):
        g = build_scholarly()
        v0 = g.version
        g.add_vertex(100, "Author")
        v1 = g.version
        g.add_edge(100, P1, "authorBy")
        v2 = g.version
        g.remove_edge(100, P1, "authorBy")
        v3 = g.version
        assert v0 < v1 < v2 < v3

    def test_attr_update_on_existing_vertex_bumps(self):
        g = build_scholarly()
        v0 = g.version
        g.add_vertex(A2, "Author", {"h_index": 3})
        assert g.version > v0

    def test_noop_readd_does_not_bump(self):
        g = build_scholarly()
        v0 = g.version
        g.add_vertex(A2, "Author")
        assert g.version == v0

    def test_queries_do_not_bump(self):
        g = build_scholarly()
        v0 = g.version
        g.vertices_matching("Author")
        g.any_edges(A1, "authorBy")
        g.to_compact()
        assert g.version == v0


class TestCompactStatisticsCache:
    """The measured statistics behind :class:`repro.lint.bounds.
    PatternBounds` live on the compact snapshot; any graph mutation must
    hand out a fresh snapshot with fresh statistics."""

    def test_snapshot_is_cached_until_mutation(self):
        g = build_scholarly()
        stale = g.to_compact()
        assert g.to_compact() is stale
        g.add_vertex(99, "Author")
        fresh = g.to_compact()
        assert fresh is not stale
        assert g.to_compact() is fresh

    def test_slot_statistics_cached_per_snapshot(self):
        compact = build_scholarly().to_compact()
        first = compact.slot_statistics(AUTHOR_BY, "Author", "Paper")
        assert compact.slot_statistics(AUTHOR_BY, "Author", "Paper") is first
        # exact values on the scholarly graph: 6 authorBy edges,
        # authors write 1-2 papers, every paper has exactly 2 authors
        assert first.count == 6
        assert (first.fanout_min, first.fanout_max) == (1, 2)
        assert (first.fanin_min, first.fanin_max) == (2, 2)
        assert (first.left_vertices, first.right_vertices) == (4, 3)

    def test_label_cardinality_cached_per_snapshot(self):
        compact = build_scholarly().to_compact()
        assert compact.label_cardinality("Author") == 4
        assert compact.label_cardinality("Author") == 4  # cached path
        assert compact.label_cardinality("Paper") == 3

    def test_edge_mutation_refreshes_slot_statistics(self):
        g = build_scholarly()
        stale = g.to_compact()
        before = stale.slot_statistics(AUTHOR_BY, "Author", "Paper")
        g.add_edge(A1, P2, "authorBy")
        fresh = g.to_compact()
        assert fresh is not stale
        assert fresh.version > stale.version
        after = fresh.slot_statistics(AUTHOR_BY, "Author", "Paper")
        assert after.count == before.count + 1
        assert after.fanin_max == 3  # P2 now has three authors
        # the stale snapshot keeps its (now outdated) cached answer
        assert (
            stale.slot_statistics(AUTHOR_BY, "Author", "Paper") is before
        )

    def test_vertex_mutation_refreshes_cardinality(self):
        g = build_scholarly()
        stale = g.to_compact()
        assert stale.label_cardinality("Author") == 4
        g.add_vertex(99, "Author")
        fresh = g.to_compact()
        assert fresh.label_cardinality("Author") == 5
        assert stale.label_cardinality("Author") == 4

    def test_remove_edge_refreshes_statistics(self):
        g = build_scholarly()
        assert g.to_compact().slot_statistics(
            AUTHOR_BY, "Author", "Paper"
        ).count == 6
        g.remove_edge(A1, P1, "authorBy")
        after = g.to_compact().slot_statistics(AUTHOR_BY, "Author", "Paper")
        assert after.count == 5
        # A1 now authors nothing, so the fan-out minimum drops to zero
        assert after.fanout_min == 0


class TestCompactCacheCounters:
    """``compact_cache_stats()`` — the effectiveness counters the
    ``cache`` obs record and ``repro report`` surface."""

    def test_hits_and_misses(self):
        g = build_scholarly()
        stats = g.compact_cache_stats()
        assert stats["compact_cache_hits"] == 0
        assert stats["compact_cache_misses"] == 0
        g.to_compact()
        g.to_compact()
        g.to_compact()
        stats = g.compact_cache_stats()
        assert stats["compact_cache_misses"] == 1
        assert stats["compact_cache_hits"] == 2

    def test_mutation_costs_one_more_miss(self):
        g = build_scholarly()
        g.to_compact()
        g.add_vertex(99, "Author")
        g.to_compact()
        stats = g.compact_cache_stats()
        assert stats["compact_cache_misses"] == 2

    def test_adjacency_builds_counted_per_label_direction(self):
        g = build_scholarly()
        compact = g.to_compact()
        compact.adjacency("authorBy")
        compact.adjacency("authorBy")  # cached — no second build
        compact.adjacency("authorBy", "in")
        stats = g.compact_cache_stats()
        assert stats["compact_csr_builds"] == 2
        assert stats["compact_csr_builds:authorBy:out"] == 1
        assert stats["compact_csr_builds:authorBy:in"] == 1

    def test_builds_survive_snapshot_invalidation(self):
        g = build_scholarly()
        g.to_compact().adjacency("citeBy")
        g.add_vertex(99, "Author")  # retires the snapshot
        g.to_compact().adjacency("citeBy")
        stats = g.compact_cache_stats()
        # one build per snapshot: both accumulate into the graph total
        assert stats["compact_csr_builds:citeBy:out"] == 2

    def test_slot_matrix_builds_counted(self):
        from repro.aggregates.library import path_count
        from repro.core.extractor import GraphExtractor
        from repro.graph.pattern import LinePattern

        g = build_scholarly()
        extractor = GraphExtractor(g, backend="vectorized")
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        extractor.extract(pattern, path_count())
        stats = g.compact_cache_stats()
        # both slots of the coauthor pattern materialise one CSR each
        assert stats["compact_csr_builds"] == 2
        extractor.extract(pattern, path_count())
        # sequential re-runs rebuild (per-evaluator slot cache) — the
        # growth is exactly what batched multi-query runs avoid
        assert g.compact_cache_stats()["compact_csr_builds"] == 4


class TestStatisticsCache:
    """``HeterogeneousGraph.statistics()`` — one GraphStatistics
    collection per graph version, shared by every extractor."""

    def test_cached_until_mutation(self):
        g = build_scholarly()
        first = g.statistics()
        assert g.statistics() is first
        g.add_vertex(99, "Author")
        fresh = g.statistics()
        assert fresh is not first
        assert g.statistics() is fresh

    def test_extractors_share_the_graph_cache(self):
        from repro.core.extractor import GraphExtractor

        g = build_scholarly()
        a = GraphExtractor(g)
        b = GraphExtractor(g)
        assert a.stats is b.stats
