"""Hot-path caches on HeterogeneousGraph: label-match tuples, undirected
adjacency entries, and the compact snapshot — all invalidated on any
mutation."""

from __future__ import annotations

from repro.graph.hetgraph import ANY_LABEL, HeterogeneousGraph

from tests.conftest import A1, A2, P1, P2, P3, build_scholarly


class TestVerticesMatchingCache:
    def test_returns_cached_tuple(self):
        g = build_scholarly()
        first = g.vertices_matching("Author")
        assert first is g.vertices_matching("Author")
        assert isinstance(first, tuple)

    def test_any_label_matches_all_vertices(self):
        g = build_scholarly()
        assert set(g.vertices_matching(ANY_LABEL)) == set(g.vertices())

    def test_add_vertex_invalidates(self):
        g = build_scholarly()
        before = g.vertices_matching("Author")
        g.add_vertex(99, "Author")
        after = g.vertices_matching("Author")
        assert after is not before
        assert 99 in after

    def test_unknown_label_is_empty(self):
        g = build_scholarly()
        assert g.vertices_matching("Ghost") == ()


class TestAnyEdgesCache:
    def test_concatenates_out_and_in(self):
        g = build_scholarly()
        entries = g.any_edges(P2, "citeBy")
        # P2 -> P1 (out) and P3 -> P2 (in): both traversable undirected
        assert set(entries) == {(P1, 1.0), (P3, 1.0)}

    def test_returns_cached_tuple(self):
        g = build_scholarly()
        assert g.any_edges(A1, "authorBy") is g.any_edges(A1, "authorBy")

    def test_add_edge_invalidates(self):
        g = build_scholarly()
        before = g.any_edges(A1, "authorBy")
        g.add_edge(A1, P2, "authorBy")
        after = g.any_edges(A1, "authorBy")
        assert after is not before
        assert len(after) == len(before) + 1

    def test_remove_edge_invalidates(self):
        g = build_scholarly()
        before = g.any_edges(A1, "authorBy")
        g.remove_edge(A1, P1, "authorBy")
        assert len(g.any_edges(A1, "authorBy")) == len(before) - 1


class TestVersionCounter:
    def test_bumps_on_every_mutation(self):
        g = build_scholarly()
        v0 = g.version
        g.add_vertex(100, "Author")
        v1 = g.version
        g.add_edge(100, P1, "authorBy")
        v2 = g.version
        g.remove_edge(100, P1, "authorBy")
        v3 = g.version
        assert v0 < v1 < v2 < v3

    def test_attr_update_on_existing_vertex_bumps(self):
        g = build_scholarly()
        v0 = g.version
        g.add_vertex(A2, "Author", {"h_index": 3})
        assert g.version > v0

    def test_noop_readd_does_not_bump(self):
        g = build_scholarly()
        v0 = g.version
        g.add_vertex(A2, "Author")
        assert g.version == v0

    def test_queries_do_not_bump(self):
        g = build_scholarly()
        v0 = g.version
        g.vertices_matching("Author")
        g.any_edges(A1, "authorBy")
        g.to_compact()
        assert g.version == v0
