"""Unit tests for vertex filters (attribute predicates on patterns)."""

import pytest

from repro.errors import PatternError
from repro.graph.filters import VertexFilter, normalize_filters
from repro.graph.pattern import LinePattern


class TestVertexFilter:
    @pytest.mark.parametrize(
        "op,value,attrs,expected",
        [
            ("eq", 5, {"x": 5}, True),
            ("eq", 5, {"x": 6}, False),
            ("ne", 5, {"x": 6}, True),
            ("lt", 5, {"x": 4}, True),
            ("le", 5, {"x": 5}, True),
            ("gt", 5, {"x": 5}, False),
            ("ge", 5, {"x": 5}, True),
            ("in", (1, 2, 3), {"x": 2}, True),
            ("in", (1, 2, 3), {"x": 9}, False),
        ],
    )
    def test_operators(self, op, value, attrs, expected):
        assert VertexFilter("x", op, value).matches(attrs) is expected

    def test_missing_attribute_never_matches(self):
        assert not VertexFilter("x", "eq", 1).matches({})
        assert not VertexFilter("x", "ne", 1).matches({})

    def test_type_error_means_no_match(self):
        assert not VertexFilter("x", "lt", 5).matches({"x": "not-a-number"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(PatternError, match="operator"):
            VertexFilter("x", "like", "%a%")


class TestNormalizeFilters:
    def test_sorted_tuple(self):
        f1, f2 = VertexFilter("a", "eq", 1), VertexFilter("b", "eq", 2)
        normalized = normalize_filters({2: f2, 0: f1}, length=2)
        assert normalized == ((0, f1), (2, f2))

    def test_out_of_range_position(self):
        with pytest.raises(PatternError, match="position"):
            normalize_filters({3: VertexFilter("a", "eq", 1)}, length=2)

    def test_non_filter_rejected(self):
        with pytest.raises(PatternError, match="VertexFilter"):
            normalize_filters({0: lambda a: True}, length=2)


class TestPatternIntegration:
    @pytest.fixture
    def pattern(self):
        return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")

    def test_with_filter(self, pattern):
        recent = VertexFilter("year", "ge", 2010)
        filtered = pattern.with_filter(1, recent)
        assert filtered.has_filters
        assert filtered.filter_at(1) == recent
        assert filtered.filter_at(0) is None
        assert not pattern.has_filters  # original untouched

    def test_filters_part_of_identity(self, pattern):
        filtered = pattern.with_filter(1, VertexFilter("year", "ge", 2010))
        assert filtered != pattern
        assert hash(filtered) != hash(pattern)
        again = pattern.with_filter(1, VertexFilter("year", "ge", 2010))
        assert filtered == again

    def test_with_filter_replaces(self, pattern):
        a = pattern.with_filter(1, VertexFilter("year", "ge", 2010))
        b = a.with_filter(1, VertexFilter("year", "ge", 2015))
        assert b.filter_at(1) == VertexFilter("year", "ge", 2015)
        assert len(b.filters) == 1

    def test_reversed_mirrors_positions(self, pattern):
        filtered = pattern.with_filter(0, VertexFilter("h", "gt", 10))
        mirrored = filtered.reversed()
        assert mirrored.filter_at(2) == VertexFilter("h", "gt", 10)
        assert mirrored.filter_at(0) is None

    def test_segment_keeps_inner_filters(self):
        pattern = LinePattern.parse(
            "A -[x]-> B <-[y]- C -[z]-> D"
        ).with_filter(2, VertexFilter("k", "eq", 1))
        seg = pattern.segment(1, 3)
        assert seg.filter_at(1) == VertexFilter("k", "eq", 1)
        outside = pattern.segment(0, 1)
        assert not outside.has_filters
