"""Unit tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph.generators import (
    add_label_block,
    attach_edges,
    random_hetgraph,
    zipf_weights,
)
from repro.graph.hetgraph import HeterogeneousGraph


class TestZipfWeights:
    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        w = zipf_weights(100, 0.8, rng)
        assert w.shape == (100,)
        assert abs(w.sum() - 1.0) < 1e-9

    def test_zero_skew_uniform(self):
        rng = np.random.default_rng(0)
        w = zipf_weights(10, 0.0, rng)
        assert np.allclose(w, 0.1)

    def test_higher_skew_more_concentrated(self):
        rng = np.random.default_rng(0)
        flat = np.sort(zipf_weights(50, 0.2, rng))[::-1]
        steep = np.sort(zipf_weights(50, 1.5, rng))[::-1]
        assert steep[0] > flat[0]

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            zipf_weights(0, 0.5, rng)
        with pytest.raises(DatasetError):
            zipf_weights(10, -1.0, rng)


class TestAddLabelBlock:
    def test_ids_are_consecutive(self):
        g = HeterogeneousGraph()
        ids = add_label_block(g, "A", 5, 10)
        assert ids == [10, 11, 12, 13, 14]
        assert g.count_label("A") == 5

    def test_negative_count(self):
        with pytest.raises(DatasetError):
            add_label_block(HeterogeneousGraph(), "A", -1, 0)


class TestAttachEdges:
    def test_mean_degree_respected(self):
        g = HeterogeneousGraph()
        src = add_label_block(g, "A", 500, 0)
        dst = add_label_block(g, "B", 100, 500)
        rng = np.random.default_rng(1)
        added = attach_edges(g, src, dst, "rel", 3.0, rng)
        assert added == g.num_edges()
        assert 2.5 < added / len(src) < 3.5  # Poisson(3) mean

    def test_max_out_degree_cap(self):
        g = HeterogeneousGraph()
        src = add_label_block(g, "A", 200, 0)
        dst = add_label_block(g, "B", 50, 200)
        rng = np.random.default_rng(2)
        attach_edges(g, src, dst, "rel", 5.0, rng, max_out_degree=2)
        assert all(g.out_degree(v, "rel") <= 2 for v in src)

    def test_weight_range(self):
        g = HeterogeneousGraph()
        src = add_label_block(g, "A", 50, 0)
        dst = add_label_block(g, "B", 10, 50)
        rng = np.random.default_rng(3)
        attach_edges(g, src, dst, "rel", 2.0, rng, weight_range=(0.1, 0.9))
        weights = [e.weight for e in g.edges()]
        assert weights and all(0.1 <= w <= 0.9 for w in weights)

    def test_empty_endpoints_noop(self):
        g = HeterogeneousGraph()
        rng = np.random.default_rng(0)
        assert attach_edges(g, [], [], "rel", 2.0, rng) == 0

    def test_negative_mean_rejected(self):
        g = HeterogeneousGraph()
        src = add_label_block(g, "A", 1, 0)
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            attach_edges(g, src, src, "rel", -1.0, rng)


class TestRandomHetgraph:
    def test_declarative_build(self):
        g = random_hetgraph({"A": 20, "B": 10}, [("A", "likes", "B", 2.0)], seed=7)
        assert g.count_label("A") == 20
        assert g.count_label("B") == 10
        assert g.count_edge_label("likes") == g.num_edges()

    def test_deterministic_under_seed(self):
        spec = ({"A": 30, "B": 15}, [("A", "e", "B", 1.5)])
        a = random_hetgraph(*spec, seed=5)
        b = random_hetgraph(*spec, seed=5)
        assert sorted((e.src, e.dst) for e in a.edges()) == sorted(
            (e.src, e.dst) for e in b.edges()
        )

    def test_different_seed_differs(self):
        spec = ({"A": 30, "B": 15}, [("A", "e", "B", 1.5)])
        a = random_hetgraph(*spec, seed=5)
        b = random_hetgraph(*spec, seed=6)
        assert sorted((e.src, e.dst) for e in a.edges()) != sorted(
            (e.src, e.dst) for e in b.edges()
        )

    def test_undeclared_label_rejected(self):
        with pytest.raises(DatasetError):
            random_hetgraph({"A": 5}, [("A", "e", "Z", 1.0)])
