"""Unit tests for repro.graph.hetgraph."""

import pytest

from repro.errors import SchemaError
from repro.graph.hetgraph import Edge, HeterogeneousGraph
from repro.graph.schema import GraphSchema


@pytest.fixture
def simple():
    g = HeterogeneousGraph()
    g.add_vertex(1, "A")
    g.add_vertex(2, "B")
    g.add_vertex(3, "B")
    g.add_edge(1, 2, "rel", weight=0.5)
    g.add_edge(1, 3, "rel")
    return g


class TestVertices:
    def test_counts(self, simple):
        assert simple.num_vertices() == 3
        assert len(simple) == 3
        assert simple.count_label("A") == 1
        assert simple.count_label("B") == 2
        assert simple.count_label("missing") == 0

    def test_membership_and_labels(self, simple):
        assert simple.has_vertex(1)
        assert 1 in simple
        assert 99 not in simple
        assert simple.label_of(2) == "B"
        with pytest.raises(KeyError):
            simple.label_of(99)

    def test_vertices_with_label(self, simple):
        assert list(simple.vertices_with_label("B")) == [2, 3]
        assert list(simple.vertices_with_label("nope")) == []

    def test_readd_same_label_is_noop(self, simple):
        simple.add_vertex(1, "A")
        assert simple.num_vertices() == 3

    def test_readd_merges_attrs(self):
        g = HeterogeneousGraph()
        g.add_vertex(1, "A", {"x": 1})
        g.add_vertex(1, "A", {"y": 2})
        assert g.vertex_attrs(1) == {"x": 1, "y": 2}

    def test_relabel_rejected(self, simple):
        with pytest.raises(SchemaError, match="relabel"):
            simple.add_vertex(1, "B")

    def test_attrs_default_empty(self, simple):
        assert simple.vertex_attrs(1) == {}


class TestEdges:
    def test_adjacency_both_directions(self, simple):
        assert simple.out_edges(1, "rel") == [(2, 0.5), (3, 1.0)]
        assert simple.in_edges(2, "rel") == [(1, 0.5)]
        assert simple.out_edges(2, "rel") == ()
        assert simple.in_edges(1, "rel") == ()

    def test_unknown_label_adjacency_empty(self, simple):
        assert simple.out_edges(1, "nope") == ()
        assert simple.in_edges(1, "nope") == ()

    def test_degrees(self, simple):
        assert simple.out_degree(1) == 2
        assert simple.out_degree(1, "rel") == 2
        assert simple.in_degree(3, "rel") == 1
        assert simple.out_degree(3) == 0

    def test_parallel_edges_kept(self):
        g = HeterogeneousGraph()
        g.add_vertex(1, "A")
        g.add_vertex(2, "B")
        g.add_edge(1, 2, "rel")
        g.add_edge(1, 2, "rel")
        assert g.num_edges() == 2
        assert len(g.out_edges(1, "rel")) == 2

    def test_missing_endpoint_rejected(self, simple):
        with pytest.raises(SchemaError, match="source"):
            simple.add_edge(99, 1, "rel")
        with pytest.raises(SchemaError, match="destination"):
            simple.add_edge(1, 99, "rel")

    def test_edge_iteration(self, simple):
        edges = sorted(simple.edges(), key=lambda e: (e.src, e.dst))
        assert edges == [Edge(1, 2, "rel", 0.5), Edge(1, 3, "rel", 1.0)]

    def test_edge_label_counts(self, simple):
        assert simple.count_edge_label("rel") == 2
        assert simple.count_edge_label("nope") == 0
        assert set(simple.edge_labels()) == {"rel"}


class TestSchemaEnforcement:
    def test_declared_schema_validates_vertices(self):
        g = HeterogeneousGraph(GraphSchema(vertex_labels=["A"]))
        g.add_vertex(1, "A")
        with pytest.raises(SchemaError):
            g.add_vertex(2, "B")

    def test_declared_schema_validates_edges(self):
        schema = GraphSchema(edge_types=[("e", "A", "B")])
        g = HeterogeneousGraph(schema)
        g.add_vertex(1, "A")
        g.add_vertex(2, "B")
        g.add_edge(1, 2, "e")
        with pytest.raises(SchemaError):
            g.add_edge(2, 1, "e")  # wrong direction

    def test_inferred_schema_tracks_inserts(self, simple):
        assert simple.schema.has_vertex_label("A")
        assert simple.schema.has_edge_type("rel", "A", "B")
