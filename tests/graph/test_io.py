"""Unit tests for repro.graph.io."""

import pytest

from repro.errors import DatasetError
from repro.graph.io import load_edgelist, load_json, save_edgelist, save_json

from tests.conftest import build_scholarly


def graphs_equal(a, b):
    if sorted(a.vertices()) != sorted(b.vertices()):
        return False
    for vid in a.vertices():
        if a.label_of(vid) != b.label_of(vid):
            return False
    edges_a = sorted((e.src, e.dst, e.label, e.weight) for e in a.edges())
    edges_b = sorted((e.src, e.dst, e.label, e.weight) for e in b.edges())
    return edges_a == edges_b


class TestEdgelist:
    def test_roundtrip(self, tmp_path):
        g = build_scholarly()
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        assert graphs_equal(g, load_edgelist(path))

    def test_weights_preserved(self, tmp_path):
        g = build_scholarly()
        g.add_edge(1, 11, "authorBy", weight=0.25)
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        loaded = load_edgelist(path)
        weights = [w for _, w in loaded.out_edges(1, "authorBy")]
        assert 0.25 in weights

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\nV 1 A\nV 2 B\nE 1 2 rel\n")
        g = load_edgelist(path)
        assert g.num_vertices() == 2
        assert g.num_edges() == 1

    @pytest.mark.parametrize(
        "line",
        ["X 1 A", "V 1", "E 1 2", "E 1 2 rel 1.0 extra", "V one A"],
    )
    def test_malformed_line_raises(self, tmp_path, line):
        path = tmp_path / "bad.txt"
        path.write_text(line + "\n")
        with pytest.raises(DatasetError):
            load_edgelist(path)


class TestJson:
    def test_roundtrip(self, tmp_path):
        g = build_scholarly()
        path = tmp_path / "g.json"
        save_json(g, path)
        assert graphs_equal(g, load_json(path))

    def test_attrs_roundtrip(self, tmp_path):
        g = build_scholarly()
        g.add_vertex(99, "Author", {"name": "knuth"})
        path = tmp_path / "g.json"
        save_json(g, path)
        assert load_json(path).vertex_attrs(99) == {"name": "knuth"}

    def test_malformed_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"vertices": [{"id": 1}]}')
        with pytest.raises(DatasetError):
            load_json(path)
