"""Unit tests for repro.graph.partition."""

import pytest

from repro.errors import EngineError
from repro.graph.partition import HashPartitioner, RoundRobinPartitioner


class TestHashPartitioner:
    def test_worker_of_matches_split(self):
        part = HashPartitioner(4)
        vertices = list(range(100))
        slices = part.split(vertices)
        for worker, owned in enumerate(slices):
            for vid in owned:
                assert part.worker_of(vid) == worker

    def test_split_covers_all_vertices(self):
        part = HashPartitioner(3)
        vertices = list(range(50))
        slices = part.split(vertices)
        assert sorted(v for s in slices for v in s) == vertices

    def test_integer_ids_balanced(self):
        """Consecutive integer ids hash to an even modulo spread."""
        part = HashPartitioner(5)
        slices = part.split(range(1000))
        sizes = [len(s) for s in slices]
        assert max(sizes) - min(sizes) <= 1

    def test_single_worker(self):
        part = HashPartitioner(1)
        assert part.split([1, 2, 3]) == [[1, 2, 3]]

    def test_invalid_worker_count(self):
        with pytest.raises(EngineError):
            HashPartitioner(0)


class TestRoundRobinPartitioner:
    def test_fit_and_lookup(self):
        part = RoundRobinPartitioner(3).fit([10, 20, 30, 40])
        assert part.worker_of(10) == 0
        assert part.worker_of(20) == 1
        assert part.worker_of(30) == 2
        assert part.worker_of(40) == 0

    def test_unfitted_vertex_raises(self):
        part = RoundRobinPartitioner(2).fit([1])
        with pytest.raises(EngineError):
            part.worker_of(2)

    def test_split(self):
        part = RoundRobinPartitioner(2).fit([1, 2, 3])
        assert part.split([1, 2, 3]) == [[1, 3], [2]]

    def test_invalid_worker_count(self):
        with pytest.raises(EngineError):
            RoundRobinPartitioner(-1)
