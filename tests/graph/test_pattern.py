"""Unit tests for repro.graph.pattern."""

import pytest

from repro.errors import PatternError, PatternMismatchError
from repro.graph.pattern import Direction, LinePattern, PatternEdge
from repro.graph.schema import GraphSchema


class TestParsing:
    def test_forward_and_backward(self):
        p = LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        assert p.vertex_labels == ("Author", "Paper", "Author")
        assert p.edges[0] == PatternEdge("authorBy", Direction.FORWARD)
        assert p.edges[1] == PatternEdge("authorBy", Direction.BACKWARD)
        assert p.length == 2

    def test_whitespace_tolerant(self):
        p = LinePattern.parse("A   -[ e ]->   B")
        assert p.vertex_labels == ("A", "B")
        assert p.edges[0].label == "e"

    def test_roundtrip_through_str(self):
        text = "Venue <-[publishAt]- Paper <-[authorBy]- Author"
        p = LinePattern.parse(text)
        assert LinePattern.parse(str(p)) == p

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "Author",
            "Author -[e]->",
            "-[e]-> Paper",
            "Author -e- Paper",
            "Author -[e]-> -[f]-> Paper",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(PatternError):
            LinePattern.parse(bad)


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(PatternError):
            LinePattern(["A", "B", "C"], [PatternEdge("e")])

    def test_too_short_rejected(self):
        with pytest.raises(PatternError):
            LinePattern(["A"], [])

    def test_invalid_edge_rejected(self):
        with pytest.raises(PatternError):
            LinePattern(["A", "B"], ["not-an-edge"])

    def test_chain(self):
        p = LinePattern.chain("Patent", "citeBy", 5)
        assert p.length == 5
        assert set(p.vertex_labels) == {"Patent"}
        assert all(e.label == "citeBy" for e in p.edges)

    def test_chain_invalid_length(self):
        with pytest.raises(PatternError):
            LinePattern.chain("A", "e", 0)


class TestAccessors:
    def test_positions_and_slots(self):
        p = LinePattern.parse("A -[x]-> B <-[y]- C")
        assert p.start_label == "A"
        assert p.end_label == "C"
        assert p.label_at(1) == "B"
        assert p.edge_slot(1).label == "x"
        assert p.edge_slot(2).label == "y"
        with pytest.raises(PatternError):
            p.edge_slot(0)
        with pytest.raises(PatternError):
            p.edge_slot(3)

    def test_segment(self):
        p = LinePattern.parse("A -[x]-> B <-[y]- C -[z]-> D")
        seg = p.segment(1, 3)
        assert seg.vertex_labels == ("B", "C", "D")
        assert [e.label for e in seg.edges] == ["y", "z"]

    def test_segment_bounds(self):
        p = LinePattern.parse("A -[x]-> B")
        with pytest.raises(PatternError):
            p.segment(0, 2)
        with pytest.raises(PatternError):
            p.segment(1, 1)


class TestDerived:
    def test_reversed_flips_labels_and_directions(self):
        p = LinePattern.parse("A -[x]-> B <-[y]- C")
        r = p.reversed()
        assert r.vertex_labels == ("C", "B", "A")
        assert r.edges[0] == PatternEdge("y", Direction.FORWARD)
        assert r.edges[1] == PatternEdge("x", Direction.BACKWARD)

    def test_reversed_involution(self):
        p = LinePattern.parse("A -[x]-> B <-[y]- C -[z]-> D")
        assert p.reversed().reversed() == p

    def test_symmetry(self):
        sym = LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        assert sym.is_symmetric()
        asym = LinePattern.parse("Author -[authorBy]-> Paper -[publishAt]-> Venue")
        assert not asym.is_symmetric()

    def test_equality_and_hash(self):
        a = LinePattern.parse("A -[x]-> B")
        b = LinePattern.parse("A -[x]-> B", name="other-name")
        assert a == b  # name is not part of identity
        assert hash(a) == hash(b)
        assert a != LinePattern.parse("A <-[x]- B")


class TestValidateAgainst:
    @pytest.fixture
    def schema(self):
        return GraphSchema(
            edge_types=[("authorBy", "Author", "Paper"), ("publishAt", "Paper", "Venue")]
        )

    def test_valid_pattern(self, schema):
        LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue"
        ).validate_against(schema)

    def test_backward_slot_checks_real_direction(self, schema):
        LinePattern.parse(
            "Venue <-[publishAt]- Paper <-[authorBy]- Author"
        ).validate_against(schema)

    def test_unknown_vertex_label(self, schema):
        with pytest.raises(PatternMismatchError, match="vertex label"):
            LinePattern.parse("Editor -[authorBy]-> Paper").validate_against(schema)

    def test_wrong_edge_direction(self, schema):
        with pytest.raises(PatternMismatchError, match="slot 1"):
            LinePattern.parse("Author <-[authorBy]- Paper").validate_against(schema)


def test_direction_flip():
    assert Direction.FORWARD.flip() is Direction.BACKWARD
    assert Direction.BACKWARD.flip() is Direction.FORWARD
    assert PatternEdge("e").flip() == PatternEdge("e", Direction.BACKWARD)
