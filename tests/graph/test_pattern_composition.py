"""Tests for LinePattern.concat / repeat."""

import pytest

from repro.errors import PatternError
from repro.graph.filters import VertexFilter
from repro.graph.pattern import LinePattern


class TestConcat:
    def test_basic_join(self):
        left = LinePattern.parse("Author -[authorBy]-> Paper")
        right = LinePattern.parse("Paper -[publishAt]-> Venue")
        joined = left.concat(right)
        assert joined == LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue"
        )

    def test_label_mismatch_rejected(self):
        left = LinePattern.parse("Author -[authorBy]-> Paper")
        right = LinePattern.parse("Venue <-[publishAt]- Paper")
        with pytest.raises(PatternError, match="cannot concatenate"):
            left.concat(right)

    def test_filters_carry_over_with_offset(self):
        left = LinePattern.parse("Author{h >= 10} -[authorBy]-> Paper")
        right = LinePattern.parse("Paper -[publishAt]-> Venue{rank <= 3}")
        joined = left.concat(right)
        assert joined.filter_at(0) == VertexFilter("h", "ge", 10)
        assert joined.filter_at(2) == VertexFilter("rank", "le", 3)

    def test_junction_filter_kept(self):
        left = LinePattern.parse("Author -[authorBy]-> Paper{year >= 2010}")
        right = LinePattern.parse("Paper -[publishAt]-> Venue")
        joined = left.concat(right)
        assert joined.filter_at(1) == VertexFilter("year", "ge", 2010)

    def test_conflicting_junction_filters_rejected(self):
        left = LinePattern.parse("Author -[authorBy]-> Paper{year >= 2010}")
        right = LinePattern.parse("Paper{year <= 2000} -[publishAt]-> Venue")
        with pytest.raises(PatternError, match="junction"):
            left.concat(right)

    def test_agreeing_junction_filters_ok(self):
        left = LinePattern.parse("Author -[authorBy]-> Paper{year >= 2010}")
        right = LinePattern.parse("Paper{year >= 2010} -[publishAt]-> Venue")
        joined = left.concat(right)
        assert joined.filter_at(1) == VertexFilter("year", "ge", 2010)

    def test_semantics_match_manual_pattern(self):
        """Extraction through a concatenated pattern equals the hand-built
        equivalent."""
        from repro.aggregates import library
        from repro.baselines.bruteforce import extract_bruteforce
        from tests.conftest import build_scholarly

        graph = build_scholarly()
        joined = LinePattern.parse("Author -[authorBy]-> Paper").concat(
            LinePattern.parse("Paper <-[authorBy]- Author")
        )
        manual = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        a = extract_bruteforce(graph, joined, library.path_count())
        b = extract_bruteforce(graph, manual, library.path_count())
        assert a.graph.equals(b.graph)


class TestRepeat:
    def test_repeat_builds_chain(self):
        hop = LinePattern.parse("Paper -[citeBy]-> Paper")
        assert hop.repeat(3) == LinePattern.chain("Paper", "citeBy", 3)

    def test_repeat_once_is_self(self):
        hop = LinePattern.parse("Paper -[citeBy]-> Paper")
        assert hop.repeat(1) == hop

    def test_repeat_requires_matching_endpoints(self):
        pattern = LinePattern.parse("Author -[authorBy]-> Paper")
        with pytest.raises(PatternError):
            pattern.repeat(2)

    def test_invalid_times(self):
        with pytest.raises(PatternError):
            LinePattern.parse("Paper -[citeBy]-> Paper").repeat(0)
