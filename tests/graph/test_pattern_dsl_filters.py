"""Tests for attribute predicates in the pattern DSL."""

import pytest

from repro.errors import PatternError
from repro.graph.filters import VertexFilter
from repro.graph.pattern import LinePattern


class TestFilterParsing:
    def test_numeric_predicate(self):
        p = LinePattern.parse(
            "Author -[authorBy]-> Paper{year >= 2010} <-[authorBy]- Author"
        )
        assert p.filter_at(1) == VertexFilter("year", "ge", 2010)
        assert p.filter_at(0) is None

    def test_float_value(self):
        p = LinePattern.parse("A{score > 0.5} -[x]-> B")
        assert p.filter_at(0) == VertexFilter("score", "gt", 0.5)

    def test_negative_value(self):
        p = LinePattern.parse("A{delta <= -3} -[x]-> B")
        assert p.filter_at(0) == VertexFilter("delta", "le", -3)

    def test_string_value(self):
        p = LinePattern.parse("A -[x]-> B{country == 'US'}")
        assert p.filter_at(1) == VertexFilter("country", "eq", "US")
        q = LinePattern.parse('A -[x]-> B{country != "DE"}')
        assert q.filter_at(1) == VertexFilter("country", "ne", "DE")

    @pytest.mark.parametrize(
        "op,expected",
        [("==", "eq"), ("!=", "ne"), ("<", "lt"), ("<=", "le"), (">", "gt"), (">=", "ge")],
    )
    def test_all_operators(self, op, expected):
        p = LinePattern.parse(f"A{{v {op} 7}} -[x]-> B")
        assert p.filter_at(0).op == expected

    def test_multiple_positions(self):
        p = LinePattern.parse(
            "A{h > 1} -[x]-> B{y < 2} <-[y]- C{z == 3}"
        )
        assert len(p.filters) == 3

    def test_whitespace_tolerant(self):
        p = LinePattern.parse("A{ h  >=  10 } -[x]-> B")
        assert p.filter_at(0) == VertexFilter("h", "ge", 10)

    def test_wildcard_with_filter(self):
        p = LinePattern.parse("Author -[authorBy]-> *{year > 2000} <-[authorBy]- Author")
        assert p.label_at(1) == "*"
        assert p.filter_at(1) == VertexFilter("year", "gt", 2000)

    def test_malformed_predicate_rejected(self):
        with pytest.raises(PatternError):
            LinePattern.parse("A{h ~ 3} -[x]-> B")


class TestFilterRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "A{h >= 10} -[x]-> B",
            "A -[x]-> B{country == 'US'} <-[y]- C",
            "A{score > 0.5} -[x]-> B{n != -2}",
        ],
    )
    def test_str_parse_roundtrip(self, text):
        pattern = LinePattern.parse(text)
        assert LinePattern.parse(str(pattern)) == pattern

    def test_in_filter_renders_placeholder(self):
        pattern = LinePattern.parse("A -[x]-> B").with_filter(
            0, VertexFilter("k", "in", (1, 2))
        )
        assert "in ..." in str(pattern)


class TestDslFilterSemantics:
    def test_parsed_filter_behaves_like_programmatic(self):
        from repro.aggregates import library
        from repro.baselines.bruteforce import extract_bruteforce
        from tests.conftest import P1, P2, P3, build_scholarly

        graph = build_scholarly()
        graph.add_vertex(P1, "Paper", {"year": 2008})
        graph.add_vertex(P2, "Paper", {"year": 2012})
        graph.add_vertex(P3, "Paper", {"year": 2015})
        parsed = LinePattern.parse(
            "Author -[authorBy]-> Paper{year >= 2010} <-[authorBy]- Author"
        )
        programmatic = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        ).with_filter(1, VertexFilter("year", "ge", 2010))
        assert parsed == programmatic
        a = extract_bruteforce(graph, parsed, library.path_count())
        b = extract_bruteforce(graph, programmatic, library.path_count())
        assert a.graph.equals(b.graph)
