"""Unit tests for repro.graph.schema."""

import pytest

from repro.errors import SchemaError
from repro.graph.schema import EdgeType, GraphSchema


class TestVertexLabels:
    def test_add_and_query(self):
        schema = GraphSchema()
        schema.add_vertex_label("Author")
        assert schema.has_vertex_label("Author")
        assert not schema.has_vertex_label("Paper")
        assert "Author" in schema

    def test_add_is_idempotent(self):
        schema = GraphSchema()
        schema.add_vertex_label("A")
        schema.add_vertex_label("A")
        assert schema.vertex_labels == frozenset({"A"})

    def test_empty_label_rejected(self):
        schema = GraphSchema()
        with pytest.raises(SchemaError):
            schema.add_vertex_label("")

    def test_non_string_label_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema().add_vertex_label(42)

    def test_constructor_labels(self):
        schema = GraphSchema(vertex_labels=["A", "B"])
        assert schema.vertex_labels == frozenset({"A", "B"})


class TestEdgeTypes:
    def test_add_registers_endpoints(self):
        schema = GraphSchema()
        schema.add_edge_type("authorBy", "Author", "Paper")
        assert schema.has_vertex_label("Author")
        assert schema.has_vertex_label("Paper")
        assert schema.has_edge_type("authorBy")
        assert schema.has_edge_type("authorBy", "Author", "Paper")

    def test_endpoint_filters(self):
        schema = GraphSchema()
        schema.add_edge_type("rel", "A", "B")
        schema.add_edge_type("rel", "A", "C")
        assert schema.has_edge_type("rel", src="A")
        assert schema.has_edge_type("rel", dst="C")
        assert not schema.has_edge_type("rel", src="B")
        assert not schema.has_edge_type("rel", "A", "D")

    def test_same_label_multiple_types(self):
        schema = GraphSchema()
        schema.add_edge_type("rel", "A", "B")
        schema.add_edge_type("rel", "B", "C")
        assert len(schema.edge_types_for_label("rel")) == 2

    def test_empty_edge_label_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema().add_edge_type("", "A", "B")

    def test_constructor_edge_types(self):
        schema = GraphSchema(edge_types=[("e", "A", "B")])
        assert schema.has_edge_type("e", "A", "B")

    def test_iteration_is_sorted(self):
        schema = GraphSchema(edge_types=[("z", "A", "B"), ("a", "A", "B")])
        labels = [et.label for et in schema]
        assert labels == sorted(labels)


class TestValidation:
    def test_validate_vertex_ok(self):
        schema = GraphSchema(vertex_labels=["A"])
        schema.validate_vertex("A")  # no raise

    def test_validate_vertex_unknown(self):
        schema = GraphSchema(vertex_labels=["A"])
        with pytest.raises(SchemaError, match="not declared"):
            schema.validate_vertex("B")

    def test_validate_edge_ok(self):
        schema = GraphSchema(edge_types=[("e", "A", "B")])
        schema.validate_edge("e", "A", "B")

    def test_validate_edge_wrong_direction(self):
        schema = GraphSchema(edge_types=[("e", "A", "B")])
        with pytest.raises(SchemaError):
            schema.validate_edge("e", "B", "A")


def test_edge_type_str():
    assert str(EdgeType("e", "A", "B")) == "A -[e]-> B"
