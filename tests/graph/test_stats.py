"""Unit tests for repro.graph.stats."""

import pytest

from repro.graph.pattern import Direction, PatternEdge
from repro.graph.stats import GraphStatistics

from tests.conftest import build_scholarly


@pytest.fixture
def stats():
    return GraphStatistics.collect(build_scholarly())


class TestCollect:
    def test_vertex_counts(self, stats):
        assert stats.vertex_count("Author") == 4
        assert stats.vertex_count("Paper") == 3
        assert stats.vertex_count("Venue") == 2
        assert stats.vertex_count("missing") == 0
        assert stats.total_vertices == 9

    def test_triple_counts(self, stats):
        assert stats.triple_count("Author", "authorBy", "Paper") == 6
        assert stats.triple_count("Paper", "publishAt", "Venue") == 3
        assert stats.triple_count("Paper", "citeBy", "Paper") == 2
        assert stats.triple_count("Paper", "authorBy", "Author") == 0
        assert stats.total_edges == 11


class TestSlotCounts:
    def test_forward_slot(self, stats):
        edge = PatternEdge("authorBy", Direction.FORWARD)
        assert stats.slot_edge_count("Author", edge, "Paper") == 6

    def test_backward_slot(self, stats):
        # Paper <-authorBy- ... read as left=Paper, right=Author:
        # a BACKWARD slot matches right -[e]-> left edges
        edge = PatternEdge("authorBy", Direction.BACKWARD)
        assert stats.slot_edge_count("Paper", edge, "Author") == 6

    def test_mismatched_labels_zero(self, stats):
        edge = PatternEdge("authorBy", Direction.FORWARD)
        assert stats.slot_edge_count("Venue", edge, "Paper") == 0


class TestDegrees:
    def test_left_degree(self, stats):
        edge = PatternEdge("authorBy", Direction.FORWARD)
        assert stats.avg_slot_degree_left("Author", edge, "Paper") == 6 / 4

    def test_right_degree(self, stats):
        edge = PatternEdge("authorBy", Direction.FORWARD)
        assert stats.avg_slot_degree_right("Author", edge, "Paper") == 6 / 3

    def test_zero_population_degree(self, stats):
        edge = PatternEdge("authorBy", Direction.FORWARD)
        assert stats.avg_slot_degree_left("missing", edge, "Paper") == 0.0


class TestWildcardAndUndirectedSlots:
    def test_any_direction_with_wildcard_endpoints(self, stats):
        from repro.graph.pattern import ANY_LABEL

        edge = PatternEdge("authorBy", Direction.ANY)
        # undirected + both-wildcard: every authorBy edge in both orientations
        assert stats.slot_edge_count(ANY_LABEL, edge, ANY_LABEL) == 12

    def test_any_direction_same_labels(self, stats):
        edge = PatternEdge("citeBy", Direction.ANY)
        assert stats.slot_edge_count("Paper", edge, "Paper") == 4

    def test_any_direction_mismatched_labels(self, stats):
        edge = PatternEdge("publishAt", Direction.ANY)
        # Paper->Venue exists; either orientation of (Paper, Venue) finds it
        assert stats.slot_edge_count("Paper", edge, "Venue") == 3
        assert stats.slot_edge_count("Venue", edge, "Paper") == 3
