"""Fixture: a bare ``except:`` clause."""

from __future__ import annotations


def swallow(fn):
    try:
        return fn()
    except:
        return None
