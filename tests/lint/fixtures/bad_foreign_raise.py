"""Fixture: raises a builtin outside the ReproError family."""

from __future__ import annotations


def convert(value):
    if value < 0:
        raise ValueError("negative values are not allowed")
    return value
