"""Fixture: mutates values documented as frozen."""

from __future__ import annotations


def retarget(pattern: "LinePattern", edges):
    pattern.edges = edges
    pattern.filters.update({})
    return pattern
