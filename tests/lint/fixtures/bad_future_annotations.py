"""Fixture: module missing ``from __future__ import annotations``."""


def identity(value):
    return value
