"""Fixture: an aggregate whose operations are impure.

Seeded violations (all ``impure-aggregate``, found by the dataflow
layer):

* ``concat`` mutates one of its inputs instead of building a new value;
* ``merge`` records results on ``self`` (hidden cross-call state);
* ``finalize`` performs I/O.
"""

from __future__ import annotations


class ImpureAggregate:
    def __init__(self):
        self.seen = []

    def initial_edge(self, weight):
        return [weight]

    def concat(self, a, b):
        a.extend(b)
        return a

    def merge(self, a, b):
        self.seen = a
        return a + b

    def finalize(self, value):
        print(value)
        return value
