"""Fixture: one mutable payload object shipped to several receivers.

Seeded violations (all ``message-aliasing``, found by the dataflow
layer):

* the same list sent to two targets (every receiver aliases one
  object);
* a payload mutated after it was sent (the receiver observes the
  mutation);
* a received message forwarded whole to another vertex.
"""

from __future__ import annotations


class AliasingProgram:
    def compute(self, ctx):
        buffer = [ctx.vid]
        ctx.send(ctx.vid + 1, buffer)
        ctx.send(ctx.vid + 2, buffer)
        payload = [1, 2]
        ctx.send(ctx.vid + 3, payload)
        payload.append(3)
        for message in ctx.messages:
            ctx.send(ctx.vid + 4, message)
