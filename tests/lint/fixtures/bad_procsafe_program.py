"""Fixture: a vertex program and aggregate that are NOT process-safe.

Every construct here is a hazard the interprocedural process-safety
analysis (repro.lint.procsafe) must flag: captured unpicklable state
(lambda, local function, generator, lock, open file), module-level
mutable globals reachable from compute (directly and through a helper
function), and reliance on thread identity.
"""

from __future__ import annotations

import threading
from threading import get_ident

from repro.errors import ReproError

_SEEN_VERTICES = set()
_EDGE_CACHE = {}


def _bump_cache(key):
    # hazard: module-level mutable global touched by a compute helper
    _EDGE_CACHE[key] = _EDGE_CACHE.get(key, 0) + 1


def make_unsafe_aggregate():
    from repro.aggregates.base import DistributiveAggregate

    def local_combine(a, b):
        return a + b

    # hazards: local function and lambda passed into an aggregate
    # constructor — neither survives pickling
    return DistributiveAggregate(local_combine, lambda a, b: a + b)


class UnsafeCountingProgram:
    """Captures locks, files, lambdas and generators on ``self``."""

    def __init__(self, path):
        # hazard: thread lock (meaningless in a forked worker)
        self.lock = threading.Lock()
        # hazard: open file handle stored on the instance
        self.sink = open(path, "w")
        # hazard: lambda stored on the instance
        self.scale = lambda value: value * 2
        # hazard: generator object stored on the instance
        self.stream = (i * i for i in range(16))

    def compute(self, ctx):
        if ctx.vertex is None:
            raise ReproError("fixture program needs a vertex")
        # hazard: reads a module-level mutable global from compute
        if ctx.vertex in _SEEN_VERTICES:
            return 0
        # hazard: thread identity does not survive process boundaries
        owner = get_ident()
        self._note(ctx.vertex)
        return owner

    def _note(self, vertex):
        # hazard reached interprocedurally: compute -> _note -> _bump_cache
        _bump_cache(vertex)
