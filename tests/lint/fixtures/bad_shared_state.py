"""Fixture: a vertex program whose compute path mutates shared state.

Seeded violations (all ``shared-state``):

* instance-attribute write in ``compute``;
* mutating method call on a module-global in ``compute``;
* ``peek_state`` call in a helper reachable from ``compute``.
"""

from __future__ import annotations

CACHE = {}


class LeakyVertexProgram:
    def compute(self, ctx):
        self.seen = True
        CACHE.update({ctx.vid: 1})
        self._helper(ctx)

    def _helper(self, ctx):
        ctx.peek_state(0)
