"""Fixture: a vertex program leaking owned mutable state into messages.

Seeded violations (all ``state-escape``, found by the dataflow layer):

* persistent vertex state sent as a message payload (the receiver would
  alias the sender's live state dict);
* a mutable program attribute sent as a payload;
* a received message retained on ``self`` past the superstep.
"""

from __future__ import annotations


class EscapingProgram:
    def __init__(self):
        self.cache = []

    def compute(self, ctx):
        state = ctx.state()
        ctx.send(ctx.vid + 1, state)
        ctx.send(ctx.vid + 2, self.cache)
        for message in ctx.messages:
            self.cache = message
