"""Unit tests for the certified-bounds interval domain
(:mod:`repro.lint.bounds`): interval arithmetic, measured and declared
statistic seeding, the anchor-slot segment decomposition, plan analysis
under both byte models, and plan annotation."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.extractor import GraphExtractor
from repro.core.planner import iter_opt_plan, line_plan
from repro.errors import PlanError
from repro.graph.pattern import LinePattern
from repro.graph.schema import GraphSchema
from repro.lint.bounds import (
    INF,
    BoundsAnalyzer,
    Interval,
    PatternBounds,
    PruneRecord,
    interval_max,
    interval_sum,
    pattern_bounds,
)

from tests.conftest import build_scholarly

COAUTHOR = LinePattern.parse(
    "Author -[authorBy]-> Paper <-[authorBy]- Author", name="coauthor"
)
SAME_VENUE = LinePattern.parse(
    "Author -[authorBy]-> Paper -[publishAt]-> Venue "
    "<-[publishAt]- Paper <-[authorBy]- Author",
    name="same-venue",
)
SINGLE_HOP = LinePattern.parse("Author -[authorBy]-> Paper")


def measured_analyzer(pattern: LinePattern) -> BoundsAnalyzer:
    graph = build_scholarly()
    return BoundsAnalyzer(
        pattern, PatternBounds.from_compact(graph.to_compact(), pattern)
    )


# ----------------------------------------------------------------------
# the interval domain
# ----------------------------------------------------------------------
class TestInterval:
    def test_invalid_interval_raises(self):
        with pytest.raises(PlanError):
            Interval(3.0, 2.0)
        with pytest.raises(PlanError):
            Interval(-1.0, 2.0)

    def test_zero_times_infinity_is_zero(self):
        assert (Interval.zero() * Interval.top()).hi == 0.0
        assert (Interval.top() * Interval.zero()).lo == 0.0

    def test_add_and_mul_are_componentwise(self):
        a = Interval(1.0, 3.0)
        b = Interval(2.0, 5.0)
        assert (a + b) == Interval(3.0, 8.0)
        assert (a * b) == Interval(2.0, 15.0)

    def test_cap_tightens_upper_and_clips_lower(self):
        assert Interval(2.0, 10.0).cap(6.0) == Interval(2.0, 6.0)
        assert Interval(5.0, 10.0).cap(3.0) == Interval(3.0, 3.0)

    def test_scale(self):
        assert Interval(1.0, 2.0).scale(112.0) == Interval(112.0, 224.0)
        assert Interval(0.0, INF).scale(112.0) == Interval(0.0, INF)

    def test_contains_and_bounded(self):
        assert Interval(1.0, 4.0).contains(4.0)
        assert not Interval(1.0, 4.0).contains(4.5)
        assert Interval(1.0, 4.0).bounded
        assert not Interval.top().bounded

    def test_describe(self):
        assert Interval(1.0, 4.0).describe() == "[1, 4]"
        assert Interval.top().describe() == "[0, inf]"

    def test_interval_max_and_sum(self):
        a = Interval(1.0, 3.0)
        b = Interval(2.0, 2.0)
        assert interval_max(a, b) == Interval(2.0, 3.0)
        assert interval_sum([a, b, Interval.zero()]) == Interval(3.0, 5.0)


# ----------------------------------------------------------------------
# measured seeding (exact statistics from a compact snapshot)
# ----------------------------------------------------------------------
class TestMeasuredBounds:
    def test_slot_statistics_are_exact_points(self):
        bounds = measured_analyzer(COAUTHOR).bounds
        assert bounds.source == "measured"
        slot1 = bounds.slots[1]
        # six authorBy edges; authors write 1-2 papers, papers have 2 authors
        assert slot1.count == Interval.point(6)
        assert slot1.fanout == Interval(1.0, 2.0)
        assert slot1.fanin == Interval(2.0, 2.0)
        assert bounds.populations[0] == Interval.point(4)  # authors
        assert bounds.populations[1] == Interval.point(3)  # papers

    def test_segment_paths_exact_on_scholarly(self):
        analyzer = measured_analyzer(COAUTHOR)
        # 12 coauthor walks on the scholarly graph (see COAUTHOR_EXPECTED)
        assert analyzer.segment_paths(0, 2) == Interval(12.0, 12.0)
        assert analyzer.segment_paths(0, 1) == Interval(6.0, 6.0)

    def test_segment_paths_rejects_bad_segments(self):
        analyzer = measured_analyzer(COAUTHOR)
        with pytest.raises(PlanError):
            analyzer.segment_paths(1, 1)
        with pytest.raises(PlanError):
            analyzer.segment_paths(0, 3)

    def test_partial_mode_caps_by_populations(self):
        analyzer = measured_analyzer(COAUTHOR)
        basic = analyzer.node_paths(0, 1, 2, mode="basic")
        partial = analyzer.node_paths(0, 1, 2, mode="partial")
        assert partial.hi <= basic.hi
        # merging can collapse counts, so the lower end weakens to 0/1
        assert partial.lo <= basic.lo

    def test_unknown_mode_raises(self):
        analyzer = measured_analyzer(COAUTHOR)
        with pytest.raises(PlanError):
            analyzer.node_paths(0, 1, 2, mode="mystery")

    def test_result_edges_contains_observed(self):
        graph = build_scholarly()
        analyzer = BoundsAnalyzer(
            COAUTHOR, PatternBounds.from_compact(graph.to_compact(), COAUTHOR)
        )
        result = GraphExtractor(graph).extract(COAUTHOR)
        edges = analyzer.result_edges()
        assert edges.contains(result.graph.num_edges())
        # endpoint-pair cap: at most |Author|^2 = 16 distinct edges
        assert edges.hi <= 16.0

    def test_pattern_length_mismatch_raises(self):
        graph = build_scholarly()
        venue_bounds = PatternBounds.from_compact(
            graph.to_compact(), SAME_VENUE
        )
        with pytest.raises(PlanError):
            BoundsAnalyzer(COAUTHOR, venue_bounds)


# ----------------------------------------------------------------------
# declared seeding (schema-level upper bounds)
# ----------------------------------------------------------------------
class TestDeclaredBounds:
    def declared_schema(self) -> GraphSchema:
        schema = GraphSchema(
            vertex_labels=["Author", "Paper", "Venue"],
            edge_types=[
                ("authorBy", "Author", "Paper"),
                ("publishAt", "Paper", "Venue"),
            ],
        )
        schema.declare_label_cardinality("Author", 4)
        schema.declare_label_cardinality("Paper", 3)
        schema.declare_edge_bounds(
            "authorBy",
            "Author",
            "Paper",
            max_count=6,
            max_out_degree=2,
            max_in_degree=2,
        )
        return schema

    def test_declared_slots_have_zero_lower_ends(self):
        bounds = PatternBounds.from_schema(self.declared_schema(), COAUTHOR)
        assert bounds.source == "declared"
        slot1 = bounds.slots[1]
        assert slot1.count == Interval(0.0, 6.0)
        assert slot1.fanout == Interval(0.0, 2.0)
        assert slot1.fanin == Interval(0.0, 2.0)
        # the backward slot swaps in/out degrees
        assert bounds.slots[2].fanout == Interval(0.0, 2.0)
        assert bounds.populations[0] == Interval(0.0, 4.0)

    def test_declared_segment_bound_contains_measured_truth(self):
        schema = self.declared_schema()
        analyzer = BoundsAnalyzer(
            COAUTHOR, PatternBounds.from_schema(schema, COAUTHOR)
        )
        interval = analyzer.segment_paths(0, 2)
        assert interval.lo == 0.0
        assert interval.contains(12.0)  # the scholarly graph's truth

    def test_undeclared_quantities_are_top(self):
        schema = GraphSchema(
            edge_types=[("authorBy", "Author", "Paper")]
        )
        bounds = PatternBounds.from_schema(schema, SINGLE_HOP)
        assert bounds.slots[1].count == Interval.top()
        assert bounds.populations[0] == Interval.top()
        analyzer = BoundsAnalyzer(SINGLE_HOP, bounds)
        assert not analyzer.segment_paths(0, 1).bounded

    def test_declared_peak_bytes_can_be_unbounded(self):
        schema = GraphSchema(edge_types=[("authorBy", "Author", "Paper")])
        analyzer = BoundsAnalyzer(
            SINGLE_HOP, PatternBounds.from_schema(schema, SINGLE_HOP)
        )
        certified = analyzer.analyze(None, backend="bsp")
        assert certified.peak_bytes.hi == INF
        assert not certified.fits(10**12)


# ----------------------------------------------------------------------
# the façade
# ----------------------------------------------------------------------
class TestPatternBoundsFacade:
    def test_measured_needs_graph(self):
        with pytest.raises(PlanError):
            pattern_bounds(COAUTHOR, source="measured")

    def test_declared_needs_schema_or_graph(self):
        with pytest.raises(PlanError):
            pattern_bounds(COAUTHOR, source="declared")
        graph = build_scholarly()
        bounds = pattern_bounds(COAUTHOR, graph=graph, source="declared")
        assert bounds.source == "declared"

    def test_unknown_source_raises(self):
        with pytest.raises(PlanError):
            pattern_bounds(
                COAUTHOR, graph=build_scholarly(), source="estimated"
            )


# ----------------------------------------------------------------------
# plan analysis (both byte models) and annotation
# ----------------------------------------------------------------------
class TestPlanAnalysis:
    def test_unknown_backend_raises(self):
        analyzer = measured_analyzer(SAME_VENUE)
        with pytest.raises(PlanError):
            analyzer.analyze(iter_opt_plan(SAME_VENUE), backend="gpu")

    def test_analyze_covers_every_plan_node(self):
        analyzer = measured_analyzer(SAME_VENUE)
        plan = iter_opt_plan(SAME_VENUE)
        for backend in ("bsp", "vectorized"):
            certified = analyzer.analyze(plan, backend=backend)
            assert certified.backend == backend
            assert certified.source == "measured"
            assert {n.node_id for n in certified.nodes} == {
                n.node_id for n in plan.nodes()
            }
            for node in certified.nodes:
                assert node.paths.lo <= node.paths.hi
            assert certified.peak_bytes.lo <= certified.peak_bytes.hi
            assert certified.peak_bytes.lo > 0.0

    def test_mode_defaults_per_backend(self):
        analyzer = measured_analyzer(SAME_VENUE)
        plan = iter_opt_plan(SAME_VENUE)
        assert analyzer.analyze(plan, backend="bsp").mode == "basic"
        assert (
            analyzer.analyze(plan, backend="vectorized").mode == "partial"
        )

    def test_planless_direct_scan_gets_pseudo_node(self):
        analyzer = measured_analyzer(SINGLE_HOP)
        certified = analyzer.analyze(None, backend="bsp")
        assert certified.strategy == "direct"
        assert len(certified.nodes) == 1
        assert certified.nodes[0].segment == (0, 0, 1)
        assert certified.nodes[0].paths == Interval(6.0, 6.0)

    def test_line_vs_balanced_peaks_differ(self):
        analyzer = measured_analyzer(SAME_VENUE)
        balanced = analyzer.analyze(iter_opt_plan(SAME_VENUE), backend="bsp")
        line = analyzer.analyze(line_plan(SAME_VENUE), backend="bsp")
        # the models must at least distinguish the two schedule shapes
        assert balanced.peak_bytes != line.peak_bytes

    def test_node_bound_lookup(self):
        analyzer = measured_analyzer(SAME_VENUE)
        certified = analyzer.analyze(iter_opt_plan(SAME_VENUE))
        for node in certified.nodes:
            assert certified.node_bound(node.node_id) == node.paths.hi
        with pytest.raises(PlanError):
            certified.node_bound(999)

    def test_fits(self):
        analyzer = measured_analyzer(SAME_VENUE)
        certified = analyzer.analyze(iter_opt_plan(SAME_VENUE))
        assert certified.fits(certified.peak_bytes.hi)
        assert not certified.fits(certified.peak_bytes.hi - 1.0)

    def test_as_dict_round_trips_through_json(self):
        analyzer = measured_analyzer(SAME_VENUE)
        payload = analyzer.analyze(iter_opt_plan(SAME_VENUE)).as_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["backend"] == "bsp"
        assert decoded["source"] == "measured"
        assert len(decoded["nodes"]) == SAME_VENUE.length - 1
        for node in decoded["nodes"]:
            lo, hi = node["paths"]
            assert 0.0 <= lo <= hi

    def test_annotate_plan_attaches_any_mode_bounds(self):
        analyzer = measured_analyzer(SAME_VENUE)
        plan = iter_opt_plan(SAME_VENUE)
        returned = analyzer.annotate_plan(plan)
        assert returned is plan.node_bounds
        assert plan.bounds_source == "measured"
        assert set(plan.node_bounds) == {n.node_id for n in plan.nodes()}
        for node in plan.nodes():
            expected = analyzer.node_paths(node.i, node.k, node.j)
            assert plan.node_bounds[node.node_id] == expected.hi
        total_hi = sum(
            analyzer.node_paths(n.i, n.k, n.j).hi for n in plan.nodes()
        )
        assert math.isclose(plan.certified_cost.hi, total_hi)

    def test_prune_record_describe(self):
        record = PruneRecord(
            segment=(0, 3),
            pivot=2,
            incumbent_pivot=1,
            certified_lower=40.0,
            incumbent_upper=21.0,
        )
        text = record.describe()
        assert "pruned pivot 2" in text
        assert "40" in text and "21" in text


# ----------------------------------------------------------------------
# end-to-end containment on the scholarly graph
# ----------------------------------------------------------------------
class TestContainment:
    @pytest.mark.parametrize("backend", ["bsp", "vectorized"])
    def test_observed_counters_stay_inside_bounds(self, backend):
        graph = build_scholarly()
        analyzer = BoundsAnalyzer(
            SAME_VENUE,
            PatternBounds.from_compact(graph.to_compact(), SAME_VENUE),
        )
        extractor = GraphExtractor(graph, backend=backend)
        plan = extractor.plan(SAME_VENUE)
        analyzer.annotate_plan(plan)
        result = extractor.extract(SAME_VENUE, plan=plan)
        assert result.drift is not None
        assert result.drift.containment_violations() == []
        checked = [r for r in result.drift.records if r.bound is not None]
        assert checked, "bounds were annotated but never checked"
        for record in checked:
            assert record.contained is True
            assert record.observed_paths <= record.bound
