"""Property-based soundness tests for the certified-bounds analyzer:
on random graphs, for every plan strategy and both backends, certified
intervals must contain the observed ``node_paths`` counters, result
edge counts and full-pattern path totals — with zero containment
violations.  A failure here is a soundness bug in
:mod:`repro.lint.bounds` (the extractor raises
:class:`~repro.errors.BoundsViolationError` loudly by design)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.core.extractor import GraphExtractor
from repro.core.planner import STRATEGIES, make_plan
from repro.lint.bounds import BoundsAnalyzer, PatternBounds

from tests.test_properties import graphs, patterns

BACKENDS = ("bsp", "vectorized")


def measured(graph, pattern) -> BoundsAnalyzer:
    return BoundsAnalyzer(
        pattern, PatternBounds.from_compact(graph.to_compact(), pattern)
    )


class TestCertifiedContainment:
    @settings(max_examples=20, deadline=None)
    @given(graph=graphs(), pattern=patterns())
    def test_all_strategies_and_backends_stay_contained(
        self, graph, pattern
    ):
        """The soundness gate: observed node_paths:<id> counters never
        exceed their certified bounds, on any strategy × backend."""
        analyzer = measured(graph, pattern)
        for strategy in STRATEGIES:
            plan = make_plan(
                pattern, strategy=strategy, graph=graph, bounds=analyzer
            )
            for backend in BACKENDS:
                # a containment miss raises BoundsViolationError here
                result = GraphExtractor(
                    graph, backend=backend, verify=False
                ).extract(pattern, plan=plan)
                assert result.drift is not None
                assert result.drift.containment_violations() == []
                checked = [
                    r for r in result.drift.records if r.bound is not None
                ]
                assert len(checked) == plan.num_nodes
                assert analyzer.result_edges().contains(
                    result.graph.num_edges()
                )

    @settings(max_examples=30, deadline=None)
    @given(graph=graphs(), pattern=patterns())
    def test_full_segment_interval_contains_true_path_count(
        self, graph, pattern
    ):
        """The anchor-slot decomposition vs ground truth: the brute-force
        total number of full-pattern walks lies inside the certified
        segment interval [0, l]."""
        analyzer = measured(graph, pattern)
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        total_paths = sum(oracle.graph.edges.values())
        assert analyzer.segment_paths(0, pattern.length).contains(
            total_paths
        )

    @settings(max_examples=30, deadline=None)
    @given(graph=graphs(), pattern=patterns())
    def test_partial_mode_never_exceeds_any_mode(self, graph, pattern):
        """Mode monotonicity: the partial-mode cap only ever tightens the
        mode-independent bound."""
        analyzer = measured(graph, pattern)
        length = pattern.length
        for i in range(length):
            for j in range(i + 1, length + 1):
                for k in range(i + 1, j):
                    any_mode = analyzer.node_paths(i, k, j, mode="any")
                    partial = analyzer.node_paths(i, k, j, mode="partial")
                    assert partial.hi <= any_mode.hi
                    assert partial.lo <= any_mode.lo or partial.lo <= 1.0


class TestWorkloadCatalogContainment:
    def test_check_bounds_is_clean_across_the_catalog(self):
        """``repro.cli check --bounds --all-workloads`` is the CI
        soundness gate: every workload, both backends, zero violations
        (exit 0)."""
        from repro.cli import main

        assert (
            main(
                [
                    "check",
                    "--bounds",
                    "--all-workloads",
                    "--scale",
                    "0.05",
                    "--format",
                    "json",
                    "--output",
                    "/dev/null",
                ]
            )
            == 0
        )
