"""Exit-code consistency of ``python -m repro.cli check`` across its
three surfaces (workload typing, ``--bounds`` certification, source-mode
process safety): :data:`repro.cli.EXIT_OK` for clean runs,
:data:`~repro.cli.EXIT_FINDINGS` for gating findings (uniformly governed
by ``--fail-on``), :data:`~repro.cli.EXIT_INTERNAL_ERROR` for checker
failures — and the SARIF ``automationDetails.id`` each surface stamps."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import (
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    EXIT_OK,
    lint_main,
    main,
)
from repro.lint.reporters import SARIF_CATEGORIES, sarif_category

FIXTURES = Path(__file__).parent / "fixtures"
PROCSAFE_FIXTURE = str(FIXTURES / "bad_procsafe_program.py")


class TestWorkloadModeExitCodes:
    def test_clean_workload_exits_ok(self, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            [
                "check",
                "--workload",
                "dblp-SP1",
                "--scale",
                "0.05",
                "--format",
                "json",
                "--output",
                str(out),
            ]
        )
        assert code == EXIT_OK
        assert json.loads(out.read_text())["findings"] == []

    def test_budget_warning_gates_by_fail_on(self, tmp_path):
        base = [
            "check",
            "--bounds",
            "--workload",
            "dblp-SP1",
            "--scale",
            "0.05",
            "--budget",
            "1",  # 1 byte: no backend can certify a fit
            "--format",
            "json",
            "--output",
            str(tmp_path / "report.json"),
        ]
        # default --fail-on warning: the plan-bounds-budget WARNING gates
        assert main(base) == EXIT_FINDINGS
        assert main(base + ["--fail-on", "error"]) == EXIT_OK
        assert main(base + ["--fail-on", "never"]) == EXIT_OK
        payload = json.loads((tmp_path / "report.json").read_text())
        assert [f["rule"] for f in payload["findings"]] == [
            "plan-bounds-budget"
        ]

    def test_unknown_workload_is_internal_error(self, capsys):
        code = main(["check", "--workload", "no-such-workload"])
        assert code == EXIT_INTERNAL_ERROR
        assert "error:" in capsys.readouterr().err

    def test_bounds_without_workload_is_internal_error(self, capsys):
        code = main(["check", "--bounds"])
        assert code == EXIT_INTERNAL_ERROR
        assert "--bounds needs a workload" in capsys.readouterr().err


class TestSourceModeExitCodes:
    def test_findings_gate_by_fail_on(self, tmp_path):
        out = tmp_path / "report.json"
        base = [
            "check",
            "--format",
            "json",
            "--output",
            str(out),
            PROCSAFE_FIXTURE,
        ]
        assert main(base) == EXIT_FINDINGS
        assert main(base + ["--fail-on", "never"]) == EXIT_OK
        payload = json.loads(out.read_text())
        assert payload["findings"], "fixture should produce findings"
        assert all(
            f["rule"].startswith("procsafe-") for f in payload["findings"]
        )

    def test_clean_source_exits_ok(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text(
            '"""Nothing process-unsafe here."""\n'
            "from __future__ import annotations\n\n\n"
            "def add(a: int, b: int) -> int:\n"
            "    return a + b\n"
        )
        assert main(["check", str(clean)]) == EXIT_OK


class TestSarifCategories:
    def sarif_automation_id(self, tmp_path, argv) -> str:
        out = tmp_path / "report.sarif"
        code = main(argv + ["--format", "sarif", "--output", str(out)])
        assert code in (EXIT_OK, EXIT_FINDINGS)
        payload = json.loads(out.read_text())
        return payload["runs"][0]["automationDetails"]["id"]

    def test_check_surface(self, tmp_path):
        assert (
            self.sarif_automation_id(
                tmp_path,
                ["check", "--workload", "dblp-SP1", "--scale", "0.05"],
            )
            == "repro-check/"
        )

    def test_bounds_surface(self, tmp_path):
        assert (
            self.sarif_automation_id(
                tmp_path,
                [
                    "check",
                    "--bounds",
                    "--workload",
                    "dblp-SP1",
                    "--scale",
                    "0.05",
                ],
            )
            == "repro-bounds/"
        )

    def test_lint_surface(self, tmp_path):
        out = tmp_path / "lint.sarif"
        errors_py = Path(__file__).resolve().parents[2] / "src/repro/errors.py"
        code = lint_main(
            ["--format", "sarif", "--output", str(out), str(errors_py)]
        )
        assert code == EXIT_OK
        payload = json.loads(out.read_text())
        assert payload["runs"][0]["automationDetails"]["id"] == "repro-lint/"

    def test_category_helper_is_the_single_source_of_truth(self):
        assert sarif_category("bounds") == SARIF_CATEGORIES["bounds"]
        for surface in ("lint", "check", "bounds", "sanitize"):
            assert sarif_category(surface) == SARIF_CATEGORIES[surface]
        try:
            sarif_category("mystery")
        except ValueError as exc:
            assert "unknown SARIF surface" in str(exc)
        else:  # pragma: no cover - the assertion above must fire
            raise AssertionError("unknown surface must raise ValueError")
