"""End-to-end tests of ``python -m repro.cli lint`` (the acceptance
criterion: exit 0 on the shipped tree, exit 1 with file:line findings on
the fixture tree)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=120,
    )


def test_shipped_tree_is_clean():
    proc = run_cli("src/repro")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_fixture_tree_fails_with_locations():
    proc = run_cli(str(FIXTURES))
    assert proc.returncode == 1
    out = proc.stdout
    # one seeded violation class per fixture file, each with file:line
    assert "bad_shared_state.py:17" in out       # self.seen write
    assert "bad_foreign_raise.py:8" in out       # raise ValueError
    assert "bad_bare_except.py:9" in out         # bare except
    assert "bad_frozen_mutation.py:7" in out     # frozen attribute write
    assert "bad_future_annotations.py:1" in out  # missing future import
    assert "bad_state_escape.py:20" in out       # ctx.state() sent as payload
    assert "bad_message_aliasing.py:19" in out   # one list sent twice
    assert "bad_impure_aggregate.py:22" in out   # concat mutates its input
    for rule in (
        "shared-state",
        "foreign-raise",
        "bare-except",
        "frozen-mutation",
        "future-annotations",
        "state-escape",
        "message-aliasing",
        "impure-aggregate",
    ):
        assert rule in out


def test_json_format():
    proc = run_cli("--format", "json", str(FIXTURES))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["files_scanned"] == 9
    assert payload["errors"] >= 7
    assert all("path" in f and "line" in f for f in payload["findings"])


def test_fail_on_never_exits_zero():
    proc = run_cli("--fail-on", "never", str(FIXTURES))
    assert proc.returncode == 0
    assert "finding(s)" in proc.stdout  # findings still reported


def test_sarif_format():
    proc = run_cli("--format", "sarif", str(FIXTURES))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["results"]
    assert all("ruleId" in result for result in run["results"])


def test_github_format():
    proc = run_cli("--format", "github", str(FIXTURES))
    assert proc.returncode == 1
    assert "::error file=" in proc.stdout


def test_output_file(tmp_path):
    out = tmp_path / "report.json"
    proc = run_cli("--format", "json", "--output", str(out), str(FIXTURES))
    assert proc.returncode == 1
    payload = json.loads(out.read_text())
    assert payload["files_scanned"] == 9


def test_rule_selection():
    proc = run_cli("--rules", "bare-except", str(FIXTURES))
    assert proc.returncode == 1
    assert "bare-except" in proc.stdout
    assert "foreign-raise" not in proc.stdout


def test_unknown_rule_is_an_error():
    proc = run_cli("--rules", "no-such-rule", str(FIXTURES))
    assert proc.returncode == 2
    assert "unknown lint rule" in proc.stderr


def test_default_paths_lint_the_package():
    proc = run_cli()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_lint_main_entry_point():
    """The ``repro-lint`` console script wraps the same command."""
    from repro.cli import lint_main

    assert lint_main(["src/repro"]) == 0
