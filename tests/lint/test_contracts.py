"""AggregateContractChecker, the values_close comparator, the runtime
vertex-program verifier and the verify-flag wiring through
GraphExtractor and the BSP engines."""

from __future__ import annotations

import math

import pytest

from repro.aggregates import library
from repro.aggregates.base import (
    OP_ADD,
    OP_MAX,
    OP_MIN,
    OP_MUL,
    AggregationKind,
    DistributiveAggregate,
)
from repro.aggregates.bounded import BoundedKShortest, BoundedTopK
from repro.aggregates.classify import check_distributive_pair, values_close
from repro.core.extractor import GraphExtractor
from repro.engine.bsp import BSPEngine
from repro.engine.parallel import ThreadedBSPEngine
from repro.errors import AggregationError, EngineError, PlanError
from repro.graph.pattern import LinePattern
from repro.lint import AggregateContractChecker, verify_vertex_program

from tests.conftest import build_scholarly
from tests.lint.fixtures.bad_shared_state import LeakyVertexProgram


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


@pytest.fixture
def checker():
    return AggregateContractChecker()


# ----------------------------------------------------------------------
# values_close (satellite: unified tolerant comparator)
# ----------------------------------------------------------------------
class TestValuesClose:
    def test_floats_tolerant(self):
        assert values_close(0.1 + 0.2, 0.3)
        assert not values_close(0.3, 0.31)

    def test_nans_compare_equal(self):
        assert values_close(float("nan"), float("nan"))
        assert not values_close(float("nan"), 0.0)
        assert not values_close(0.0, float("nan"))

    def test_infinities_exact(self):
        inf = float("inf")
        assert values_close(inf, inf)
        assert values_close(-inf, -inf)
        assert not values_close(inf, -inf)
        assert not values_close(inf, 1e308)

    def test_bools_exact(self):
        assert values_close(True, True)
        assert not values_close(True, False)
        # bool is not "close to" a float of the same magnitude
        assert not values_close(True, 0.9999999999)

    def test_tuples_elementwise(self):
        assert values_close((1.0, float("nan")), (1.0 + 1e-15, float("nan")))
        assert not values_close((1.0, 2.0), (1.0, 3.0))
        assert not values_close((1.0,), (1.0, 2.0))
        assert values_close([1.0, 2.0], (1.0, 2.0))  # list vs tuple

    def test_fallback_equality(self):
        assert values_close("a", "a")
        assert not values_close("a", "b")

    def test_regression_min_plus_inf_identity(self):
        """add over min with the inf identity: inf + w == inf must hold
        under the comparator (exact-infinity semantics, no isclose blowup)."""
        assert check_distributive_pair(OP_ADD, OP_MIN)
        assert values_close(OP_ADD(float("inf"), 5.0), float("inf"))

    def test_regression_both_sides_nan_is_satisfied(self):
        """When both sides of the law collapse to nan, the identity holds;
        the old isclose-based comparator reported nan != nan and failed."""
        from repro.aggregates.base import BinaryOp

        nan_op = BinaryOp("nan", lambda a, b: float("nan"), 0.0)
        assert check_distributive_pair(nan_op, OP_ADD)


# ----------------------------------------------------------------------
# AggregateContractChecker
# ----------------------------------------------------------------------
class TestAggregateContracts:
    @pytest.mark.parametrize(
        "factory",
        [
            library.path_count,
            library.weighted_path_count,
            library.exists_path,
            library.max_min,
            library.min_max,
            library.add_max,
            library.sum_min,
            library.avg_path_value,
            library.std_path_value,
            library.median_path_value,
            library.count_distinct_path_values,
            lambda: library.top_k_path_values(3),
            lambda: BoundedTopK(3),
            lambda: BoundedKShortest(3),
        ],
    )
    def test_library_aggregates_pass(self, checker, factory):
        assert checker.check(factory()) == []

    def test_add_over_add_rejected(self, checker):
        bogus = DistributiveAggregate(OP_ADD, OP_ADD, name="bogus")
        problems = checker.check(bogus)
        assert any("does not distribute" in p for p in problems)
        with pytest.raises(AggregationError, match="contract violation"):
            checker.verify(bogus)

    def test_lying_concat_caught_on_value_domain(self, checker):
        """Declared ops pass, but the actual concat implementation lies —
        the law check runs on concat/merge, not just the declared pair."""

        class Lying(DistributiveAggregate):
            def concat(self, left, right):
                return left * right + 0.5

        lying = Lying(OP_MUL, OP_ADD, edge_value=lambda w: 1.0, name="lying")
        problems = checker.check(lying)
        assert any("Theorem 3" in p for p in problems)

    def test_wrong_kind_declaration_rejected(self, checker):
        class MisKinded(DistributiveAggregate):
            kind = AggregationKind.HOLISTIC

        problems = checker.check(MisKinded(OP_MUL, OP_ADD, name="bad-kind"))
        assert any("must declare kind" in p for p in problems)

    def test_non_commutative_merge_rejected(self, checker):
        from repro.aggregates.base import BinaryOp

        first = BinaryOp("first", lambda a, b: a, 0.0)
        sneaky = DistributiveAggregate(OP_MUL, first, name="sneaky")
        problems = checker.check(sneaky)
        assert problems  # either identity or commutativity fails

    def test_algebraic_components_checked_recursively(self, checker):
        bad_component = DistributiveAggregate(OP_ADD, OP_ADD, name="inner")
        from repro.aggregates.base import AlgebraicAggregate

        bad = AlgebraicAggregate(
            [bad_component], finalizer=lambda t: t[0], name="outer"
        )
        problems = checker.check(bad)
        assert any("component 0" in p for p in problems)

    def test_domain_restricted_aggregate_skips_bad_weights(self):
        """BoundedTopK rejects negative weights via AggregationError; the
        checker must skip those samples, not crash or fail the aggregate."""
        checker = AggregateContractChecker(
            weight_samples=(-5.0, -1.0, 1.0, 2.0, 3.0)
        )
        assert checker.check(BoundedTopK(2)) == []

    def test_exists_path_law_runs_on_booleans(self, checker):
        """exists_path's OP_OR is only commutative on booleans — the value
        domain must be built through initial_edge, not raw floats."""
        assert checker.check(library.exists_path()) == []

    def test_verify_memoizes_instances(self, checker):
        aggregate = library.path_count()
        checker.verify(aggregate)
        assert getattr(aggregate, "_contract_verified") is True
        checker.verify(aggregate)  # second call is a no-op

    def test_empty_domain_reported(self, checker):
        class Rejecting(DistributiveAggregate):
            def initial_edge(self, weight):
                raise AggregationError("never admissible")

        problems = checker.check(Rejecting(OP_MUL, OP_ADD, name="never"))
        assert any("no weight sample is admissible" in p for p in problems)


# ----------------------------------------------------------------------
# verify_vertex_program + engine wiring
# ----------------------------------------------------------------------
class TestVertexProgramVerification:
    def test_leaky_program_rejected(self):
        with pytest.raises(EngineError, match="isolation contract"):
            verify_vertex_program(LeakyVertexProgram())

    def test_accepts_instance_or_class(self):
        with pytest.raises(EngineError):
            verify_vertex_program(LeakyVertexProgram)

    def test_real_programs_pass(self, graph, coauthor):
        from repro.core.evaluator import PathConcatenationProgram
        from repro.core.planner import make_plan

        plan = make_plan(coauthor, strategy="line")
        program = PathConcatenationProgram(
            graph, coauthor, plan, library.path_count()
        )
        verify_vertex_program(program)

    def test_engine_verify_flag(self, graph):
        for engine_cls in (BSPEngine, ThreadedBSPEngine):
            engine = engine_cls(list(graph.vertices()), num_workers=2)
            with pytest.raises(EngineError, match="isolation contract"):
                engine.run(LeakyVertexProgram(), verify=True)

    def test_engine_without_verify_does_not_parse_source(self, graph):
        """verify=False (the default) must not reject; the program then
        fails at its own runtime pace — engines stay permissive by default."""
        engine = BSPEngine(list(graph.vertices()), num_workers=1)
        program = LeakyVertexProgram()
        # LeakyVertexProgram has no num_supersteps: it is not runnable, but
        # the verify gate must not be what stops it
        with pytest.raises(Exception) as excinfo:
            engine.run(program)
        assert "isolation contract" not in str(excinfo.value)


# ----------------------------------------------------------------------
# GraphExtractor verify wiring
# ----------------------------------------------------------------------
class TestExtractorVerifyWiring:
    def test_default_verifies_and_passes(self, graph, coauthor):
        result = GraphExtractor(graph).extract(coauthor, library.path_count())
        assert result.graph.num_edges() > 0

    def test_bogus_aggregate_rejected_before_running(self, graph, coauthor):
        bogus = DistributiveAggregate(OP_ADD, OP_ADD, name="bogus")
        with pytest.raises(AggregationError):
            GraphExtractor(graph).extract(coauthor, bogus)

    def test_tampered_plan_rejected(self, graph, coauthor):
        extractor = GraphExtractor(graph)
        plan = extractor.plan(coauthor)
        plan.root.k = plan.root.j
        with pytest.raises(PlanError, match="pivot"):
            extractor.extract(coauthor, library.path_count(), plan=plan)

    def test_verify_false_skips_plan_check(self, graph, coauthor):
        """With verify off, the tampered plan reaches the engine and the
        corruption is silent — which is exactly why verify defaults on."""
        extractor = GraphExtractor(graph, verify=False)
        plan = extractor.plan(coauthor)
        plan.root.k = plan.root.j
        try:
            extractor.extract(coauthor, library.path_count(), plan=plan)
        except PlanError:
            pytest.fail("plan verification ran despite verify=False")
        except Exception:
            pass  # downstream failures are fine; the verifier must not run

    def test_per_call_override(self, graph, coauthor):
        extractor = GraphExtractor(graph, verify=False)
        plan = extractor.plan(coauthor)
        plan.root.k = plan.root.j
        with pytest.raises(PlanError):
            extractor.extract(
                coauthor, library.path_count(), plan=plan, verify=True
            )

    def test_extract_many_verifies(self, graph, coauthor):
        bogus = DistributiveAggregate(OP_ADD, OP_ADD, name="bogus")
        with pytest.raises(AggregationError):
            GraphExtractor(graph).extract_many([coauthor], bogus)

    def test_extract_many_clean(self, graph, coauthor):
        results = GraphExtractor(graph).extract_many(
            [coauthor], library.path_count()
        )
        assert len(results) == 1
