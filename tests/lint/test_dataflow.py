"""Unit tests for the dataflow analysis layer (:mod:`repro.lint.dataflow`):
CFG construction, reaching definitions, origin inference, and the three
dataflow rules on seeded sources — plus the precision guarantee that the
shipped evaluator stays clean.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.lint.astutil import ModuleSource
from repro.lint.dataflow import (
    CFG,
    AggregatePurityRule,
    MessageAliasingRule,
    MethodModel,
    Origin,
    ReachingDefinitions,
    StateEscapeRule,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _fn(source: str) -> ast.FunctionDef:
    module = ast.parse(textwrap.dedent(source))
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in source")


def _module(source: str, path: str = "mod.py") -> ModuleSource:
    return ModuleSource.from_source(textwrap.dedent(source), path=path)


def _findings(rule, source: str):
    return list(rule.check(_module(source)))


def _method_model(source: str, method: str = "compute") -> MethodModel:
    module = ast.parse(textwrap.dedent(source))
    cls = next(n for n in module.body if isinstance(n, ast.ClassDef))
    fn = next(
        n
        for n in cls.body
        if isinstance(n, ast.FunctionDef) and n.name == method
    )
    return MethodModel(fn)


# ----------------------------------------------------------------------
# CFG
# ----------------------------------------------------------------------
class TestCFG:
    def test_straight_line_is_one_block(self):
        cfg = CFG(_fn("def f():\n    a = 1\n    b = 2\n    return b"))
        stmts = list(cfg.statements())
        assert len(stmts) == 3

    def test_if_branches_rejoin(self):
        cfg = CFG(
            _fn(
                """
                def f(x):
                    if x:
                        a = 1
                    else:
                        a = 2
                    return a
                """
            )
        )
        ret = next(
            s for s in cfg.statements() if isinstance(s, ast.Return)
        )
        preds = cfg.predecessors()[cfg.block_of[ret]]
        assert len(preds) == 2

    def test_loop_back_edge_reaches_own_statement(self):
        fn = _fn(
            """
            def f(items, ctx):
                for item in items:
                    ctx.send(0, item)
            """
        )
        cfg = CFG(fn)
        send = fn.body[0].body[0]
        # via the loop back edge the send statement reaches itself
        assert send in cfg.reachable_from(send)

    def test_no_back_edge_without_loop(self):
        fn = _fn(
            """
            def f(ctx):
                ctx.send(0, 1)
                ctx.send(0, 2)
            """
        )
        cfg = CFG(fn)
        first, second = fn.body
        assert second in cfg.reachable_from(first)
        assert first not in cfg.reachable_from(second)


# ----------------------------------------------------------------------
# reaching definitions
# ----------------------------------------------------------------------
class TestReachingDefinitions:
    def test_straight_line_kill(self):
        fn = _fn("def f():\n    a = 1\n    a = 2\n    return a")
        rd = ReachingDefinitions(fn, CFG(fn))
        ret = fn.body[-1]
        defs = rd.reaching_at(ret, "a")
        assert len(defs) == 1
        assert defs[0].stmt is fn.body[1]

    def test_branches_merge(self):
        fn = _fn(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        rd = ReachingDefinitions(fn, CFG(fn))
        assert len(rd.reaching_at(fn.body[-1], "a")) == 2

    def test_loop_variable_has_for_kind(self):
        fn = _fn(
            """
            def f(items):
                for item in items:
                    use(item)
            """
        )
        rd = ReachingDefinitions(fn, CFG(fn))
        use = fn.body[0].body[0]
        defs = rd.reaching_at(use, "item")
        assert [d.kind for d in defs] == ["for"]

    def test_params_reach_entry(self):
        fn = _fn("def f(ctx, x):\n    return x")
        rd = ReachingDefinitions(fn, CFG(fn))
        defs = rd.reaching_at(fn.body[0], "x")
        assert [d.kind for d in defs] == ["param"]


# ----------------------------------------------------------------------
# origin inference
# ----------------------------------------------------------------------
class TestOrigins:
    def test_list_display_is_new_mutable(self):
        model = _method_model(
            """
            class DemoProgram:
                def compute(self, ctx):
                    buf = [1, 2]
                    ctx.send(0, buf)
            """
        )
        send = model.send_calls()[0]
        assert model.origins(send.payload, send.stmt) == {Origin.NEW_MUTABLE}

    def test_ctx_state_is_state(self):
        model = _method_model(
            """
            class DemoProgram:
                def compute(self, ctx):
                    st = ctx.state()
                    ctx.send(0, st)
            """
        )
        send = model.send_calls()[0]
        assert model.origins(send.payload, send.stmt) == {Origin.STATE}

    def test_message_loop_variable_is_message(self):
        model = _method_model(
            """
            class DemoProgram:
                def compute(self, ctx):
                    for m in ctx.messages:
                        ctx.send(0, m)
            """
        )
        send = model.send_calls()[0]
        assert model.origins(send.payload, send.stmt) == {Origin.MESSAGE}

    def test_copy_launders_to_new_mutable(self):
        model = _method_model(
            """
            class DemoProgram:
                def compute(self, ctx):
                    for m in ctx.messages:
                        ctx.send(0, list(m))
            """
        )
        send = model.send_calls()[0]
        assert model.origins(send.payload, send.stmt) == {Origin.NEW_MUTABLE}

    def test_unknown_call_is_unknown(self):
        model = _method_model(
            """
            class DemoProgram:
                def compute(self, ctx):
                    x = mystery()
                    ctx.send(0, x)
            """
        )
        send = model.send_calls()[0]
        assert model.origins(send.payload, send.stmt) == {Origin.UNKNOWN}

    def test_send_alias_is_resolved(self):
        model = _method_model(
            """
            class DemoProgram:
                def compute(self, ctx):
                    send = ctx.send
                    send(0, [1])
            """
        )
        assert len(model.send_calls()) == 1


# ----------------------------------------------------------------------
# the three rules
# ----------------------------------------------------------------------
class TestStateEscapeRule:
    def test_state_payload_flagged(self):
        findings = _findings(
            StateEscapeRule(),
            """
            class DemoProgram:
                def compute(self, ctx):
                    ctx.send(0, ctx.state())
            """,
        )
        assert [f.rule for f in findings] == ["state-escape"]

    def test_message_retention_flagged(self):
        findings = _findings(
            StateEscapeRule(),
            """
            class DemoProgram:
                def compute(self, ctx):
                    for m in ctx.messages:
                        self.last = m
            """,
        )
        assert len(findings) == 1

    def test_fresh_tuple_is_clean(self):
        findings = _findings(
            StateEscapeRule(),
            """
            class DemoProgram:
                def compute(self, ctx):
                    st = ctx.state()
                    ctx.send(0, (ctx.vid, len(st)))
            """,
        )
        assert findings == []

    def test_non_program_class_is_skipped(self):
        findings = _findings(
            StateEscapeRule(),
            """
            class Helper:
                def compute(self, ctx):
                    ctx.send(0, ctx.state())
            """,
        )
        assert findings == []


class TestMessageAliasingRule:
    def test_double_send_flagged(self):
        findings = _findings(
            MessageAliasingRule(),
            """
            class DemoProgram:
                def compute(self, ctx):
                    buf = [1]
                    ctx.send(0, buf)
                    ctx.send(1, buf)
            """,
        )
        assert [f.rule for f in findings] == ["message-aliasing"]

    def test_loop_invariant_payload_flagged(self):
        findings = _findings(
            MessageAliasingRule(),
            """
            class DemoProgram:
                def compute(self, ctx):
                    buf = [1]
                    for target in range(3):
                        ctx.send(target, buf)
            """,
        )
        assert len(findings) == 1

    def test_fresh_payload_per_iteration_is_clean(self):
        findings = _findings(
            MessageAliasingRule(),
            """
            class DemoProgram:
                def compute(self, ctx):
                    for target in range(3):
                        buf = [target]
                        ctx.send(target, buf)
            """,
        )
        assert findings == []

    def test_mutate_after_send_flagged(self):
        findings = _findings(
            MessageAliasingRule(),
            """
            class DemoProgram:
                def compute(self, ctx):
                    buf = [1]
                    ctx.send(0, buf)
                    buf.append(2)
            """,
        )
        assert len(findings) == 1

    def test_immutable_multi_send_is_clean(self):
        findings = _findings(
            MessageAliasingRule(),
            """
            class DemoProgram:
                def compute(self, ctx):
                    value = (1, 2)
                    ctx.send(0, value)
                    ctx.send(1, value)
            """,
        )
        assert findings == []


class TestAggregatePurityRule:
    def test_argument_mutation_flagged(self):
        findings = _findings(
            AggregatePurityRule(),
            """
            class DemoAggregate:
                def concat(self, a, b):
                    a.extend(b)
                    return a
            """,
        )
        assert [f.rule for f in findings] == ["impure-aggregate"]

    def test_self_write_flagged(self):
        findings = _findings(
            AggregatePurityRule(),
            """
            class DemoAggregate:
                def merge(self, a, b):
                    self.seen = a
                    return a + b
            """,
        )
        assert len(findings) == 1

    def test_io_flagged(self):
        findings = _findings(
            AggregatePurityRule(),
            """
            class DemoAggregate:
                def finalize(self, value):
                    print(value)
                    return value
            """,
        )
        assert len(findings) == 1

    def test_pure_concat_is_clean(self):
        findings = _findings(
            AggregatePurityRule(),
            """
            class DemoAggregate:
                def concat(self, a, b):
                    return a + b

                def merge(self, a, b):
                    return min(a, b)
            """,
        )
        assert findings == []

    def test_local_mutation_is_clean(self):
        findings = _findings(
            AggregatePurityRule(),
            """
            class DemoAggregate:
                def finalize_all(self, values):
                    out = []
                    for value in values:
                        out.append(value)
                    return tuple(out)
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# precision on shipped code
# ----------------------------------------------------------------------
class TestPrecisionOnShippedSources:
    def _lint_file(self, relpath: str):
        path = REPO_ROOT / relpath
        text = path.read_text(encoding="utf-8")
        module = ModuleSource.from_source(text, path=str(path))
        findings = []
        for rule in (
            StateEscapeRule(),
            MessageAliasingRule(),
            AggregatePurityRule(),
        ):
            findings.extend(rule.check(module))
        return findings

    def test_evaluator_is_clean(self):
        assert self._lint_file("src/repro/core/evaluator.py") == []

    def test_vertex_programs_are_clean(self):
        assert self._lint_file("src/repro/analysis/vertex_programs.py") == []

    def test_shipped_aggregates_are_clean(self):
        assert self._lint_file("src/repro/aggregates/base.py") == []
        assert self._lint_file("src/repro/aggregates/bounded.py") == []
