"""The permanent CI gate: linting ``src/repro`` must produce zero
findings.  Any rule violation introduced anywhere in the library fails
this test with the exact file:line locations."""

from __future__ import annotations

from pathlib import Path

from repro.lint import render_text, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"


def test_package_is_lint_clean():
    report = run_lint([str(PACKAGE)])
    assert report.files_scanned > 50  # the walk actually found the tree
    assert report.ok, (
        "static-analysis findings in src/repro:\n" + render_text(report)
    )


def test_gate_actually_detects_violations(tmp_path):
    """Guard the gate itself: a seeded violation must be reported, so a
    silently broken rule set cannot fake a clean run."""
    bad = tmp_path / "seeded.py"
    bad.write_text(
        "from __future__ import annotations\n"
        "def f():\n    raise RuntimeError('x')\n"
    )
    report = run_lint([str(bad)])
    assert not report.ok
    assert report.findings[0].rule == "foreign-raise"
