"""The permanent CI gate: linting ``src/repro``, ``benchmarks`` and
``examples`` must produce zero findings.  Any rule violation introduced
anywhere in the library (or its shipped runnable code) fails this test
with the exact file:line locations."""

from __future__ import annotations

from pathlib import Path

from repro.lint import load_config, render_text, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"
BENCHMARKS = REPO_ROOT / "benchmarks"
EXAMPLES = REPO_ROOT / "examples"


def _gate_config():
    """The repo's own lint configuration (per-path ignores included)."""
    return load_config(str(REPO_ROOT / "pyproject.toml"))


def test_package_is_lint_clean():
    report = run_lint([str(PACKAGE)], config=_gate_config())
    assert report.files_scanned > 50  # the walk actually found the tree
    assert report.ok, (
        "static-analysis findings in src/repro:\n" + render_text(report)
    )


def test_benchmarks_and_examples_are_lint_clean():
    report = run_lint([str(BENCHMARKS), str(EXAMPLES)], config=_gate_config())
    assert report.files_scanned > 15  # both trees were actually walked
    assert report.ok, (
        "static-analysis findings in benchmarks/examples:\n"
        + render_text(report)
    )


def test_gate_actually_detects_violations(tmp_path):
    """Guard the gate itself: a seeded violation must be reported, so a
    silently broken rule set cannot fake a clean run."""
    bad = tmp_path / "seeded.py"
    bad.write_text(
        "from __future__ import annotations\n"
        "def f():\n    raise RuntimeError('x')\n"
    )
    report = run_lint([str(bad)])
    assert not report.ok
    assert report.findings[0].rule == "foreign-raise"
