"""PlanVerifier: adversarial hand-built plans must be rejected with
precise messages; every planner strategy's plans must verify clean
(property-tested over random schema walks)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import PCP, PCPNode, Placement
from repro.core.planner import STRATEGIES, make_plan
from repro.errors import PlanError
from repro.graph.pattern import LinePattern
from repro.lint import PlanVerifier

from tests.conftest import build_scholarly


@pytest.fixture
def verifier():
    return PlanVerifier()


def node(i, k, j, left=None, right=None, placement=Placement.AT_END, nid=0):
    return PCPNode(
        node_id=nid, i=i, k=k, j=j, left=left, right=right, placement=placement
    )


# ----------------------------------------------------------------------
# adversarial fixtures
# ----------------------------------------------------------------------
class TestAdversarialPlans:
    def test_missing_root(self, verifier):
        with pytest.raises(PlanError, match="no root node"):
            verifier.verify(None, 3)

    def test_wrong_node_count(self, verifier):
        # length 4 needs 3 nodes; a lone root with NL-NL sides of length 2
        lone = node(0, 2, 4)
        problems = verifier.check(lone, 4)
        assert any("needs exactly 3 plan nodes, found 1" in p for p in problems)
        with pytest.raises(PlanError, match="Theorem 2"):
            verifier.verify(lone, 4)

    def test_pivot_out_of_range(self, verifier):
        problems = verifier.check(node(0, 0, 2), 2)
        assert any("pivot 0 out of range" in p for p in problems)
        problems = verifier.check(node(0, 2, 2), 2)
        assert any("pivot 2 out of range" in p for p in problems)

    def test_overlapping_segments(self, verifier):
        # left child covers [0,3] under a pivot at 2: overlaps the right side
        bad = node(
            0, 2, 4,
            left=node(0, 1, 3, nid=1),
            right=node(2, 3, 4, placement=Placement.AT_START, nid=2),
        )
        problems = verifier.check(bad, 4)
        assert any("gap or overlap" in p and "[0,2]" in p for p in problems)

    def test_segment_gap(self, verifier):
        # length 6: left child covers [0,2] but the pivot is 3 -> gap [2,3]
        bad = node(
            0, 3, 6,
            left=node(0, 1, 2, nid=1),
            right=node(3, 4, 6, placement=Placement.AT_START, nid=2,
                       right=node(4, 5, 6, placement=Placement.AT_START, nid=3)),
        )
        problems = verifier.check(bad, 6)
        assert any("must cover segment [0,3]" in p for p in problems)

    def test_wrong_placement(self, verifier):
        bad = node(
            0, 2, 4,
            left=node(0, 1, 2, placement=Placement.AT_START, nid=1),
            right=node(2, 3, 4, placement=Placement.AT_START, nid=2),
        )
        problems = verifier.check(bad, 4)
        assert any("left child must store its paths at the end" in p for p in problems)

        bad_root = node(
            0, 2, 4,
            left=node(0, 1, 2, nid=1),
            right=node(2, 3, 4, placement=Placement.AT_START, nid=2),
            placement=Placement.AT_START,
        )
        problems = verifier.check(bad_root, 4)
        assert any("root must store its paths at the end" in p for p in problems)

    def test_nl_side_with_spurious_child(self, verifier):
        # left side [0,1] has length 1 (NL) but carries a child
        bad = node(
            0, 1, 3,
            left=node(0, 1, 1, nid=1),
            right=node(1, 2, 3, placement=Placement.AT_START, nid=2),
        )
        problems = verifier.check(bad, 3)
        assert any("carries a child for an NL side" in p for p in problems)

    def test_shared_node_detected(self, verifier):
        # the same object wired as both children: not a tree
        shared = node(2, 3, 4, placement=Placement.AT_START, nid=1)
        bad = node(0, 2, 4, left=shared, right=shared)
        problems = verifier.check(bad, 4)
        assert any("not a tree" in p for p in problems)

    def test_all_problems_reported_at_once(self, verifier):
        """The verifier collects every violation, not just the first."""
        lone = node(0, 0, 4, placement=Placement.AT_START)
        problems = verifier.check(lone, 4)
        assert len(problems) >= 3  # placement + pivot + children/count

    def test_short_patterns_rejected(self, verifier):
        with pytest.raises(PlanError, match="need no concatenation plan"):
            verifier.verify(node(0, 1, 2), 1)


class TestTamperedPlans:
    """verify_plan catches post-construction mutation of a valid PCP."""

    def test_accepts_fresh_plan(self, verifier):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plan = make_plan(pattern, strategy="line")
        verifier.verify_plan(plan)

    def test_rejects_mutated_pivot(self, verifier):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        plan = make_plan(pattern, strategy="line")
        plan.root.k = plan.root.j
        with pytest.raises(PlanError, match="pivot"):
            verifier.verify_plan(plan)

    def test_rejects_detached_child(self, verifier):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        plan = make_plan(pattern, strategy="line")
        assert plan.root.left or plan.root.right
        if plan.root.left is not None:
            plan.root.left = None
        else:
            plan.root.right = None
        with pytest.raises(PlanError):
            verifier.verify_plan(plan)


# ----------------------------------------------------------------------
# property: every strategy emits verifier-clean plans
# ----------------------------------------------------------------------
_GRAPH = build_scholarly()

#: label -> [(edge label, arrow, next label)] walk steps in both directions
_STEPS = {
    "Author": [("authorBy", "->", "Paper")],
    "Venue": [("publishAt", "<-", "Paper")],
    "Paper": [
        ("authorBy", "<-", "Author"),
        ("publishAt", "->", "Venue"),
        ("citeBy", "->", "Paper"),
        ("citeBy", "<-", "Paper"),
    ],
}


@st.composite
def schema_walk_patterns(draw):
    """A random valid line pattern of length 2-8 over the scholarly schema."""
    length = draw(st.integers(min_value=2, max_value=8))
    label = draw(st.sampled_from(sorted(_STEPS)))
    parts = [label]
    for _ in range(length):
        edge, arrow, nxt = draw(st.sampled_from(_STEPS[label]))
        parts.append(
            f"-[{edge}]-> {nxt}" if arrow == "->" else f"<-[{edge}]- {nxt}"
        )
        label = nxt
    return LinePattern.parse(" ".join(parts))


@settings(max_examples=60, deadline=None)
@given(pattern=schema_walk_patterns(), strategy=st.sampled_from(STRATEGIES))
def test_every_strategy_emits_verifier_clean_plans(pattern, strategy):
    plan = make_plan(pattern, strategy=strategy, graph=_GRAPH)
    assert PlanVerifier().check(plan.root, pattern.length) == []


@settings(max_examples=30, deadline=None)
@given(pattern=schema_walk_patterns())
def test_partial_aggregation_plans_also_verify(pattern):
    plan = make_plan(
        pattern, strategy="hybrid", graph=_GRAPH, partial_aggregation=True
    )
    assert PlanVerifier().check(plan.root, pattern.length) == []
