"""Process-safety analysis (repro.lint.procsafe): the AST rule families
on inline snippets and the seeded unsafe fixture, interprocedural
attribution, and the object-level checker on every shipped aggregate."""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.aggregates import library
from repro.aggregates.bounded import bounded_k_shortest, bounded_top_k
from repro.errors import EngineError
from repro.lint import (
    PROCSAFE_RULES,
    check_process_safety,
    run_lint,
    verify_process_safe,
)
from repro.lint.astutil import ModuleSource

FIXTURE = Path(__file__).parent / "fixtures" / "bad_procsafe_program.py"


def check(source: str):
    module = ModuleSource.from_source(source, path="<snippet>")
    return [f for rule in PROCSAFE_RULES for f in rule.check(module)]


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# procsafe-capture
# ----------------------------------------------------------------------
class TestCaptureRule:
    def test_lambda_on_self_flagged(self):
        findings = check(
            "class P:\n"
            "    def compute(self, ctx):\n"
            "        self.fn = lambda x: x\n"
        )
        # class name does not end Program/Aggregate: not a subject
        assert findings == []
        findings = check(
            "class CountProgram:\n"
            "    def __init__(self):\n"
            "        self.fn = lambda x: x\n"
        )
        assert rules_of(findings) == {"procsafe-capture"}

    def test_generator_and_open_flagged(self):
        findings = check(
            "class CountProgram:\n"
            "    def __init__(self, path):\n"
            "        self.gen = (i for i in range(3))\n"
            "        self.log = open(path)\n"
        )
        assert len(findings) == 2

    def test_local_def_stored_on_self_flagged(self):
        findings = check(
            "class SumAggregate:\n"
            "    def __init__(self):\n"
            "        def helper(a, b):\n"
            "            return a + b\n"
            "        self.op = helper\n"
        )
        assert rules_of(findings) == {"procsafe-capture"}

    def test_lambda_into_aggregate_ctor_flagged(self):
        findings = check(
            "def build():\n"
            "    return DistributiveAggregate(lambda a, b: a + b, OP_ADD)\n"
        )
        assert rules_of(findings) == {"procsafe-capture"}

    def test_local_def_into_register_op_ufunc_flagged(self):
        findings = check(
            "def setup():\n"
            "    def mul(a, b):\n"
            "        return a * b\n"
            "    register_op_ufunc('mul', mul)\n"
        )
        assert rules_of(findings) == {"procsafe-capture"}

    def test_module_level_named_fn_into_ctor_ok(self):
        findings = check(
            "def _add(a, b):\n"
            "    return a + b\n"
            "def build():\n"
            "    return DistributiveAggregate(_add, _add)\n"
        )
        assert findings == []


# ----------------------------------------------------------------------
# procsafe-global
# ----------------------------------------------------------------------
class TestGlobalRule:
    def test_mutable_global_read_from_compute_flagged(self):
        findings = check(
            "_CACHE = {}\n"
            "class CountProgram:\n"
            "    def compute(self, ctx):\n"
            "        return _CACHE.get(ctx.vertex)\n"
        )
        assert rules_of(findings) == {"procsafe-global"}

    def test_interprocedural_reach_through_helper(self):
        findings = check(
            "_SEEN = set()\n"
            "def remember(v):\n"
            "    _SEEN.add(v)\n"
            "class CountProgram:\n"
            "    def compute(self, ctx):\n"
            "        self._note(ctx)\n"
            "    def _note(self, ctx):\n"
            "        remember(ctx.vertex)\n"
        )
        assert rules_of(findings) == {"procsafe-global"}
        assert any("via helper 'remember'" in f.message for f in findings)

    def test_immutable_global_ok(self):
        findings = check(
            "LIMIT = 10\n"
            "NAMES = ('a', 'b')\n"
            "class CountProgram:\n"
            "    def compute(self, ctx):\n"
            "        return LIMIT + len(NAMES)\n"
        )
        assert findings == []

    def test_locally_shadowed_name_ok(self):
        findings = check(
            "_CACHE = {}\n"
            "class CountProgram:\n"
            "    def compute(self, ctx):\n"
            "        _CACHE = {}\n"
            "        return _CACHE\n"
        )
        assert findings == []

    def test_unreachable_helper_not_flagged(self):
        # the helper touches a mutable global but nothing calls it
        findings = check(
            "_CACHE = {}\n"
            "def unused():\n"
            "    return _CACHE\n"
            "class CountProgram:\n"
            "    def compute(self, ctx):\n"
            "        return 1\n"
        )
        assert findings == []


# ----------------------------------------------------------------------
# procsafe-thread
# ----------------------------------------------------------------------
class TestThreadRule:
    def test_get_ident_attribute_flagged(self):
        findings = check(
            "import threading\n"
            "class CountProgram:\n"
            "    def compute(self, ctx):\n"
            "        return threading.get_ident()\n"
        )
        assert rules_of(findings) == {"procsafe-thread"}

    def test_imported_get_ident_flagged(self):
        findings = check(
            "from threading import get_ident\n"
            "class CountProgram:\n"
            "    def compute(self, ctx):\n"
            "        return get_ident()\n"
        )
        assert rules_of(findings) == {"procsafe-thread"}

    def test_lock_in_init_flagged(self):
        findings = check(
            "import threading\n"
            "class CountProgram:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
            "    def compute(self, ctx):\n"
            "        return 1\n"
        )
        assert "procsafe-thread" in rules_of(findings)


# ----------------------------------------------------------------------
# fixture + shipped tree
# ----------------------------------------------------------------------
class TestTrees:
    def test_fixture_trips_every_family(self):
        report = run_lint([str(FIXTURE)], rules=list(PROCSAFE_RULES))
        assert rules_of(report.findings) == {
            "procsafe-capture",
            "procsafe-global",
            "procsafe-thread",
        }
        assert report.errors >= 8

    def test_shipped_tree_is_clean(self):
        root = Path(__file__).resolve().parents[2]
        paths = [str(root / "src" / "repro")]
        for extra in ("benchmarks", "examples"):
            if (root / extra).is_dir():
                paths.append(str(root / extra))
        report = run_lint(paths, rules=list(PROCSAFE_RULES))
        assert report.findings == [], [
            f"{f.path}:{f.line}: {f.message}" for f in report.findings
        ]


# ----------------------------------------------------------------------
# object-level verification
# ----------------------------------------------------------------------
SHIPPED_FACTORIES = [
    library.path_count,
    library.weighted_path_count,
    library.max_min,
    library.min_max,
    library.add_max,
    library.sum_min,
    library.exists_path,
    library.avg_path_value,
    library.std_path_value,
    library.median_path_value,
    library.count_distinct_path_values,
    lambda: library.top_k_path_values(3),
    lambda: bounded_top_k(3),
    lambda: bounded_k_shortest(2),
]


class TestObjectLevel:
    @pytest.mark.parametrize(
        "factory", SHIPPED_FACTORIES,
        ids=lambda f: getattr(f, "__name__", "<parameterised>"),
    )
    def test_every_shipped_aggregate_is_process_safe(self, factory):
        aggregate = factory()
        assert check_process_safety(aggregate) == []
        verify_process_safe(aggregate)  # must not raise

    def test_lambda_attribute_detected(self):
        class Holder:
            def __init__(self):
                self.fn = lambda x: x

        problems = check_process_safety(Holder())
        assert any("lambda" in p for p in problems)

    def test_lock_detected(self):
        class Holder:
            def __init__(self):
                self.lock = threading.Lock()

        problems = check_process_safety(Holder())
        assert any("lock" in p for p in problems)

    def test_local_function_detected(self):
        def make():
            def local(x):
                return x

            return local

        class Holder:
            def __init__(self):
                self.fn = make()

        problems = check_process_safety(Holder())
        assert any("locally-defined" in p for p in problems)

    def test_generator_detected(self):
        class Holder:
            def __init__(self):
                self.gen = (i for i in range(3))

        problems = check_process_safety(Holder())
        assert any("generator" in p for p in problems)

    def test_pickle_probe_catches_structural_misses(self):
        # a locally-defined class instance passes the structural walk but
        # fails the authoritative pickle round-trip
        class Local:
            pass

        problems = check_process_safety(Local())
        assert problems

    def test_verify_raises_engine_error(self):
        class Holder:
            def __init__(self):
                self.fn = lambda x: x

        with pytest.raises(EngineError, match="not process-safe"):
            verify_process_safe(Holder())

    def test_nested_containers_walked(self):
        class Holder:
            def __init__(self):
                self.table = {"ops": [min, max, lambda x: x]}

        problems = check_process_safety(Holder())
        assert any("lambda" in p for p in problems)
