"""Unit tests for the AST rule catalogue, the runner, config handling
and the reporters — all on inline sources and the fixture tree."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.lint import (
    ALL_RULES,
    BareExceptRule,
    ForeignRaiseRule,
    FrozenMutationRule,
    FutureAnnotationsRule,
    LintConfig,
    ModuleSource,
    SharedStateRule,
    get_rules,
    iter_python_files,
    lint_module,
    load_config,
    render_json,
    render_text,
    run_lint,
)

FIXTURES = Path(__file__).parent / "fixtures"


def check(rule, source: str):
    module = ModuleSource.from_source(source, path="snippet.py")
    return list(rule.check(module))


# ----------------------------------------------------------------------
# shared-state
# ----------------------------------------------------------------------
class TestSharedStateRule:
    def test_instance_write_in_compute(self):
        findings = check(
            SharedStateRule(),
            "class P(VertexProgram):\n"
            "    def compute(self, ctx):\n"
            "        self.total = 1\n",
        )
        assert len(findings) == 1
        assert "self.total" in findings[0].message
        assert findings[0].line == 3

    def test_mutation_via_reachable_helper(self):
        findings = check(
            SharedStateRule(),
            "class P(VertexProgram):\n"
            "    def compute(self, ctx):\n"
            "        self.helper(ctx)\n"
            "    def helper(self, ctx):\n"
            "        self.cache.update({1: 2})\n"
            "    def unreachable(self):\n"
            "        self.cache.clear()\n",
        )
        assert len(findings) == 1  # the unreachable method is not flagged
        assert "helper" in findings[0].message

    def test_module_global_mutation(self):
        findings = check(
            SharedStateRule(),
            "CACHE = {}\n"
            "class P(VertexProgram):\n"
            "    def compute(self, ctx):\n"
            "        CACHE[ctx.vid] = 1\n",
        )
        assert len(findings) == 1
        assert "module-global" in findings[0].message

    def test_peek_state_flagged(self):
        findings = check(
            SharedStateRule(),
            "class P(VertexProgram):\n"
            "    def compute(self, ctx):\n"
            "        ctx.peek_state(0)\n",
        )
        assert len(findings) == 1
        assert "peek_state" in findings[0].message

    def test_ctx_state_mutation_is_fine(self):
        findings = check(
            SharedStateRule(),
            "class P(VertexProgram):\n"
            "    def compute(self, ctx):\n"
            "        state = ctx.state()\n"
            "        state['paths'] = []\n"
            "        state['paths'].append(1)\n"
            "        local = {}\n"
            "        local.update({1: 2})\n",
        )
        assert findings == []

    def test_non_program_class_ignored(self):
        findings = check(
            SharedStateRule(),
            "class Planner:\n"
            "    def compute(self, ctx):\n"
            "        self.total = 1\n",
        )
        assert findings == []

    def test_global_statement_flagged(self):
        findings = check(
            SharedStateRule(),
            "class P(VertexProgram):\n"
            "    def compute(self, ctx):\n"
            "        global counter\n"
            "        counter = 1\n",
        )
        assert any("global" in f.message for f in findings)


# ----------------------------------------------------------------------
# foreign-raise
# ----------------------------------------------------------------------
class TestForeignRaiseRule:
    def test_builtin_raise_flagged(self):
        findings = check(
            ForeignRaiseRule(), "def f():\n    raise ValueError('x')\n"
        )
        assert len(findings) == 1
        assert "ValueError" in findings[0].message

    def test_repro_errors_allowed(self):
        findings = check(
            ForeignRaiseRule(),
            "from repro.errors import PlanError\n"
            "def f():\n    raise PlanError('x')\n",
        )
        assert findings == []

    def test_local_subclass_allowed(self):
        findings = check(
            ForeignRaiseRule(),
            "from repro.errors import ReproError\n"
            "class LocalError(ReproError):\n    pass\n"
            "class DeeperError(LocalError):\n    pass\n"
            "def f():\n    raise DeeperError('x')\n",
        )
        assert findings == []

    def test_allowed_builtins(self):
        findings = check(
            ForeignRaiseRule(),
            "def f():\n    raise NotImplementedError\n"
            "def g():\n    raise ImportError('optional')\n",
        )
        assert findings == []

    def test_reraise_of_variable_ignored(self):
        findings = check(
            ForeignRaiseRule(),
            "def f(exc):\n    raise exc\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# bare-except
# ----------------------------------------------------------------------
class TestBareExceptRule:
    def test_bare_flagged(self):
        findings = check(
            BareExceptRule(),
            "try:\n    pass\nexcept:\n    pass\n",
        )
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_typed_not_flagged(self):
        findings = check(
            BareExceptRule(),
            "try:\n    pass\nexcept Exception:\n    pass\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# frozen-mutation
# ----------------------------------------------------------------------
class TestFrozenMutationRule:
    def test_attribute_write_on_frozen_arg(self):
        findings = check(
            FrozenMutationRule(),
            "def f(pattern: LinePattern):\n    pattern.length = 0\n",
        )
        assert len(findings) == 1
        assert "LinePattern" in findings[0].message

    def test_string_annotation_and_optional(self):
        findings = check(
            FrozenMutationRule(),
            "def f(edge: 'PatternEdge', op: Optional[BinaryOp]):\n"
            "    edge.direction = None\n"
            "    op.fn = None\n",
        )
        assert len(findings) == 2

    def test_mutating_call_through_frozen_value(self):
        findings = check(
            FrozenMutationRule(),
            "def f(pattern: LinePattern):\n"
            "    pattern.filters.update({})\n",
        )
        assert len(findings) == 1

    def test_rebinding_is_fine(self):
        findings = check(
            FrozenMutationRule(),
            "def f(pattern: LinePattern):\n"
            "    pattern = pattern.reversed()\n"
            "    items = list(pattern.edges)\n"
            "    items.append(None)\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# future-annotations
# ----------------------------------------------------------------------
class TestFutureAnnotationsRule:
    def test_missing_flagged(self):
        findings = check(FutureAnnotationsRule(), "x = 1\n")
        assert len(findings) == 1
        assert findings[0].severity.value == "warning"

    def test_present_ok(self):
        findings = check(
            FutureAnnotationsRule(),
            '"""doc"""\nfrom __future__ import annotations\nx = 1\n',
        )
        assert findings == []

    def test_empty_module_ok(self):
        findings = check(FutureAnnotationsRule(), "")
        assert findings == []


# ----------------------------------------------------------------------
# runner, suppression, config
# ----------------------------------------------------------------------
class TestRunner:
    def test_fixture_tree_has_all_violation_classes(self):
        report = run_lint([str(FIXTURES)])
        rules_found = {f.rule for f in report.findings}
        assert rules_found == {
            "shared-state",
            "foreign-raise",
            "bare-except",
            "frozen-mutation",
            "future-annotations",
            "state-escape",
            "message-aliasing",
            "impure-aggregate",
            "procsafe-capture",
            "procsafe-global",
            "procsafe-thread",
        }
        assert not report.ok
        # every finding carries a real location
        for finding in report.findings:
            assert finding.path.endswith(".py")
            assert finding.line >= 1

    def test_inline_suppression(self):
        module = ModuleSource.from_source(
            "def f():\n"
            "    raise ValueError('x')  # lint: disable=foreign-raise\n",
            path="s.py",
        )
        assert lint_module(module, [ForeignRaiseRule()]) == []

    def test_per_path_ignores(self):
        config = LintConfig(per_path_ignores={"legacy/*.py": ["bare-except"]})
        module = ModuleSource.from_source(
            "try:\n    pass\nexcept:\n    pass\n", path="legacy/old.py"
        )
        assert lint_module(module, [BareExceptRule()], config) == []
        other = ModuleSource.from_source(
            "try:\n    pass\nexcept:\n    pass\n", path="src/new.py"
        )
        assert len(lint_module(other, [BareExceptRule()], config)) == 1

    def test_unknown_rule_rejected(self):
        with pytest.raises(ReproError, match="unknown lint rule"):
            get_rules(["no-such-rule"])

    def test_unknown_path_rejected(self):
        with pytest.raises(ReproError, match="not found"):
            run_lint(["does/not/exist"])

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [f.name for f in files] == ["a.py"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = run_lint([str(bad)])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "syntax-error"


class TestConfig:
    def test_load_from_explicit_file(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.lint]\n"
            'enable = ["bare-except", "foreign-raise"]\n'
            'disable = ["foreign-raise"]\n'
            "[tool.repro.lint.per-path-ignores]\n"
            '"vendored/*.py" = ["all"]\n'
        )
        config = load_config(str(pyproject))
        names = config.rule_names(
            ["shared-state", "foreign-raise", "bare-except"]
        )
        assert names == ["bare-except"]
        assert config.ignored_at("vendored/x.py", "bare-except")
        assert not config.ignored_at("src/x.py", "bare-except")

    def test_missing_file_rejected(self):
        with pytest.raises(ReproError, match="not found"):
            load_config("no/such/pyproject.toml")

    def test_bad_types_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro.lint]\nenable = 'all'\n")
        with pytest.raises(ReproError, match="list of strings"):
            load_config(str(pyproject))


class TestReporters:
    def test_text_shows_location_and_summary(self):
        report = run_lint([str(FIXTURES / "bad_bare_except.py")])
        text = render_text(report)
        assert "bad_bare_except.py:9" in text
        assert "bare-except" in text
        assert "finding(s)" in text

    def test_json_is_machine_readable(self):
        report = run_lint([str(FIXTURES / "bad_foreign_raise.py")])
        payload = json.loads(render_json(report))
        assert payload["files_scanned"] == 1
        assert payload["errors"] >= 1
        rules = {f["rule"] for f in payload["findings"]}
        assert "foreign-raise" in rules
        finding = payload["findings"][0]
        assert {"rule", "message", "path", "line", "col", "severity", "hint"} <= set(
            finding
        )

    def test_clean_report(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text(
            '"""ok"""\nfrom __future__ import annotations\nx = 1\n'
        )
        report = run_lint([str(good)])
        assert report.ok
        assert "clean" in render_text(report)


class TestRuleRegistry:
    def test_all_rules_have_identity(self):
        for rule in ALL_RULES:
            assert rule.name
            assert rule.description
            assert rule.hint

    def test_names_unique(self):
        names = [rule.name for rule in ALL_RULES]
        assert len(names) == len(set(names))
