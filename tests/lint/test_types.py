"""Unit tests for the plan typechecker (repro.lint.types): schema slot
typing, filter applicability, aggregate domain flow (Theorem 3), static
kernel eligibility, and the planner/extractor integration points."""

from __future__ import annotations

import pytest

from repro.aggregates.base import (
    OP_ADD,
    OP_MAX,
    OP_MIN,
    OP_MUL,
    DistributiveAggregate,
)
from repro.aggregates.bounded import bounded_top_k
from repro.aggregates.library import (
    avg_path_value,
    exists_path,
    max_min,
    median_path_value,
    path_count,
)
from repro.core.planner import make_plan
from repro.errors import PlanError, SchemaError
from repro.graph.pattern import LinePattern
from repro.graph.schema import GraphSchema
from repro.lint import (
    PlanTypeChecker,
    check_pattern_typing,
    static_eligibility,
)

from tests.conftest import build_scholarly

PATTERN = LinePattern.parse(
    "Author -[authorBy]-> Paper <-[authorBy]- Author"
)


def scholarly_schema() -> GraphSchema:
    return build_scholarly().schema


def make_schema_with_attrs() -> GraphSchema:
    schema = scholarly_schema()
    schema.declare_vertex_attribute("Paper", "year", "int")
    schema.declare_vertex_attribute("Paper", "retracted", "bool")
    schema.declare_vertex_attribute("Venue", "name", "str")
    return schema


def plan_for(pattern, schema=None):
    return make_plan(pattern, strategy="line", schema=schema)


# ----------------------------------------------------------------------
# slot / edge-label typing
# ----------------------------------------------------------------------
class TestSlotTyping:
    def test_well_typed_pattern_is_clean(self):
        checker = PlanTypeChecker(scholarly_schema())
        report = checker.check(PATTERN, plan_for(PATTERN), path_count())
        assert report.ok
        assert report.pattern_problems == []
        assert all(not n.problems for n in report.nodes)

    def test_unknown_edge_label(self):
        pattern = LinePattern.parse("Author -[mentors]-> Author")
        problems = check_pattern_typing(pattern, scholarly_schema())
        assert any("mentors" in p for p in problems)

    def test_wrong_orientation(self):
        # authorBy runs Author -> Paper; the reversed slot must be flagged
        pattern = LinePattern.parse("Paper -[authorBy]-> Author")
        problems = check_pattern_typing(pattern, scholarly_schema())
        assert any("authorBy" in p for p in problems)

    def test_unknown_vertex_label(self):
        pattern = LinePattern.parse("Author -[authorBy]-> Preprint")
        problems = check_pattern_typing(pattern, scholarly_schema())
        assert any("Preprint" in p for p in problems)

    def test_problems_attach_to_the_consuming_node(self):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[authorBy]-> Venue"
        )
        checker = PlanTypeChecker(scholarly_schema())
        report = checker.check(pattern, plan_for(pattern), path_count())
        assert not report.ok
        flagged = [n for n in report.nodes if n.problems]
        assert flagged, "the slot problem must be attributed to a node"

    def test_no_schema_skips_slot_checks(self):
        # validate_patterns=False extractors hand the checker schema=None
        pattern = LinePattern.parse("X -[nope]-> Y <-[nah]- Z")
        checker = PlanTypeChecker(None)
        report = checker.check(pattern, plan_for(pattern), path_count())
        assert report.ok


# ----------------------------------------------------------------------
# filter applicability
# ----------------------------------------------------------------------
class TestFilterTyping:
    def check_filters(self, pattern_text):
        pattern = LinePattern.parse(pattern_text)
        checker = PlanTypeChecker(make_schema_with_attrs())
        return checker.check(
            pattern, plan_for(pattern), path_count()
        ).filter_problems

    def test_declared_int_filter_ok(self):
        assert self.check_filters(
            "Author -[authorBy]-> Paper{year >= 2010} <-[authorBy]- Author"
        ) == []

    def test_undeclared_attribute_flagged(self):
        problems = self.check_filters(
            "Author -[authorBy]-> Paper{pages > 10} <-[authorBy]- Author"
        )
        assert any("pages" in p for p in problems)

    def test_value_kind_mismatch_flagged(self):
        problems = self.check_filters(
            "Author -[authorBy]-> Paper{year == 'old'} <-[authorBy]- Author"
        )
        assert any("year" in p for p in problems)

    def test_ordered_op_on_bool_flagged(self):
        problems = self.check_filters(
            "Author -[authorBy]-> Paper{retracted > 0} <-[authorBy]- Author"
        )
        assert any("retracted" in p for p in problems)

    def test_open_world_label_not_checked(self):
        # Author declares no attributes: filters on it stay unchecked
        assert self.check_filters(
            "Author{hindex > 5} -[authorBy]-> Paper <-[authorBy]- Author"
        ) == []

    def test_attribute_kind_conflict_raises(self):
        schema = make_schema_with_attrs()
        with pytest.raises(SchemaError):
            schema.declare_vertex_attribute("Paper", "year", "str")


# ----------------------------------------------------------------------
# aggregate domain flow (Theorem 3)
# ----------------------------------------------------------------------
class TestAggregateFlow:
    def check_aggregate(self, aggregate, pattern=PATTERN):
        checker = PlanTypeChecker(scholarly_schema())
        return checker.check(pattern, plan_for(pattern), aggregate)

    @pytest.mark.parametrize(
        "factory", [path_count, max_min, avg_path_value, exists_path,
                    median_path_value]
    )
    def test_library_aggregates_flow_clean(self, factory):
        assert self.check_aggregate(factory()).aggregate_problems == []

    def test_distributivity_violation_detected(self):
        # max does NOT distribute over add: max(a, b+c) != max(a,b)+max(a,c)
        bad = DistributiveAggregate(OP_MAX, OP_ADD, name="max_add")
        problems = self.check_aggregate(bad).aggregate_problems
        assert any("Theorem 3" in p for p in problems)

    def test_valid_semirings_have_no_violation(self):
        for combine, merge in ((OP_MUL, OP_ADD), (OP_ADD, OP_MIN),
                               (OP_ADD, OP_MAX), (OP_MIN, OP_MAX)):
            agg = DistributiveAggregate(combine, merge)
            assert self.check_aggregate(agg).aggregate_problems == []

    def test_broken_operator_reported(self):
        def explode(a, b):
            raise ValueError("boom")

        from repro.aggregates.base import BinaryOp

        bad = DistributiveAggregate(
            BinaryOp("explode", explode, 0.0), OP_ADD, name="exploding"
        )
        problems = self.check_aggregate(bad).aggregate_problems
        assert problems

    def test_verify_raises_on_ill_typed(self):
        bad = DistributiveAggregate(OP_MAX, OP_ADD, name="max_add")
        checker = PlanTypeChecker(scholarly_schema())
        with pytest.raises(PlanError, match="typecheck failed"):
            checker.verify(PATTERN, plan_for(PATTERN), bad)

    def test_levels_follow_plan_height(self):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        checker = PlanTypeChecker(scholarly_schema())
        report = checker.check(pattern, plan_for(pattern), path_count())
        assert report.ok
        assert max(n.level for n in report.nodes) >= 2


# ----------------------------------------------------------------------
# static kernel eligibility
# ----------------------------------------------------------------------
class TestStaticEligibility:
    def test_native_kernel(self):
        verdict = static_eligibility(path_count())
        assert verdict.backend == "vectorized"
        assert verdict.kernels == (
            "path_count: native scipy sum-product (mul, add)",
        )

    def test_ufunc_kernel(self):
        verdict = static_eligibility(max_min())
        assert verdict.backend == "vectorized"
        assert "ufunc expansion" in verdict.kernels[0]

    def test_boolean_kernel(self):
        verdict = static_eligibility(exists_path())
        assert "[boolean 0/1]" in verdict.kernels[0]

    def test_holistic_falls_back(self):
        verdict = static_eligibility(median_path_value())
        assert verdict.backend == "bsp"
        assert verdict.reason == (
            "holistic aggregate 'median_path_value' needs full path "
            "enumeration"
        )

    def test_trace_falls_back(self):
        verdict = static_eligibility(path_count(), trace=True)
        assert verdict.backend == "bsp"
        assert "trace=True" in verdict.reason

    def test_sanitize_falls_back(self):
        verdict = static_eligibility(path_count(), sanitize=True)
        assert verdict.backend == "bsp"
        assert "sanitize=True" in verdict.reason

    def test_bounded_aggregate_is_advisory_not_fatal(self):
        agg = bounded_top_k(3)
        verdict = static_eligibility(agg)
        assert verdict.backend == "vectorized"
        assert verdict.error is not None  # no (⊗, ⊕) operator pair
        # and the full typecheck still passes: the BSP engine runs it
        checker = PlanTypeChecker(scholarly_schema())
        report = checker.check(PATTERN, plan_for(PATTERN), agg)
        assert report.ok

    def test_describe_strings(self):
        assert static_eligibility(path_count()).describe().startswith(
            "vectorized: "
        )
        assert static_eligibility(median_path_value()).describe().startswith(
            "bsp (fallback: "
        )


# ----------------------------------------------------------------------
# integration: planner rejection, findings, semiring_plan lines
# ----------------------------------------------------------------------
class TestIntegration:
    def test_planner_rejects_ill_typed_pattern(self):
        pattern = LinePattern.parse("Paper -[authorBy]-> Author")
        with pytest.raises(PlanError, match="ill-typed"):
            make_plan(pattern, strategy="line", schema=scholarly_schema())

    def test_planner_accepts_well_typed_pattern(self):
        plan = make_plan(
            PATTERN, strategy="line", schema=scholarly_schema()
        )
        assert plan.height >= 1

    def test_findings_carry_rule_names(self):
        pattern = LinePattern.parse("Paper -[authorBy]-> Author")
        checker = PlanTypeChecker(scholarly_schema())
        bad = DistributiveAggregate(OP_MAX, OP_ADD)
        report = checker.check(pattern, None, bad)
        rules = {f.rule for f in report.findings()}
        assert "plan-type-edge" in rules
        assert "plan-type-aggregate" in rules

    def test_semiring_plan_with_plan_lists_nodes(self):
        from repro.accel.semiring import semiring_plan

        plan = plan_for(PATTERN)
        lines = semiring_plan(path_count(), plan)
        node_lines = [line for line in lines if line.startswith("node ")]
        assert len(node_lines) == plan.num_nodes
        assert all("vectorized" in line for line in node_lines)

    def test_extractor_verify_runs_typechecker(self):
        # a filter kind mismatch is invisible to validate_against and the
        # contract checker: only the plan typechecker catches it
        from repro.core.extractor import GraphExtractor

        graph = build_scholarly()
        graph.schema.declare_vertex_attribute("Paper", "year", "int")
        extractor = GraphExtractor(graph)
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper{year == 'old'} <-[authorBy]- Author"
        )
        # the planner's candidate rejection fires first; either way the
        # extraction dies on the typing layer with the filter problem
        with pytest.raises(PlanError, match="ill-typed|typecheck failed"):
            extractor.extract(pattern, path_count())

    def test_length_one_pattern_types_without_plan(self):
        pattern = LinePattern.parse("Author -[authorBy]-> Paper")
        checker = PlanTypeChecker(scholarly_schema())
        report = checker.check(pattern, None, path_count())
        assert report.ok
        assert len(report.nodes) == 1
