"""Property: every plan any planner strategy emits for a schema-valid
pattern typechecks clean — over random schema walks (scholarly) and the
full workload catalog (dblp/patent schemas), for representative
aggregates of all three taxonomy classes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.library import (
    avg_path_value,
    max_min,
    median_path_value,
    path_count,
)
from repro.core.planner import STRATEGIES, make_plan
from repro.graph.pattern import LinePattern
from repro.lint import PlanTypeChecker
from repro.workloads.harness import reference_graph
from repro.workloads.patterns import WORKLOADS

from tests.conftest import build_scholarly

_GRAPH = build_scholarly()

#: label -> [(edge label, arrow, next label)] walk steps in both directions
_STEPS = {
    "Author": [("authorBy", "->", "Paper")],
    "Venue": [("publishAt", "<-", "Paper")],
    "Paper": [
        ("authorBy", "<-", "Author"),
        ("publishAt", "->", "Venue"),
        ("citeBy", "->", "Paper"),
        ("citeBy", "<-", "Paper"),
    ],
}


@st.composite
def schema_walk_patterns(draw):
    """A random valid line pattern of length 2-8 over the scholarly schema."""
    length = draw(st.integers(min_value=2, max_value=8))
    label = draw(st.sampled_from(sorted(_STEPS)))
    parts = [label]
    for _ in range(length):
        edge, arrow, nxt = draw(st.sampled_from(_STEPS[label]))
        parts.append(
            f"-[{edge}]-> {nxt}" if arrow == "->" else f"<-[{edge}]- {nxt}"
        )
        label = nxt
    return LinePattern.parse(" ".join(parts))


@settings(max_examples=60, deadline=None)
@given(pattern=schema_walk_patterns(), strategy=st.sampled_from(STRATEGIES))
def test_every_strategy_emits_type_clean_plans(pattern, strategy):
    plan = make_plan(
        pattern, strategy=strategy, graph=_GRAPH, schema=_GRAPH.schema
    )
    report = PlanTypeChecker(_GRAPH.schema).check(
        pattern, plan, path_count()
    )
    assert report.ok, report.problems


@settings(max_examples=30, deadline=None)
@given(
    pattern=schema_walk_patterns(),
    factory=st.sampled_from(
        [path_count, max_min, avg_path_value, median_path_value]
    ),
)
def test_taxonomy_classes_flow_clean_through_any_walk(pattern, factory):
    plan = make_plan(pattern, strategy="line", schema=_GRAPH.schema)
    report = PlanTypeChecker(_GRAPH.schema).check(pattern, plan, factory())
    assert report.ok, report.problems


# ----------------------------------------------------------------------
# the workload catalog typechecks clean under every strategy
# ----------------------------------------------------------------------
_CATALOG_GRAPHS = {
    dataset: reference_graph(dataset, 0.05)
    for dataset in sorted({w.dataset for w in WORKLOADS.values()})
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_catalog_workloads_typecheck_clean(name, strategy):
    workload = WORKLOADS[name]
    graph = _CATALOG_GRAPHS[workload.dataset]
    pattern = workload.pattern
    plan = (
        make_plan(
            pattern, strategy=strategy, graph=graph, schema=graph.schema
        )
        if pattern.length > 1
        else None
    )
    report = PlanTypeChecker(graph.schema).check(
        pattern, plan, path_count()
    )
    assert report.ok, f"{name}/{strategy}: {report.problems}"
