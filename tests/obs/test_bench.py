"""Unit tests for repro.obs.bench (benchmark ledgers and the perf
regression gate), including the CLI's ``perf`` command."""

import json

import pytest

from repro.cli import main
from repro.errors import BenchmarkError
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchRecord,
    append_run,
    compare_directory,
    compare_ledger,
    env_compatible,
    env_fingerprint,
    ledger_path,
    load_ledger,
)
from repro.workloads.harness import Row


def make_record(name="speed", wall=0.1, env=None, **kwargs):
    return BenchRecord(
        name=name,
        timings={"run/wall_s": wall},
        env=env if env is not None else env_fingerprint(),
        **kwargs,
    )


class TestEnvFingerprint:
    def test_has_compat_keys(self):
        env = env_fingerprint()
        assert {"python", "platform", "machine", "cpus"} <= set(env)

    def test_compatibility_ignores_cpu_count(self):
        a = env_fingerprint()
        b = dict(a, cpus=999)
        assert env_compatible(a, b)

    def test_incompatible_on_platform(self):
        a = env_fingerprint()
        b = dict(a, platform="Plan9")
        assert not env_compatible(a, b)


class TestFromRows:
    def test_splits_timings_from_metrics(self):
        record = BenchRecord.from_rows(
            "bench",
            [
                (
                    "length 3",
                    {"wall_s": 0.5, "speedup": 4.0, "note": "text", "ok": True},
                )
            ],
        )
        assert record.timings == {"length 3/wall_s": 0.5}
        assert record.metrics == {"length 3/speedup": 4.0}

    def test_accepts_harness_rows_via_conftest_shape(self):
        rows = [Row("a", {"wall_s": 1.0}), Row("b", {"wall_s": 2.0})]
        record = BenchRecord.from_rows(
            "bench", [(r.label, r.values) for r in rows], backend="bsp"
        )
        assert set(record.timings) == {"a/wall_s", "b/wall_s"}
        assert record.backend == "bsp"


class TestLedgerIO:
    def test_append_and_load_round_trip(self, tmp_path):
        path = append_run(str(tmp_path), make_record(wall=0.2, workload="w1"))
        assert path == ledger_path(str(tmp_path), "speed")
        name, runs = load_ledger(path)
        assert name == "speed"
        assert len(runs) == 1
        assert runs[0].timings == {"run/wall_s": 0.2}
        assert runs[0].workload == "w1"

    def test_history_is_trimmed(self, tmp_path):
        for i in range(7):
            append_run(str(tmp_path), make_record(wall=float(i)), max_history=5)
        _, runs = load_ledger(ledger_path(str(tmp_path), "speed"))
        assert [r.timings["run/wall_s"] for r in runs] == [2.0, 3.0, 4.0, 5.0, 6.0]

    def test_ledger_is_schema_versioned(self, tmp_path):
        path = append_run(str(tmp_path), make_record())
        doc = json.loads(open(path).read())
        assert doc["schema"] == BENCH_SCHEMA

    def test_bad_schema_raises(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": "other/v9", "runs": []}))
        with pytest.raises(BenchmarkError, match="schema"):
            load_ledger(str(path))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{nope")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_ledger(str(path))


class TestCompare:
    def test_no_baseline_reports_new(self):
        (comparison,) = compare_ledger([make_record(wall=0.1)])
        assert comparison.status == "new"
        assert not comparison.regressed

    def test_within_threshold_is_ok(self):
        runs = [make_record(wall=0.10), make_record(wall=0.11)]
        (comparison,) = compare_ledger(runs, threshold=0.25)
        assert comparison.status == "ok"
        assert comparison.baseline_s == 0.10

    def test_regression_beyond_threshold(self):
        runs = [make_record(wall=0.10), make_record(wall=0.20)]
        (comparison,) = compare_ledger(runs, threshold=0.25)
        assert comparison.status == "REGRESSED"
        assert comparison.ratio == pytest.approx(2.0)

    def test_baseline_is_fastest_compatible_run(self):
        runs = [
            make_record(wall=0.30),
            make_record(wall=0.10),
            make_record(wall=0.05, env=dict(env_fingerprint(), platform="Plan9")),
            make_record(wall=0.12),
        ]
        (comparison,) = compare_ledger(runs, threshold=0.25)
        # the foreign-platform 0.05 run is ignored; best baseline is 0.10
        assert comparison.baseline_s == 0.10
        assert comparison.status == "ok"

    def test_metrics_never_gate(self):
        record = make_record(wall=0.1)
        record.metrics = {"run/speedup": 1.0}
        slow = make_record(wall=0.1)
        slow.metrics = {"run/speedup": 100.0}
        comparisons = compare_ledger([record, slow], threshold=0.0)
        assert [c.metric for c in comparisons] == ["run/wall_s"]

    def test_compare_directory_requires_ledgers(self, tmp_path):
        with pytest.raises(BenchmarkError, match="no BENCH_"):
            compare_directory(str(tmp_path))
        with pytest.raises(BenchmarkError, match="not found"):
            compare_directory(str(tmp_path / "missing"))


class TestPerfCli:
    """The acceptance criterion: ``python -m repro.cli perf`` detects an
    injected synthetic regression."""

    def test_detects_injected_regression(self, tmp_path, capsys):
        append_run(str(tmp_path), make_record(wall=0.10))
        append_run(str(tmp_path), make_record(wall=0.50))  # 5x slower
        code = main(["perf", "--dir", str(tmp_path), "--check"])
        out = capsys.readouterr()
        assert code == 1
        assert "REGRESSED" in out.out
        assert "regressed beyond" in out.err

    def test_without_check_reports_but_passes(self, tmp_path, capsys):
        append_run(str(tmp_path), make_record(wall=0.10))
        append_run(str(tmp_path), make_record(wall=0.50))
        code = main(["perf", "--dir", str(tmp_path)])
        assert code == 0
        assert "REGRESSED" in capsys.readouterr().out

    def test_clean_history_passes_check(self, tmp_path, capsys):
        append_run(str(tmp_path), make_record(wall=0.10))
        append_run(str(tmp_path), make_record(wall=0.10))
        code = main(["perf", "--dir", str(tmp_path), "--check"])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_threshold_flag_loosens_the_gate(self, tmp_path, capsys):
        append_run(str(tmp_path), make_record(wall=0.10))
        append_run(str(tmp_path), make_record(wall=0.50))
        code = main(
            ["perf", "--dir", str(tmp_path), "--check", "--threshold", "10.0"]
        )
        assert code == 0
        capsys.readouterr()

    def test_missing_directory_is_internal_error(self, tmp_path, capsys):
        code = main(["perf", "--dir", str(tmp_path / "void"), "--check"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
