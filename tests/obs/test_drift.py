"""Unit tests for repro.obs.drift (cost-model drift tracking)."""

import pytest

from repro.core.cost import CostModel
from repro.core.planner import make_plan
from repro.engine.metrics import RunMetrics
from repro.graph.pattern import LinePattern
from repro.graph.stats import GraphStatistics
from repro.obs.drift import (
    DriftRecord,
    DriftReport,
    attach_drift,
    compute_drift,
    drift_ratio,
    node_counter_name,
)
from repro.obs.instruments import InstrumentRegistry
from repro.obs.spans import NULL_TRACER, Tracer

from tests.conftest import build_scholarly


class TestDriftRatio:
    def test_plain_ratio(self):
        assert drift_ratio(10.0, 25) == 2.5

    def test_both_zero_is_perfect(self):
        assert drift_ratio(0.0, 0) == 1.0

    def test_zero_estimate_with_paths_is_inf(self):
        assert drift_ratio(0.0, 7) == float("inf")


class TestDriftRecord:
    def test_drift_and_as_dict(self):
        record = DriftRecord(
            node_id=3, segment=(0, 1, 2), superstep=1,
            estimated_paths=4.0, observed_paths=6,
        )
        assert record.drift == 1.5
        payload = record.as_dict()
        assert payload["segment"] == [0, 1, 2]
        assert payload["drift"] == 1.5


def make_report():
    return DriftReport(
        strategy="hybrid",
        records=[
            DriftRecord(0, (0, 1, 2), 0, estimated_paths=10.0, observed_paths=5),
            DriftRecord(1, (2, 3, 4), 0, estimated_paths=10.0, observed_paths=40),
            DriftRecord(2, (0, 2, 4), 1, estimated_paths=30.0, observed_paths=30),
        ],
    )


class TestDriftReport:
    def test_totals_and_plan_drift(self):
        report = make_report()
        assert report.total_estimated == 50.0
        assert report.total_observed == 75
        assert report.plan_drift == 1.5

    def test_worst_is_furthest_from_one(self):
        report = make_report()
        # drifts: 0.5, 4.0, 1.0 — node 1 is worst
        assert report.worst().node_id == 1

    def test_worst_prefers_inf(self):
        report = make_report()
        report.records.append(
            DriftRecord(3, (0, 1, 2), 1, estimated_paths=0.0, observed_paths=1)
        )
        assert report.worst().node_id == 3

    def test_worst_empty_is_none(self):
        assert DriftReport(strategy="line").worst() is None

    def test_by_superstep_groups(self):
        buckets = make_report().by_superstep()
        assert buckets[0]["estimated"] == 20.0
        assert buckets[0]["observed"] == 45
        assert buckets[0]["drift"] == 2.25
        assert buckets[1]["drift"] == 1.0


class TestComputeDrift:
    @pytest.fixture
    def plan_and_pattern(self):
        graph = build_scholarly()
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author "
            "-[authorBy]-> Paper <-[authorBy]- Author"
        )
        stats = GraphStatistics.collect(graph)
        plan = make_plan(pattern, strategy="hybrid", stats=stats)
        return plan, pattern

    def test_none_plan_returns_none(self):
        assert compute_drift(None, RunMetrics(num_workers=1)) is None

    def test_plan_without_estimates_returns_none(self, plan_and_pattern):
        plan, _ = plan_and_pattern
        plan.node_estimates = {}
        assert compute_drift(plan, RunMetrics(num_workers=1)) is None

    def test_joins_estimates_to_counters(self, plan_and_pattern):
        plan, _ = plan_and_pattern
        assert plan.node_estimates  # the planner annotated it
        metrics = RunMetrics(num_workers=1)
        for node in plan.nodes():
            metrics.add_counter(node_counter_name(node.node_id), 12)
        report = compute_drift(plan, metrics)
        assert report.strategy == "hybrid"
        assert len(report.records) == len(plan.node_estimates)
        assert all(record.observed_paths == 12 for record in report.records)
        # superstep mirrors the evaluation schedule (deepest level first)
        schedule = plan.evaluation_schedule()
        for record in report.records:
            assert record.node_id in {
                node.node_id for node in schedule[record.superstep]
            }

    def test_missing_counters_observe_zero(self, plan_and_pattern):
        plan, _ = plan_and_pattern
        report = compute_drift(plan, RunMetrics(num_workers=1))
        assert all(record.observed_paths == 0 for record in report.records)


class TestAttachDrift:
    def test_records_rows_and_plan_summary(self):
        tracer = Tracer(registry=InstrumentRegistry())
        attach_drift(tracer, make_report())
        kinds = [record["kind"] for record in tracer.records]
        assert kinds == ["drift", "drift", "drift", "plan_drift"]
        summary = tracer.records[-1]
        assert summary["strategy"] == "hybrid"
        assert summary["drift"] == 1.5

    def test_mirrors_observed_paths_into_registry(self):
        tracer = Tracer(registry=InstrumentRegistry())
        attach_drift(tracer, make_report())
        assert tracer.registry.get(node_counter_name(0)).value == 5
        assert tracer.registry.get(node_counter_name(1)).value == 40
        # cumulative across runs on a caller-owned tracer
        attach_drift(tracer, make_report())
        assert tracer.registry.get(node_counter_name(0)).value == 10

    def test_null_tracer_and_none_report_are_noops(self):
        attach_drift(NULL_TRACER, make_report())
        assert NULL_TRACER.records == []
        tracer = Tracer(registry=InstrumentRegistry())
        attach_drift(tracer, None)
        assert tracer.records == []


def test_node_counter_name():
    assert node_counter_name(7) == "node_paths:7"
