"""Unit tests for repro.obs.exporters (JSONL, chrome, Prometheus)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.exporters import (
    chrome_trace,
    export_trace,
    jsonl_text,
    prometheus_text,
    render_trace,
    trace_lines,
)
from repro.obs.instruments import InstrumentRegistry
from repro.obs.spans import Tracer


@pytest.fixture
def tracer():
    """A small but fully populated trace: nested spans, a worker span,
    an event, a drift record and every instrument kind."""
    registry = InstrumentRegistry()
    tracer = Tracer(registry=registry)
    registry.counter("msgs", "messages").inc(10)
    registry.gauge("hit_rate").set(0.25)
    registry.histogram("batch", buckets=[1, 10]).observe(3)
    root = tracer.start_span("extraction", {"pattern": "A->B"})
    step = tracer.start_span("superstep", {"superstep": 0})
    tracer.record_span("worker", tracer.start_time, tracer.start_time + 0.5,
                       {"worker": 2, "work": 9})
    tracer.event("checkpoint-saved", {"superstep": 0})
    tracer.end_span(step)
    tracer.end_span(root)
    tracer.record("drift", node_id=0, estimated_paths=4.0, observed_paths=8,
                  drift=2.0)
    return tracer


class TestJsonl:
    def test_every_line_is_json_and_header_counts(self, tracer):
        lines = jsonl_text(tracer).splitlines()
        parsed = [json.loads(line) for line in lines]
        header = parsed[0]
        assert header["kind"] == "trace"
        assert header["format"] == "repro.obs/v1"
        assert header["spans"] == 3
        assert header["records"] == 1

    def test_span_fields_survive(self, tracer):
        parsed = [json.loads(line) for line in jsonl_text(tracer).splitlines()]
        spans = {p["name"]: p for p in parsed if p["kind"] == "span"}
        assert spans["superstep"]["parent_id"] == spans["extraction"]["span_id"]
        assert spans["worker"]["attrs"] == {"worker": 2, "work": 9}
        assert spans["worker"]["duration_wall"] == 0.5
        assert spans["superstep"]["events"][0]["name"] == "checkpoint-saved"

    def test_records_and_instruments_present(self, tracer):
        parsed = [json.loads(line) for line in jsonl_text(tracer).splitlines()]
        kinds = [p["kind"] for p in parsed]
        assert "drift" in kinds
        assert kinds.count("instrument") == 3
        drift = next(p for p in parsed if p["kind"] == "drift")
        assert drift["observed_paths"] == 8

    def test_trace_lines_inf_drift_round_trips(self):
        tracer = Tracer(registry=InstrumentRegistry())
        tracer.record("drift", drift=float("inf"))
        parsed = [json.loads(line) for line in jsonl_text(tracer).splitlines()]
        assert parsed[1]["drift"] == float("inf")
        assert len(trace_lines(tracer)) == 2


class TestChrome:
    def test_document_shape(self, tracer):
        doc = chrome_trace(tracer)
        text = json.dumps(doc)
        assert json.loads(text) == doc  # round-trips
        assert isinstance(doc["traceEvents"], list)

    def test_complete_events_have_required_fields(self, tracer):
        doc = chrome_trace(tracer)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid", "args"} <= set(event)
            assert event["pid"] == 1

    def test_worker_attr_maps_to_tid(self, tracer):
        doc = chrome_trace(tracer)
        worker = next(e for e in doc["traceEvents"] if e["name"] == "worker")
        assert worker["tid"] == 3  # worker 2 → tid 3 (0 is the main track)
        other = next(e for e in doc["traceEvents"] if e["name"] == "extraction")
        assert other["tid"] == 0

    def test_instant_events_for_span_events_and_records(self, tracer):
        doc = chrome_trace(tracer)
        instants = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert {"checkpoint-saved", "drift"} <= instants
        for event in doc["traceEvents"]:
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_parent_linkage_in_args(self, tracer):
        doc = chrome_trace(tracer)
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        root_id = by_name["extraction"]["args"]["span_id"]
        assert by_name["superstep"]["args"]["parent_span"] == root_id

    def test_inf_values_stay_json_loadable(self):
        tracer = Tracer(registry=InstrumentRegistry())
        span = tracer.start_span("x", {"ratio": float("inf")})
        tracer.end_span(span)
        text = json.dumps(chrome_trace(tracer), allow_nan=False)  # no Infinity
        assert json.loads(text)["traceEvents"][0]["args"]["ratio"] == "inf"


class TestPrometheus:
    def test_counter_gauge_blocks(self, tracer):
        text = prometheus_text(tracer.registry)
        assert "# TYPE repro_msgs counter" in text
        assert "repro_msgs 10" in text
        assert "# HELP repro_msgs messages" in text
        assert "# TYPE repro_hit_rate gauge" in text
        assert "repro_hit_rate 0.25" in text

    def test_histogram_cumulative_buckets(self, tracer):
        text = prometheus_text(tracer.registry)
        assert 'repro_batch_bucket{le="1.0"} 0' in text
        assert 'repro_batch_bucket{le="10.0"} 1' in text
        assert 'repro_batch_bucket{le="+Inf"} 1' in text
        assert "repro_batch_sum 3" in text
        assert "repro_batch_count 1" in text

    def test_name_sanitisation(self):
        registry = InstrumentRegistry()
        registry.counter("node_paths:0").inc()
        text = prometheus_text(registry)
        assert "repro_node_paths_0 1" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(InstrumentRegistry()) == ""


class TestDispatch:
    def test_render_trace_unknown_format(self, tracer):
        with pytest.raises(ObservabilityError):
            render_trace(tracer, "xml")

    def test_export_trace_infers_format_from_extension(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        written = export_trace(tracer, str(path))
        assert written == str(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_export_trace_explicit_format(self, tracer, tmp_path):
        path = tmp_path / "dump.dat"
        export_trace(tracer, str(path), fmt="jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "trace"

    def test_tracer_export_uses_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        from repro.obs.spans import make_tracer

        tracer = make_tracer(f"jsonl:{path}", registry=InstrumentRegistry())
        with tracer.span("only"):
            pass
        assert tracer.export() == str(path)
        assert path.exists()

    def test_export_without_sink_raises(self):
        tracer = Tracer(registry=InstrumentRegistry())
        with pytest.raises(ObservabilityError):
            tracer.export()


class TestPrometheusRoundTrip:
    """Text-exposition details: the +Inf bucket, HELP and label-value
    escaping — checked by parsing the rendered output back."""

    def test_histogram_inf_bucket_round_trips(self):
        registry = InstrumentRegistry()
        histogram = registry.histogram("lat", "latency", buckets=[1, 10])
        for value in (0.5, 5, 500):
            histogram.observe(value)
        text = prometheus_text(registry)
        buckets = {}
        for line in text.splitlines():
            if line.startswith("repro_lat_bucket"):
                label, _, count = line.partition('"} ')
                le = label.split('le="')[1]
                buckets[le] = int(count)
        assert buckets == {"1.0": 1, "10.0": 2, "+Inf": 3}
        assert "repro_lat_count 3" in text
        # cumulative: every bucket count <= the +Inf (total) count
        assert all(c <= buckets["+Inf"] for c in buckets.values())

    def test_help_escaping(self):
        registry = InstrumentRegistry()
        registry.counter("c", 'multi\nline \\ "help"').inc()
        text = prometheus_text(registry)
        help_line = next(
            line for line in text.splitlines() if line.startswith("# HELP")
        )
        assert "\n" not in help_line
        assert "multi\\nline" in help_line
        assert "\\\\" in help_line

    def test_label_value_escaping_keeps_one_line_per_sample(self):
        registry = InstrumentRegistry()
        registry.histogram("h", "x", buckets=[1]).observe(0)
        text = prometheus_text(registry)
        # every sample is exactly one line; labels stay quoted/balanced
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert line.count('"') % 2 == 0


class TestCollapsedRenderer:
    def _profiled_tracer(self):
        tracer = Tracer(registry=InstrumentRegistry())
        span = tracer.start_span("extraction", {})
        tracer.end_span(span)
        tracer.record(
            "profile_stack", stack="extraction;mod:f", weight=40,
            unit="us", mode="cprofile",
        )
        tracer.record(
            "profile_stack", stack="extraction;mod:g", weight=2,
            unit="us", mode="cprofile",
        )
        return tracer

    def test_folded_lines(self):
        from repro.obs.exporters import collapsed_text

        text = collapsed_text(self._profiled_tracer())
        assert text.splitlines() == [
            "extraction;mod:f 40",
            "extraction;mod:g 2",
        ]

    def test_unprofiled_trace_raises_with_hint(self, tracer):
        from repro.obs.exporters import collapsed_text

        with pytest.raises(ObservabilityError, match="profile_stack"):
            collapsed_text(tracer)

    def test_export_infers_folded_extension(self, tmp_path):
        path = tmp_path / "stacks.folded"
        export_trace(self._profiled_tracer(), str(path))
        assert path.read_text().startswith("extraction;mod:f 40")

    def test_chrome_export_carries_profile_records(self, tmp_path):
        """Chrome traces ingest profile records as instant events."""
        from repro.obs.report import load_trace

        path = tmp_path / "trace.json"
        export_trace(self._profiled_tracer(), str(path), "chrome")
        document = json.loads(path.read_text())
        names = [e.get("name") for e in document["traceEvents"]]
        assert names.count("profile_stack") == 2
        data = load_trace(str(path))
        assert [s["weight"] for s in data.profile_stacks] == [40, 2]
