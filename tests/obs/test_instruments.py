"""Unit tests for repro.obs.instruments."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.instruments import (
    Counter,
    Gauge,
    Histogram,
    InstrumentRegistry,
    default_registry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter("c").inc(-1)

    def test_as_dict(self):
        counter = Counter("c")
        counter.inc(3)
        assert counter.as_dict() == {"kind": "counter", "name": "c", "value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", buckets=[1, 10, 100])
        for value in (0.5, 5, 50, 500):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]  # one per bucket + inf
        assert histogram.count == 4
        assert histogram.sum == 555.5

    def test_cumulative_is_monotone_and_ends_at_inf(self):
        histogram = Histogram("h", buckets=[1, 10])
        for value in (0.5, 0.7, 5, 500):
            histogram.observe(value)
        cumulative = histogram.cumulative()
        assert cumulative == [(1, 2), (10, 3), (float("inf"), 4)]

    def test_boundary_is_inclusive(self):
        histogram = Histogram("h", buckets=[10])
        histogram.observe(10)
        assert histogram.counts == [1, 0]

    def test_mean(self):
        histogram = Histogram("h", buckets=[10])
        assert histogram.mean == 0.0
        histogram.observe(2)
        histogram.observe(4)
        assert histogram.mean == 3.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=[10, 1])


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = InstrumentRegistry()
        first = registry.counter("c")
        first.inc(7)
        again = registry.counter("c")
        assert again is first
        assert again.value == 7

    def test_kind_mismatch_raises(self):
        registry = InstrumentRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_collect_preserves_registration_order(self):
        registry = InstrumentRegistry()
        registry.gauge("b")
        registry.counter("a")
        assert [i.name for i in registry.collect()] == ["b", "a"]

    def test_reset(self):
        registry = InstrumentRegistry()
        registry.counter("c")
        assert len(registry) == 1
        registry.reset()
        assert len(registry) == 0
        assert registry.get("c") is None

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()
