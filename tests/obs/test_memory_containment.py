"""Observed-vs-certified memory containment across the workload catalog.

The acceptance bar for the profiling layer: every named paper workload,
on both backends, runs with memory watermarks enabled and its observed
tracemalloc peak stays inside the certified byte-model allowance
(``certified hi × MEMORY_OVERHEAD_FACTOR + slack``) — zero
``MemoryBoundsViolationError`` escalations.  A violation here means
either the certified model of :mod:`repro.lint.bounds` lost soundness
or the engines started allocating far outside their byte budget.
"""

import pytest

from repro.core.extractor import GraphExtractor
from repro.workloads.harness import reference_graph
from repro.workloads.patterns import WORKLOADS

SCALE = 0.2

_GRAPHS = {}


def _graph(dataset):
    if dataset not in _GRAPHS:
        _GRAPHS[dataset] = reference_graph(dataset, SCALE)
    return _GRAPHS[dataset]


@pytest.mark.parametrize("backend", ["bsp", "vectorized"])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_catalog_contained(name, backend):
    workload = WORKLOADS[name]
    extractor = GraphExtractor(
        _graph(workload.dataset), backend=backend, profile="memory"
    )
    result = extractor.extract(workload.pattern)
    assert result.graph.num_edges() >= 0
    containment = extractor.last_memory_containment
    assert containment is not None, (name, backend)
    assert containment["contained"] is True, (name, backend, containment)
    assert containment["observed_peak_bytes"] >= 0
    # the record names the backend that actually ran (vectorized may
    # have fallen back for ineligible patterns)
    assert containment["backend"] == extractor.last_backend
