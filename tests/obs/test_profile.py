"""Unit tests for repro.obs.profile (span-attributed profiling,
memory watermarks, and the observed-vs-certified memory join)."""

import json

import pytest

from repro.core.extractor import GraphExtractor
from repro.datasets.dblp import generate_dblp
from repro.errors import MemoryBoundsViolationError, ProfileError
from repro.graph.pattern import LinePattern
from repro.obs.instruments import InstrumentRegistry
from repro.obs.profile import (
    MEMORY_OVERHEAD_FACTOR,
    NULL_PROFILE,
    MemoryWatermark,
    ProfileSession,
    make_profiler,
    owns_profiler,
)
from repro.obs.spans import NULL_TRACER, Tracer


@pytest.fixture
def graph():
    return generate_dblp(n_authors=30, n_papers=40, n_venues=4, seed=3)


@pytest.fixture
def pattern():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestMakeProfiler:
    def test_none_and_false_return_the_shared_null_session(self):
        assert make_profiler(None) is NULL_PROFILE
        assert make_profiler(False) is NULL_PROFILE
        assert not NULL_PROFILE.enabled

    def test_true_means_sampling_plus_memory(self):
        session = make_profiler(True)
        assert session.enabled
        assert session.cpu is not None and session.cpu.mode == "sampling"
        assert session.memory is not None

    @pytest.mark.parametrize(
        "spec,cpu_mode,has_memory",
        [
            ("cprofile", "cprofile", False),
            ("sampling", "sampling", False),
            ("cpu", "sampling", False),
            ("memory", None, True),
            ("mem", None, True),
            ("cprofile+memory", "cprofile", True),
            ("sampling,mem", "sampling", True),
        ],
    )
    def test_mode_strings(self, spec, cpu_mode, has_memory):
        session = make_profiler(spec)
        if cpu_mode is None:
            assert session.cpu is None
        else:
            assert session.cpu.mode == cpu_mode
        assert (session.memory is not None) == has_memory

    def test_out_path_suffix(self):
        session = make_profiler("cprofile:/tmp/stacks.folded")
        assert session.out == "/tmp/stacks.folded"

    def test_unknown_mode_raises(self):
        with pytest.raises(ProfileError, match="unknown profile mode"):
            make_profiler("perf")

    def test_two_cpu_modes_raise(self):
        with pytest.raises(ProfileError, match="two CPU modes"):
            make_profiler("cprofile+sampling")

    def test_instance_passes_through_and_stays_caller_owned(self):
        session = ProfileSession(cpu=None, memory=True)
        assert make_profiler(session) is session
        assert not owns_profiler(session)
        assert owns_profiler("cprofile")
        assert owns_profiler(True)


class TestAttachment:
    def test_attach_to_disabled_tracer_raises(self):
        session = ProfileSession(cpu=None, memory=True)
        with pytest.raises(ProfileError, match="profiling implies tracing"):
            session.attach(NULL_TRACER)

    def test_attach_registers_and_detach_unregisters(self):
        tracer = Tracer(registry=InstrumentRegistry())
        session = ProfileSession(cpu=None, memory=True)
        session.attach(tracer)
        assert tracer.profiler is session
        session.detach()
        assert tracer.profiler is None


class TestCProfileAttribution:
    def _traced_run(self):
        tracer = Tracer(registry=InstrumentRegistry())
        session = ProfileSession(cpu="cprofile", memory=False)
        session.attach(tracer)
        session.start()
        root = tracer.start_span("extraction", {})
        run = tracer.start_span("engine-run", {})
        for step in range(2):
            span = tracer.start_span("superstep", {"superstep": step})
            sum(i * i for i in range(40_000))  # visible self-time
            tracer.end_span(span)
        tracer.end_span(run)
        tracer.end_span(root)
        session.stop()
        return session

    def test_frames_attributed_to_superstep_paths(self):
        session = self._traced_run()
        stacks = session.collapsed()
        assert stacks
        step_keys = [
            key for key in stacks if key.startswith("extraction;engine-run;superstep ")
        ]
        assert step_keys, sorted(stacks)
        # the genexpr self-time lands under the superstep that ran it
        assert any("genexpr" in key for key in step_keys)

    def test_collapsed_text_is_folded_format_heaviest_first(self):
        session = self._traced_run()
        text = session.collapsed_text()
        lines = text.strip().splitlines()
        weights = []
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and ";" not in weight
            weights.append(float(weight))
        assert weights == sorted(weights, reverse=True)
        assert text.endswith("\n")

    def test_export_collapsed_writes_the_file(self, tmp_path):
        session = self._traced_run()
        path = tmp_path / "stacks.folded"
        assert session.export_collapsed(str(path)) == str(path)
        assert path.read_text() == session.collapsed_text()


class TestMemoryWatermark:
    def test_superstep_watermarks_and_span_attr(self):
        tracer = Tracer(registry=InstrumentRegistry())
        session = ProfileSession(cpu=None, memory=True)
        session.attach(tracer)
        session.start()
        root = tracer.start_span("extraction", {})
        span = tracer.start_span("superstep", {"superstep": 0})
        blob = [bytes(1000) for _ in range(200)]  # ~200 KB held
        tracer.end_span(span)
        tracer.end_span(root)
        session.stop()
        del blob
        assert span.attrs["mem_peak_bytes"] > 100_000
        (entry,) = session.memory.watermarks
        assert entry["superstep"] == 0
        assert entry["peak_bytes"] == span.attrs["mem_peak_bytes"]
        assert session.run_peak_bytes > 100_000
        assert session.rss_bytes is None or session.rss_bytes > 0

    def test_run_peak_none_without_watermark_spans(self):
        watermark = MemoryWatermark()
        watermark.start()
        watermark.stop()
        assert watermark.run_peak_bytes is None


class TestEmit:
    def test_records_land_on_the_tracer(self):
        tracer = Tracer(registry=InstrumentRegistry())
        session = ProfileSession(cpu="cprofile", memory=True)
        session.attach(tracer)
        session.start()
        root = tracer.start_span("extraction", {})
        span = tracer.start_span("superstep", {"superstep": 0})
        sum(i * i for i in range(40_000))
        tracer.end_span(span)
        tracer.end_span(root)
        session.stop()
        session.emit()
        kinds = [record["kind"] for record in tracer.records]
        assert "profile_stack" in kinds
        assert "memory_watermark" in kinds
        assert kinds[-1] == "profile_summary"
        stack_records = [
            r for r in tracer.records if r["kind"] == "profile_stack"
        ]
        assert all(r["unit"] == "us" for r in stack_records)

    def test_emit_writes_out_path(self, tmp_path):
        out = tmp_path / "run.collapsed"
        tracer = Tracer(registry=InstrumentRegistry())
        session = ProfileSession(cpu="cprofile", memory=False, out=str(out))
        session.attach(tracer)
        session.start()
        root = tracer.start_span("extraction", {})
        sum(i * i for i in range(40_000))
        tracer.end_span(root)
        session.stop()
        session.emit()
        assert out.read_text() == session.collapsed_text()


class TestExtractorIntegration:
    def test_profile_disabled_is_free(self, graph, pattern):
        extractor = GraphExtractor(graph)
        extractor.extract(pattern)
        assert extractor.last_profile is None
        assert extractor.last_memory_containment is None

    def test_profile_enabled_produces_everything(self, graph, pattern):
        extractor = GraphExtractor(graph, profile="cprofile+memory")
        result = extractor.extract(pattern)
        assert result.graph.num_edges() > 0
        session = extractor.last_profile
        assert session is not None
        assert session.collapsed()
        assert session.memory.watermarks
        # profiling implies tracing: the trace is retained and carries
        # the profile records plus per-superstep mem_peak_bytes attrs
        tracer = extractor.last_trace
        assert tracer is not None
        kinds = {record["kind"] for record in tracer.records}
        assert {"profile_stack", "memory_watermark", "memory_containment"} <= kinds
        steps = [s for s in tracer.spans if s.name == "superstep"]
        assert steps and all("mem_peak_bytes" in s.attrs for s in steps)

    def test_memory_containment_record_is_contained(self, graph, pattern):
        extractor = GraphExtractor(graph, profile="memory")
        extractor.extract(pattern)
        containment = extractor.last_memory_containment
        assert containment is not None
        assert containment["contained"] is True
        assert containment["backend"] == "bsp"
        assert 0 < containment["observed_peak_bytes"] <= containment[
            "allowed_peak_bytes"
        ]
        assert containment["allowed_peak_bytes"] >= (
            containment["certified_hi_bytes"] * MEMORY_OVERHEAD_FACTOR
        )

    def test_violation_raises_loudly(self, graph, pattern, monkeypatch):
        # shrink the allowance to force observed > allowed
        monkeypatch.setattr(
            "repro.obs.profile.MEMORY_OVERHEAD_FACTOR", 0.0
        )
        monkeypatch.setattr(
            "repro.obs.profile.MEMORY_BASELINE_SLACK_BYTES", 0
        )
        extractor = GraphExtractor(graph, profile="memory")
        with pytest.raises(MemoryBoundsViolationError, match="certified"):
            extractor.extract(pattern)
        containment = extractor.last_memory_containment
        assert containment is not None and containment["contained"] is False

    def test_per_call_profile_overrides_constructor(self, graph, pattern):
        extractor = GraphExtractor(graph)
        extractor.extract(pattern, profile="memory")
        assert extractor.last_profile is not None
        extractor.extract(pattern)
        assert extractor.last_profile is None

    def test_caller_owned_session_not_auto_stopped(self, graph, pattern):
        session = ProfileSession(cpu=None, memory=True)
        extractor = GraphExtractor(graph, profile=session)
        session.start()
        extractor.extract(pattern)
        extractor.extract(pattern)  # accumulates across runs
        session.stop()
        assert extractor.last_profile is session
        assert len(session.memory.watermarks) >= 2

    def test_vectorized_backend_watermarks_kernel_levels(self, graph, pattern):
        extractor = GraphExtractor(graph, backend="vectorized", profile="memory")
        extractor.extract(pattern)
        containment = extractor.last_memory_containment
        assert containment is not None
        assert containment["backend"] == extractor.last_backend

    def test_profile_out_spec_exports(self, graph, pattern, tmp_path):
        out = tmp_path / "profile.folded"
        extractor = GraphExtractor(graph, profile=f"cprofile:{out}")
        extractor.extract(pattern)
        text = out.read_text()
        assert text and "extraction" in text


class TestJsonlRegression:
    def test_memory_containment_record_survives_jsonl_export(
        self, graph, pattern, tmp_path
    ):
        """Regression: observed-vs-certified containment records must
        appear in exported JSONL traces."""
        trace = tmp_path / "trace.jsonl"
        extractor = GraphExtractor(
            graph, trace=str(trace), profile="memory"
        )
        extractor.extract(pattern)
        entries = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        containments = [
            e for e in entries if e.get("kind") == "memory_containment"
        ]
        assert len(containments) == 1
        assert containments[0]["contained"] is True
        assert containments[0]["observed_peak_bytes"] > 0
        watermarks = [
            e for e in entries if e.get("kind") == "memory_watermark"
        ]
        assert watermarks
