"""Unit tests for repro.obs.report (trace loading, superstep tables)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.exporters import export_trace
from repro.obs.instruments import InstrumentRegistry
from repro.obs.report import load_trace, render_report, superstep_table
from repro.obs.spans import Tracer


def record_run(tracer):
    """Record a two-superstep run with drift, mirroring a real trace."""
    root = tracer.start_span(
        "extraction", {"pattern": "A -[e]-> B", "workers": 2}
    )
    engine = tracer.start_span("engine-run", {"engine": "BSPEngine"})
    for step, (makespan, work, messages) in enumerate(
        [(30, 40, 12), (20, 40, 0)]
    ):
        span = tracer.start_span(
            "superstep",
            {
                "superstep": step,
                "workers": 2,
                "makespan": makespan,
                "total_work": work,
                "messages_sent": messages,
            },
        )
        tracer.end_span(span)
    tracer.end_span(engine)
    tracer.end_span(root)
    tracer.record(
        "drift", node_id=0, segment=[0, 1, 2], superstep=0,
        estimated_paths=10.0, observed_paths=12, drift=1.2,
    )
    tracer.record(
        "plan_drift", strategy="hybrid", estimated_paths=10.0,
        observed_paths=12, drift=1.2,
    )


@pytest.fixture
def tracer():
    tracer = Tracer(registry=InstrumentRegistry())
    record_run(tracer)
    return tracer


class TestLoadTrace:
    @pytest.mark.parametrize("fmt,ext", [("jsonl", ".jsonl"), ("chrome", ".json")])
    def test_round_trip_both_formats(self, tracer, tmp_path, fmt, ext):
        path = str(tmp_path / f"trace{ext}")
        export_trace(tracer, path, fmt)
        data = load_trace(path)
        assert len(data.supersteps) == 2
        assert data.extraction["pattern"] == "A -[e]-> B"
        assert data.plan_drift["strategy"] == "hybrid"
        assert data.drift[0]["observed_paths"] == 12
        assert "superstep" in data.span_names

    def test_bare_chrome_event_array(self, tracer, tmp_path):
        from repro.obs.exporters import chrome_trace

        path = tmp_path / "bare.json"
        path.write_text(json.dumps(chrome_trace(tracer)["traceEvents"]))
        data = load_trace(str(path))
        assert len(data.supersteps) == 2

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError):
            load_trace(str(path))

    def test_garbage_raises(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all")
        with pytest.raises(ObservabilityError):
            load_trace(str(path))

    def test_json_without_trace_events_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(ObservabilityError):
            load_trace(str(path))

    def test_jsonl_with_bad_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trace"}\n{broken\n')
        with pytest.raises(ObservabilityError, match="bad.jsonl:2"):
            load_trace(str(path))


class TestSuperstepTable:
    def test_columns_and_values(self, tracer, tmp_path):
        path = str(tmp_path / "t.jsonl")
        export_trace(tracer, path, "jsonl")
        table = superstep_table(load_trace(path))
        header, *rest = table.splitlines()
        assert "per-superstep run report — A -[e]-> B" in header
        assert "makespan" in rest[0] and "drift" in rest[0]
        step0 = next(line for line in rest if line.startswith("superstep 0"))
        assert "30" in step0  # makespan
        assert "1.5" in step0  # imbalance: 30 / (40/2)
        assert "12" in step0  # messages and observed paths
        assert "1.2" in step0  # drift
        step1 = next(line for line in rest if line.startswith("superstep 1"))
        assert "-" in step1  # no drift for the aggregation superstep

    def test_no_supersteps_raises(self, tmp_path):
        tracer = Tracer(registry=InstrumentRegistry())
        with tracer.span("extraction"):
            pass
        path = str(tmp_path / "t.jsonl")
        export_trace(tracer, path, "jsonl")
        with pytest.raises(ObservabilityError, match="no superstep spans"):
            superstep_table(load_trace(path))


class TestRenderReport:
    def test_includes_plan_drift_line(self, tracer, tmp_path):
        path = str(tmp_path / "t.json")
        export_trace(tracer, path, "chrome")
        report = render_report(path)
        assert "plan drift [hybrid]" in report
        assert "drift 1.2" in report

    def test_without_drift_only_table(self, tmp_path):
        tracer = Tracer(registry=InstrumentRegistry())
        span = tracer.start_span(
            "superstep",
            {"superstep": 0, "workers": 1, "makespan": 5, "total_work": 5,
             "messages_sent": 0},
        )
        tracer.end_span(span)
        path = str(tmp_path / "t.jsonl")
        export_trace(tracer, path, "jsonl")
        report = render_report(path)
        assert "plan drift" not in report
        assert "superstep 0" in report


def record_profiled_run(tracer):
    """A profiled run: mem_peak_bytes span attrs plus profile records,
    as ProfileSession.emit leaves them on the tracer."""
    root = tracer.start_span("extraction", {"pattern": "A -[e]-> B",
                                            "backend": "bsp"})
    engine = tracer.start_span("engine-run", {"engine": "BSPEngine"})
    for step in range(2):
        span = tracer.start_span(
            "superstep",
            {"superstep": step, "workers": 2, "makespan": 10,
             "total_work": 20, "messages_sent": 4,
             "mem_peak_bytes": 4096 * (step + 1)},
        )
        tracer.end_span(span)
    tracer.end_span(engine)
    tracer.end_span(root)
    tracer.record("profile_stack",
                  stack="extraction;engine-run;superstep 0;mod:hot",
                  weight=900, unit="us", mode="cprofile")
    tracer.record("profile_stack",
                  stack="extraction;engine-run;superstep 1;mod:cold",
                  weight=100, unit="us", mode="cprofile")
    tracer.record("memory_watermark", superstep=0, peak_bytes=4096,
                  current_bytes=1024)
    tracer.record("memory_watermark", superstep=1, peak_bytes=8192,
                  current_bytes=2048)
    tracer.record("memory_containment", backend="bsp",
                  observed_peak_bytes=8192, certified_lo_bytes=512.0,
                  certified_hi_bytes=1024.0, allowed_peak_bytes=17408.0,
                  rss_bytes=1 << 24, contained=True)
    tracer.record("profile_summary", duration_s=0.5,
                  cpu={"mode": "cprofile", "profiles": 3})


@pytest.fixture
def profiled_tracer():
    tracer = Tracer(registry=InstrumentRegistry())
    record_profiled_run(tracer)
    return tracer


class TestNonTraceSniffing:
    def test_prometheus_export_names_the_kind_and_path(self, tmp_path):
        path = tmp_path / "metrics.prom"
        path.write_text(
            "# HELP repro_msgs messages\n# TYPE repro_msgs counter\n"
            "repro_msgs 10\n"
        )
        with pytest.raises(ObservabilityError) as err:
            load_trace(str(path))
        assert "Prometheus text exposition" in str(err.value)
        assert "metrics.prom" in str(err.value)

    def test_collapsed_stacks_name_the_kind(self, tmp_path):
        path = tmp_path / "profile.folded"
        path.write_text("extraction;superstep 0;mod:f 120\n")
        with pytest.raises(ObservabilityError, match="collapsed-stack"):
            load_trace(str(path))

    def test_real_prom_export_is_rejected(self, tmp_path):
        from repro.obs.exporters import export_trace as export

        tracer = Tracer(registry=InstrumentRegistry())
        tracer.registry.counter("msgs", "messages sent").inc(3)
        span = tracer.start_span("extraction", {})
        tracer.end_span(span)
        path = str(tmp_path / "run.prom")
        export(tracer, path, "prometheus")
        with pytest.raises(ObservabilityError, match="not a trace"):
            load_trace(path)


class TestProfiledReport:
    @pytest.mark.parametrize("fmt,ext", [("jsonl", ".jsonl"), ("chrome", ".json")])
    def test_profile_records_round_trip(self, profiled_tracer, tmp_path,
                                        fmt, ext):
        path = str(tmp_path / f"trace{ext}")
        export_trace(profiled_tracer, path, fmt)
        data = load_trace(path)
        assert len(data.profile_stacks) == 2
        assert len(data.memory_watermarks) == 2
        assert data.memory_containment["contained"] is True
        assert data.profile_summary["cpu"]["mode"] == "cprofile"

    def test_superstep_table_gains_mem_peak_column(self, profiled_tracer,
                                                   tmp_path):
        path = str(tmp_path / "t.jsonl")
        export_trace(profiled_tracer, path, "jsonl")
        table = superstep_table(load_trace(path))
        header = table.splitlines()[1]
        assert "mem_peak" in header
        assert "4.0KiB" in table and "8.0KiB" in table

    def test_render_report_includes_profile_and_memory_sections(
        self, profiled_tracer, tmp_path
    ):
        path = str(tmp_path / "t.jsonl")
        export_trace(profiled_tracer, path, "jsonl")
        report = render_report(path)
        assert "hottest profiled stacks [cprofile]" in report
        assert "mod:hot" in report
        assert "memory watermarks (tracemalloc)" in report
        assert "observed vs certified [bsp]" in report
        assert "contained" in report

    def test_unprofiled_report_has_no_profile_sections(self, tracer,
                                                       tmp_path):
        path = str(tmp_path / "t.jsonl")
        export_trace(tracer, path, "jsonl")
        report = render_report(path)
        assert "hottest profiled stacks" not in report
        assert "memory watermarks" not in report
        assert "mem_peak" not in report


class TestReportData:
    def test_document_shape(self, profiled_tracer, tmp_path):
        from repro.obs.report import report_data

        path = str(tmp_path / "t.jsonl")
        export_trace(profiled_tracer, path, "jsonl")
        document = report_data(path)
        assert document["schema"] == "repro.obs.report/v1"
        assert len(document["supersteps"]) == 2
        assert document["memory_containment"]["observed_peak_bytes"] == 8192
        assert len(document["profile_stacks"]) == 2
        assert json.dumps(document)  # JSON-serialisable end to end

    def test_unprofiled_document_omits_profile_keys(self, tracer, tmp_path):
        from repro.obs.report import report_data

        path = str(tmp_path / "t.jsonl")
        export_trace(tracer, path, "jsonl")
        document = report_data(path)
        assert "profile_stacks" not in document
        assert "memory_containment" not in document
        assert document["supersteps"][0]["drift"] == pytest.approx(1.2)


def record_batch_run(tracer):
    """Record a multi-query batch trace, mirroring what the multi-query
    scheduler and the extractor's cache record emit."""
    root = tracer.start_span(
        "multiquery", {"requests": 3, "backend": "vectorized"}
    )
    for height, (nodes, work, kernel_s) in enumerate(
        [(4, 0, 0.001), (2, 800, 0.0005)]
    ):
        span = tracer.start_span(
            "shared-level",
            {
                "height": height,
                "nodes": nodes,
                "total_work": work,
                "kernel_time_s": kernel_s,
            },
        )
        tracer.end_span(span)
    assemble = tracer.start_span("shared-assemble", {"groups": 2})
    tracer.end_span(assemble)
    counters = dict(
        multiquery_requests=3, multiquery_nodes_shared=2,
        multiquery_products_saved=4, multiquery_products_total=6,
        multiquery_slots_saved=4, multiquery_slots_total=8,
        multiquery_assemblies=2,
    )
    root.set_attrs(counters)
    tracer.end_span(root)
    tracer.record("multiquery", **counters)
    tracer.record(
        "cache", plan_cache_hits=2, plan_cache_misses=1,
        compact_cache_hits=1, compact_cache_misses=1,
    )


@pytest.fixture
def batch_tracer():
    tracer = Tracer(registry=InstrumentRegistry())
    record_batch_run(tracer)
    return tracer


class TestBatchReport:
    def test_batch_trace_renders_shared_dag_and_cache(
        self, batch_tracer, tmp_path
    ):
        path = str(tmp_path / "batch.jsonl")
        export_trace(batch_tracer, path, "jsonl")
        report = render_report(path)
        assert "shared DAG (multi-query batch)" in report
        assert "height 0" in report and "height 1" in report
        assert "3 requests" in report
        assert "cache effectiveness" in report
        assert "plan_cache_hits" in report

    def test_batch_document_keys(self, batch_tracer, tmp_path):
        from repro.obs.report import report_data

        path = str(tmp_path / "batch.jsonl")
        export_trace(batch_tracer, path, "jsonl")
        document = report_data(path)
        assert document["multiquery"]["multiquery_requests"] == 3
        assert document["cache"]["plan_cache_misses"] == 1
        assert len(document["shared_levels"]) == 2
        assert json.dumps(document)

    def test_empty_trace_still_raises(self, tmp_path):
        tracer = Tracer(registry=InstrumentRegistry())
        span = tracer.start_span("extraction", {})
        tracer.end_span(span)
        path = str(tmp_path / "empty.jsonl")
        export_trace(tracer, path, "jsonl")
        with pytest.raises(ObservabilityError):
            render_report(path)

    def test_real_batch_trace_round_trips(self, tmp_path):
        from repro.aggregates.library import path_count
        from repro.core.extractor import GraphExtractor
        from repro.graph.pattern import LinePattern

        from tests.conftest import build_scholarly

        graph = build_scholarly()
        tracer = Tracer(registry=InstrumentRegistry())
        extractor = GraphExtractor(
            graph, backend="vectorized", plan_cache=True
        )
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        extractor.extract_many([pattern, pattern], tracer=tracer)
        path = str(tmp_path / "real.jsonl")
        export_trace(tracer, path, "jsonl")
        report = render_report(path)
        assert "shared DAG (multi-query batch)" in report
        assert "cache effectiveness" in report
        assert "2 requests" in report
