"""Unit tests for repro.obs.spans (tracer, span tree, specs)."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.instruments import InstrumentRegistry
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    TracerBase,
    make_tracer,
    owns_tracer,
)


@pytest.fixture
def tracer():
    return Tracer(registry=InstrumentRegistry())


class TestSpanTree:
    def test_nesting_infers_parents(self, tracer):
        root = tracer.start_span("root")
        child = tracer.start_span("child")
        grandchild = tracer.start_span("grandchild")
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        tracer.end_span(grandchild)
        tracer.end_span(child)
        tracer.end_span(root)
        assert tracer.root_spans() == [root]
        assert tracer.children(root) == [child]

    def test_end_span_closes_dangling_children(self, tracer):
        root = tracer.start_span("root")
        child = tracer.start_span("child")
        tracer.end_span(root)  # child never explicitly ended
        assert child.end_wall is not None
        assert tracer.current() is None

    def test_end_unopened_span_raises(self, tracer):
        span = tracer.start_span("a")
        tracer.end_span(span)
        with pytest.raises(ObservabilityError):
            tracer.end_span(span)

    def test_context_manager(self, tracer):
        with tracer.span("phase", {"k": 1}) as span:
            assert tracer.current() is span
        assert span.end_wall is not None
        assert span.attrs == {"k": 1}
        assert span.duration_wall >= 0

    def test_record_span_keeps_given_timings(self, tracer):
        parent = tracer.start_span("run")
        span = tracer.record_span("worker", 10.0, 12.5, {"worker": 0})
        assert span.parent_id == parent.span_id
        assert span.duration_wall == 2.5

    def test_record_span_explicit_parent(self, tracer):
        a = tracer.start_span("a")
        tracer.end_span(a)
        span = tracer.record_span("w", 0.0, 1.0, parent=a)
        assert span.parent_id == a.span_id

    def test_find(self, tracer):
        tracer.start_span("superstep")
        tracer.start_span("superstep")
        assert len(tracer.find("superstep")) == 2

    def test_event_attaches_to_open_span(self, tracer):
        span = tracer.start_span("run")
        tracer.event("checkpoint-saved", {"superstep": 3})
        assert span.events[0].name == "checkpoint-saved"
        assert span.events[0].attrs == {"superstep": 3}

    def test_event_without_open_span_becomes_record(self, tracer):
        tracer.event("orphan")
        assert tracer.records[0]["kind"] == "event"
        assert tracer.records[0]["name"] == "orphan"

    def test_records(self, tracer):
        tracer.record("drift", node_id=1, drift=2.0)
        assert tracer.records == [{"kind": "drift", "node_id": 1, "drift": 2.0}]

    def test_as_dict_round_trip_fields(self, tracer):
        with tracer.span("x", {"a": 1}) as span:
            span.add_event("e")
        payload = span.as_dict()
        assert payload["name"] == "x"
        assert payload["attrs"] == {"a": 1}
        assert payload["events"][0]["name"] == "e"
        assert payload["duration_wall"] == span.duration_wall


class TestNullTracer:
    def test_shared_singleton_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_all_operations_are_noops(self):
        span = NULL_TRACER.start_span("x", {"a": 1})
        span.set_attr("b", 2)
        span.set_attrs({"c": 3})
        span.add_event("e")
        NULL_TRACER.end_span(span)
        NULL_TRACER.record_span("w", 0.0, 1.0)
        NULL_TRACER.event("e")
        NULL_TRACER.record("drift", x=1)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.records == []
        assert span.attrs == {}
        assert span.events == []

    def test_export_raises(self):
        with pytest.raises(ObservabilityError):
            NULL_TRACER.export()

    def test_context_manager_is_noop(self):
        with NULL_TRACER.span("x") as span:
            assert span.name == "null"
        assert NULL_TRACER.spans == []


class TestMakeTracer:
    def test_none_and_false_are_off(self):
        assert make_tracer(None) is NULL_TRACER
        assert make_tracer(False) is NULL_TRACER

    def test_true_and_mem_are_in_memory(self):
        for spec in (True, "mem"):
            tracer = make_tracer(spec)
            assert isinstance(tracer, Tracer)
            assert tracer.sink is None

    def test_instance_passes_through(self):
        tracer = Tracer(registry=InstrumentRegistry())
        assert make_tracer(tracer) is tracer

    @pytest.mark.parametrize(
        "spec,fmt,path",
        [
            ("jsonl:/tmp/t.log", "jsonl", "/tmp/t.log"),
            ("chrome:/tmp/t.out", "chrome", "/tmp/t.out"),
            ("prom:/tmp/m.txt", "prometheus", "/tmp/m.txt"),
            ("prometheus:/tmp/m", "prometheus", "/tmp/m"),
        ],
    )
    def test_prefixed_specs(self, spec, fmt, path):
        tracer = make_tracer(spec)
        assert tracer.sink == (fmt, path)

    @pytest.mark.parametrize(
        "path,fmt",
        [
            ("trace.jsonl", "jsonl"),
            ("trace.json", "chrome"),
            ("metrics.prom", "prometheus"),
            ("metrics.txt", "prometheus"),
        ],
    )
    def test_bare_path_sniffs_extension(self, path, fmt):
        assert make_tracer(path).sink == (fmt, path)

    def test_unknown_extension_raises(self):
        with pytest.raises(ObservabilityError):
            make_tracer("trace.xml")

    def test_empty_path_raises(self):
        with pytest.raises(ObservabilityError):
            make_tracer("jsonl:")

    def test_unsupported_spec_raises(self):
        with pytest.raises(ObservabilityError):
            make_tracer(123)

    def test_custom_registry_is_used(self):
        registry = InstrumentRegistry()
        assert make_tracer(True, registry=registry).registry is registry


class TestOwnership:
    def test_specs_are_owned_instances_are_not(self):
        assert owns_tracer(None) is True
        assert owns_tracer(True) is True
        assert owns_tracer("jsonl:/tmp/x.jsonl") is True
        assert owns_tracer(Tracer(registry=InstrumentRegistry())) is False
        assert owns_tracer(NULL_TRACER) is False
        assert isinstance(NULL_TRACER, TracerBase)
