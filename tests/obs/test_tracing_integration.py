"""Integration: the span tree and drift records of real traced runs.

Covers the acceptance shape of the observability subsystem: a traced
extraction records extraction → plan-selection / engine-run → superstep →
worker spans, per-node drift, and instruments; every engine honours
``run(trace=...)``; untraced runs stay untraced but still compute drift.
"""

import json

import pytest

from repro.aggregates import library
from repro.core.evaluator import run_extraction
from repro.core.extractor import GraphExtractor
from repro.engine.checkpoint import RecoverableBSPEngine
from repro.engine.parallel import ThreadedBSPEngine
from repro.graph.pattern import LinePattern
from repro.obs.instruments import InstrumentRegistry
from repro.obs.spans import Tracer

from tests.conftest import build_scholarly

CHAIN = (
    "Author -[authorBy]-> Paper <-[authorBy]- Author "
    "-[authorBy]-> Paper <-[authorBy]- Author"
)


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def pattern():
    return LinePattern.parse(CHAIN)


def fresh_tracer():
    return Tracer(registry=InstrumentRegistry())


class TestExtractorTracing:
    def test_span_hierarchy(self, graph, pattern):
        extractor = GraphExtractor(graph, num_workers=2, trace=True)
        extractor.extract(pattern, library.path_count())
        tracer = extractor.last_trace
        assert tracer is not None and tracer.enabled

        [root] = tracer.root_spans()
        assert root.name == "extraction"
        assert root.attrs["pattern"] == CHAIN
        assert root.attrs["workers"] == 2
        assert root.attrs["supersteps"] >= 2

        child_names = {span.name for span in tracer.children(root)}
        assert child_names == {"plan-selection", "engine-run"}

        [plan_span] = tracer.find("plan-selection")
        assert plan_span.attrs["plan_strategy"] == "hybrid"
        assert plan_span.attrs["plan_nodes"] >= 1

        [run_span] = tracer.find("engine-run")
        supersteps = tracer.find("superstep")
        assert len(supersteps) == run_span.attrs["supersteps"]
        for step_span in supersteps:
            assert step_span.parent_id == run_span.span_id
            workers = [
                w for w in tracer.children(step_span) if w.name == "worker"
            ]
            assert len(workers) == 2
            assert {w.attrs["worker"] for w in workers} == {0, 1}
            assert all(w.duration_wall >= 0 for w in workers)

    def test_superstep_spans_carry_plan_level(self, graph, pattern):
        extractor = GraphExtractor(graph, num_workers=2, trace=True)
        extractor.extract(pattern, library.path_count())
        tracer = extractor.last_trace
        supersteps = sorted(
            tracer.find("superstep"), key=lambda s: s.attrs["superstep"]
        )
        enumeration, final = supersteps[:-1], supersteps[-1]
        assert final.attrs["phase"] == "pairwise-aggregation"
        for span in enumeration:
            assert span.attrs["plan_level"] >= 1
            assert span.attrs["plan_nodes"]
        # deepest level first
        levels = [span.attrs["plan_level"] for span in enumeration]
        assert levels == sorted(levels, reverse=True)

    def test_drift_records_on_tracer_and_result(self, graph, pattern):
        extractor = GraphExtractor(graph, num_workers=2, trace=True)
        result = extractor.extract(pattern, library.path_count())
        drift_rows = [
            r for r in extractor.last_trace.records if r["kind"] == "drift"
        ]
        assert len(drift_rows) == len(result.plan.node_estimates)
        for row in drift_rows:
            assert {"node_id", "segment", "superstep", "estimated_paths",
                    "observed_paths", "drift"} <= set(row)
        [summary] = [
            r for r in extractor.last_trace.records if r["kind"] == "plan_drift"
        ]
        assert summary["drift"] == result.drift.plan_drift
        assert result.summary()["plan_drift"] == result.drift.plan_drift

    def test_untraced_run_still_computes_drift(self, graph, pattern):
        extractor = GraphExtractor(graph, num_workers=2)
        result = extractor.extract(pattern, library.path_count())
        assert extractor.last_trace is None
        assert result.drift is not None
        assert result.drift.total_observed == result.intermediate_paths

    def test_tracing_does_not_change_results(self, graph, pattern):
        plain = GraphExtractor(graph, num_workers=2).extract(
            pattern, library.path_count()
        )
        traced = GraphExtractor(graph, num_workers=2, trace=True).extract(
            pattern, library.path_count()
        )
        assert traced.graph.equals(plain.graph)
        assert traced.metrics.total_work == plain.metrics.total_work

    def test_per_call_tracer_overrides_constructor(self, graph, pattern):
        extractor = GraphExtractor(graph, num_workers=2)
        tracer = fresh_tracer()
        extractor.extract(pattern, library.path_count(), tracer=tracer)
        assert extractor.last_trace is tracer
        assert tracer.find("extraction")

    def test_caller_owned_tracer_aggregates_two_runs(self, graph, pattern):
        tracer = fresh_tracer()
        extractor = GraphExtractor(graph, num_workers=2, trace=tracer)
        extractor.extract(pattern, library.path_count())
        extractor.extract(pattern, library.path_count())
        assert len(tracer.root_spans()) == 2

    def test_trace_spec_exports_file(self, graph, pattern, tmp_path):
        path = tmp_path / "trace.jsonl"
        extractor = GraphExtractor(graph, num_workers=2, trace=f"jsonl:{path}")
        extractor.extract(pattern, library.path_count())
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        names = {e.get("name") for e in lines if e.get("kind") == "span"}
        assert {"extraction", "superstep", "worker"} <= names
        kinds = {e["kind"] for e in lines}
        assert {"trace", "span", "drift", "plan_drift", "instrument"} <= kinds

    def test_instruments_populated(self, graph, pattern):
        tracer = fresh_tracer()
        GraphExtractor(graph, num_workers=2, trace=tracer).extract(
            pattern, library.path_count()
        )
        registry = tracer.registry
        assert registry.get("bsp_message_batch_size").count > 0
        assert registry.get("bsp_mailbox_occupancy") is not None

    def test_combiner_instruments(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        tracer = fresh_tracer()
        run_extraction(
            graph,
            pattern,
            plan_for(graph, pattern),
            library.path_count(),
            num_workers=2,
            mode="partial",
            use_combiner=True,
            tracer=tracer,
        )
        registry = tracer.registry
        assert registry.get("bsp_combiner_messages_in").value > 0
        out = registry.get("bsp_combiner_messages_out").value
        assert 0 < out <= registry.get("bsp_combiner_messages_in").value
        hit_rate = registry.get("bsp_combiner_hit_rate").value
        assert 0.0 <= hit_rate <= 1.0


def plan_for(graph, pattern):
    from repro.core.planner import make_plan
    from repro.graph.stats import GraphStatistics

    return make_plan(
        pattern, strategy="hybrid", stats=GraphStatistics.collect(graph)
    )


class TestEngineTracing:
    def run_engine(self, engine_cls, graph, pattern, tracer, **engine_kwargs):
        engine = engine_cls(
            list(graph.vertices()), num_workers=2, **engine_kwargs
        )
        return run_extraction(
            graph,
            pattern,
            plan_for(graph, pattern),
            library.path_count(),
            num_workers=2,
            mode="partial",
            engine=engine,
            tracer=tracer,
        )

    @pytest.fixture
    def short_pattern(self):
        return LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )

    def test_threaded_engine_records_worker_spans(self, graph, short_pattern):
        tracer = fresh_tracer()
        plain = self.run_engine(ThreadedBSPEngine, graph, short_pattern, None)
        traced = self.run_engine(ThreadedBSPEngine, graph, short_pattern, tracer)
        assert traced.graph.equals(plain.graph)
        supersteps = tracer.find("superstep")
        assert supersteps
        for step_span in supersteps:
            workers = tracer.children(step_span)
            assert {w.attrs["worker"] for w in workers} == {0, 1}

    def test_checkpoint_engine_records_save_events(self, graph, short_pattern):
        tracer = fresh_tracer()
        self.run_engine(
            RecoverableBSPEngine, graph, short_pattern, tracer,
            checkpoint_every=1,
        )
        [run_span] = tracer.find("engine-run")
        assert run_span.attrs["checkpoint_every"] == 1
        saves = [e for e in run_span.events if e.name == "checkpoint-saved"]
        assert len(saves) == run_span.attrs["supersteps"]
        assert all("pending_vertices" in e.attrs for e in saves)

    def test_sanitizer_emits_violation_events(self, graph, short_pattern):
        from repro.engine.sanitizer import SanitizerBSPEngine

        tracer = fresh_tracer()
        engine = SanitizerBSPEngine(list(graph.vertices()), num_workers=2)
        run_extraction(
            graph,
            short_pattern,
            plan_for(graph, short_pattern),
            library.path_count(),
            num_workers=2,
            mode="partial",
            engine=engine,
            sanitize=True,
            tracer=tracer,
        )
        [run_span] = tracer.find("engine-run")
        assert run_span.attrs["sanitizer"] is True
        assert run_span.attrs["findings"] == 0

    def test_engine_run_accepts_spec_and_exports(self, graph, tmp_path):
        from repro.core.evaluator import PathConcatenationProgram
        from repro.engine.bsp import BSPEngine

        path = tmp_path / "engine.json"
        program = PathConcatenationProgram(
            graph,
            LinePattern.parse("Author -[authorBy]-> Paper"),
            None,
            library.path_count(),
            mode="basic",
        )
        engine = BSPEngine(list(graph.vertices()), num_workers=2)
        engine.run(program, trace=f"chrome:{path}")
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"engine-run", "superstep", "worker"} <= names
