"""Unit tests for repro.analysis."""

import pytest

from repro.analysis import (
    connected_components,
    degree_centrality,
    pagerank,
    top_edges,
    weighted_degree,
)
from repro.core.result import ExtractedGraph


@pytest.fixture
def diamond():
    """1 -> 2 -> 4, 1 -> 3 -> 4, isolated vertex 5."""
    return ExtractedGraph(
        "A",
        "A",
        {1, 2, 3, 4, 5},
        {(1, 2): 2.0, (1, 3): 1.0, (2, 4): 1.0, (3, 4): 1.0},
    )


class TestTopEdges:
    def test_ranked_by_value_then_key(self, diamond):
        assert top_edges(diamond, 2) == [(1, 2, 2.0), (1, 3, 1.0)]

    def test_k_larger_than_edges(self, diamond):
        assert len(top_edges(diamond, 100)) == 4


class TestDegrees:
    def test_weighted_degree(self, diamond):
        degrees = weighted_degree(diamond)
        assert degrees[1] == 3.0
        assert degrees[2] == 1.0
        assert degrees[4] == 0.0
        assert degrees[5] == 0.0

    def test_degree_centrality(self, diamond):
        centrality = degree_centrality(diamond)
        assert centrality[1] == 2 / 4
        assert centrality[5] == 0.0


class TestConnectedComponents:
    def test_components(self, diamond):
        components = connected_components(diamond)
        assert components == [[1, 2, 3, 4], [5]]

    def test_empty_graph(self):
        g = ExtractedGraph("A", "A", set(), {})
        assert connected_components(g) == []


class TestPagerank:
    def test_sums_to_one(self, diamond):
        ranks = pagerank(diamond)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_sink_accumulates_rank(self, diamond):
        ranks = pagerank(diamond)
        assert ranks[4] > ranks[2]
        assert ranks[4] > ranks[1]

    def test_weights_matter(self, diamond):
        ranks = pagerank(diamond)
        # vertex 2 receives twice vertex 3's inbound weight from vertex 1
        assert ranks[2] > ranks[3]

    def test_empty_graph(self):
        assert pagerank(ExtractedGraph("A", "A", set(), {})) == {}

    def test_uniform_on_symmetric_cycle(self):
        g = ExtractedGraph(
            "A", "A", {1, 2, 3}, {(1, 2): 1.0, (2, 3): 1.0, (3, 1): 1.0}
        )
        ranks = pagerank(g)
        assert ranks[1] == pytest.approx(ranks[2])
        assert ranks[2] == pytest.approx(ranks[3])
