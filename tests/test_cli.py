"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestWorkloads:
    def test_lists_all_nine(self, capsys):
        code, out, _ = run_cli(capsys, "workloads")
        assert code == 0
        for name in ("dblp-BP1", "dblp-SP2", "patent-SP3"):
            assert name in out


class TestGenerate:
    def test_json_roundtrip(self, capsys, tmp_path):
        out_file = tmp_path / "g.json"
        code, out, _ = run_cli(
            capsys,
            "generate", "--dataset", "dblp", "--scale", "0.05",
            "--out", str(out_file),
        )
        assert code == 0
        assert out_file.exists()
        assert "wrote" in out

    def test_edgelist(self, capsys, tmp_path):
        out_file = tmp_path / "g.txt"
        code, _, _ = run_cli(
            capsys,
            "generate", "--dataset", "patent", "--scale", "0.05",
            "--out", str(out_file),
        )
        assert code == 0
        assert out_file.read_text().startswith("V ")


class TestPlan:
    def test_all_strategies_shown(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "plan", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP2",
        )
        assert code == 0
        for strategy in ("line", "iter_opt", "path_opt", "hybrid"):
            assert f"PCP[{strategy}]" in out

    def test_single_strategy(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "plan", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP2", "--strategy", "hybrid",
        )
        assert code == 0
        assert "PCP[hybrid]" in out
        assert "PCP[line]" not in out

    def test_custom_pattern(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "plan", "--dataset", "patent", "--scale", "0.05",
            "--pattern", "Patent -[citeBy]-> Patent -[citeBy]-> Patent",
        )
        assert code == 0
        assert "pivot" in out

    def test_length_one_pattern(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "plan", "--dataset", "dblp", "--scale", "0.05",
            "--pattern", "Paper -[publishAt]-> Venue",
        )
        assert code == 0
        assert "no plan needed" in out


class TestExtract:
    def test_summary_printed(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--workers", "2",
        )
        assert code == 0
        assert "result_edges" in out
        assert "iterations" in out

    def test_top_and_out(self, capsys, tmp_path):
        out_file = tmp_path / "edges.tsv"
        code, out, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--top", "3", "--out", str(out_file),
        )
        assert code == 0
        assert "strongest extracted relations" in out
        lines = out_file.read_text().strip().splitlines()
        assert lines and all(len(line.split("\t")) == 3 for line in lines)

    def test_trace_out_and_report(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        code, out, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-BP1", "--workers", "2",
            "--trace-out", str(trace),
        )
        assert code == 0
        assert f"wrote trace to {trace}" in out
        assert trace.exists()

        code, out, _ = run_cli(capsys, "report", str(trace))
        assert code == 0
        assert "per-superstep run report" in out
        assert "makespan" in out
        assert "plan drift" in out

    def test_dataset_inferred_from_workload(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "extract", "--workload", "patent-SP2", "--scale", "0.05",
        )
        assert code == 0
        assert "result_edges" in out

    def test_graph_file_input(self, capsys, tmp_path):
        out_file = tmp_path / "g.json"
        run_cli(
            capsys,
            "generate", "--dataset", "dblp", "--scale", "0.05",
            "--out", str(out_file),
        )
        code, out, _ = run_cli(
            capsys,
            "extract", "--graph", str(out_file), "--workload", "dblp-SP1",
        )
        assert code == 0
        assert "result_edges" in out

    def test_holistic_aggregate(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--aggregate", "median",
        )
        assert code == 0


class TestCompare:
    def test_all_methods_agree(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "compare", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--methods", "pge,graphdb,matrix,rpq",
        )
        assert code == 0
        assert out.count("True") >= 4  # every method agrees with pge

    def test_missing_dataset_is_error(self, capsys):
        code, _, err = run_cli(
            capsys,
            "compare", "--pattern", "Paper -[citeBy]-> Paper",
        )
        assert code == 2
        assert "error" in err

    def test_multi_method_run_builds_one_snapshot(self, capsys, monkeypatch):
        """Regression: per-graph derived state (statistics collection,
        CSR snapshot) is hoisted out of the method loop — comparing N
        methods must not rebuild it N times."""
        from repro.accel.compact import CompactGraph
        from repro.graph.stats import GraphStatistics
        from repro.workloads.harness import reference_graph

        # a fresh graph object: the memoised reference graph may carry
        # caches already populated by earlier tests
        reference_graph.cache_clear()
        build_calls = []
        collect_calls = []
        real_build = CompactGraph.build.__func__
        real_collect = GraphStatistics.collect.__func__

        def spy_build(cls, graph):
            build_calls.append(1)
            return real_build(cls, graph)

        def spy_collect(cls, graph):
            collect_calls.append(1)
            return real_collect(cls, graph)

        monkeypatch.setattr(CompactGraph, "build", classmethod(spy_build))
        monkeypatch.setattr(
            GraphStatistics, "collect", classmethod(spy_collect)
        )
        code, _, _ = run_cli(
            capsys,
            "compare", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--methods", "pge,matrix,graphdb",
            "--backend", "vectorized",
        )
        assert code == 0
        assert len(build_calls) == 1
        assert len(collect_calls) == 1


class TestBatch:
    def test_batched_run_prints_summary(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "batch", "--dataset", "dblp", "--scale", "0.05",
            "--workloads", "dblp-SP1,dblp-SP2,dblp-BP1", "--repeat", "2",
        )
        assert code == 0
        assert "batch summary" in out
        assert "multiquery_products_saved" in out
        assert "plan_cache_hits" in out
        assert "compact_cache_misses" in out

    def test_compare_sequential_agrees(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "batch", "--dataset", "dblp", "--scale", "0.05",
            "--workloads", "dblp-SP1,dblp-BP1", "--repeat", "2",
            "--compare-sequential",
        )
        assert code == 0
        assert "speedup" in out
        assert "agrees" in out and "True" in out

    def test_custom_patterns(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "batch", "--dataset", "dblp", "--scale", "0.05",
            "--patterns",
            "Paper -[citeBy]-> Paper; Paper -[citeBy]-> Paper "
            "-[citeBy]-> Paper",
        )
        assert code == 0
        assert "batch of 2 requests" in out

    def test_trace_out_feeds_report(self, capsys, tmp_path):
        trace = tmp_path / "batch.jsonl"
        code, out, _ = run_cli(
            capsys,
            "batch", "--dataset", "dblp", "--scale", "0.05",
            "--workloads", "dblp-SP1,dblp-SP1", "--trace-out", str(trace),
        )
        assert code == 0
        assert trace.exists()
        code, out, _ = run_cli(capsys, "report", str(trace))
        assert code == 0
        assert "shared DAG (multi-query batch)" in out
        assert "cache effectiveness" in out

    def test_no_requests_is_error(self, capsys):
        code, _, err = run_cli(
            capsys, "batch", "--dataset", "dblp", "--scale", "0.05",
        )
        assert code == 2
        assert "error" in err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_pattern_and_workload_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "extract", "--dataset", "dblp",
                    "--workload", "dblp-SP1", "--pattern", "A -[x]-> B",
                ]
            )


class TestAnalyze:
    def test_pagerank(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "analyze", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--analysis", "pagerank", "--top", "3",
        )
        assert code == 0
        assert "PageRank" in out

    def test_components(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "analyze", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--analysis", "components",
        )
        assert code == 0
        assert "components" in out

    def test_degree(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "analyze", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--analysis", "degree", "--top", "2",
        )
        assert code == 0
        assert "out-degree" in out

    def test_default_top_edges(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "analyze", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-BP1",
        )
        assert code == 0
        assert "extracted relations" in out


class TestEstimatorFlag:
    @pytest.mark.parametrize("estimator", ["uniform", "exact-leaf", "sampling"])
    def test_plan_with_estimator(self, capsys, estimator):
        code, out, _ = run_cli(
            capsys,
            "plan", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP2", "--strategy", "hybrid",
            "--estimator", estimator,
        )
        assert code == 0
        assert "PCP[hybrid]" in out

    def test_extract_with_sampling_estimator(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP2", "--estimator", "sampling",
        )
        assert code == 0
        assert "result_edges" in out


class TestDiscover:
    def test_ranked_candidates(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "discover", "--dataset", "dblp", "--scale", "0.05",
            "--start", "Author", "--end", "Author", "--max-length", "4",
            "--top", "5",
        )
        assert code == 0
        assert "candidate metapaths" in out
        assert "authorBy" in out

    def test_symmetric_flag(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "discover", "--dataset", "dblp", "--scale", "0.05",
            "--start", "Venue", "--end", "Venue", "--max-length", "4",
            "--symmetric",
        )
        assert code == 0

    def test_no_candidates(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "discover", "--dataset", "dblp", "--scale", "0.05",
            "--start", "Venue", "--end", "Author", "--max-length", "1",
        )
        assert code == 0
        assert "no satisfiable patterns" in out


class TestAggregateDispatch:
    @pytest.mark.parametrize(
        "aggregate",
        ["path_count", "weighted_path_count", "max_min", "min_max",
         "add_max", "sum_min", "avg", "std", "median"],
    )
    def test_every_cli_aggregate_runs(self, capsys, aggregate):
        code, out, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-SP1", "--aggregate", aggregate,
        )
        assert code == 0
        assert "result_edges" in out


class TestSoak:
    def test_soak_recovers_all_seeds(self, capsys):
        # 4 seeds cycle through the full required fault taxonomy:
        # compute-crash, transient-error, stall, checkpoint-corrupt
        code, out, _ = run_cli(
            capsys,
            "soak",
            "--workload",
            "dblp-BP1",
            "--scale",
            "0.1",
            "--seeds",
            "4",
            "--deadline-s",
            "0.1",
        )
        assert code == 0
        assert "4/4 runs recovered" in out
        assert "chaos soak" in out
        for kind in ("compute-crash", "transient-error", "stall", "checkpoint-corrupt"):
            assert kind in out

    def test_soak_rows_show_recovery_details(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "soak",
            "--workload",
            "dblp-BP1",
            "--scale",
            "0.1",
            "--seeds",
            "1",
            "--deadline-s",
            "0.1",
        )
        assert code == 0
        # seed 0 requires a compute crash: the run retries and resumes
        assert "seed 0" in out
        header = next(line for line in out.splitlines() if "retries" in line)
        assert "resumed" in header and "rung" in header


class TestReportJsonFormat:
    def _trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code, _, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-BP1", "--workers", "2",
            "--trace-out", str(trace),
        )
        assert code == 0
        return trace

    def test_json_format_is_machine_readable(self, capsys, tmp_path):
        import json

        trace = self._trace(capsys, tmp_path)
        code, out, _ = run_cli(capsys, "report", str(trace), "--format", "json")
        assert code == 0
        document = json.loads(out)
        assert document["schema"] == "repro.obs.report/v1"
        assert document["supersteps"]
        assert all("makespan" in step for step in document["supersteps"])

    def test_text_stays_the_default(self, capsys, tmp_path):
        trace = self._trace(capsys, tmp_path)
        code, out, _ = run_cli(capsys, "report", str(trace))
        assert code == 0
        assert "per-superstep run report" in out

    def test_prom_file_rejected_with_kind(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        prom.write_text("# HELP repro_msgs messages\nrepro_msgs 1\n")
        code, _, err = run_cli(capsys, "report", str(prom))
        assert code == 2
        assert "Prometheus text exposition" in err


class TestExtractProfile:
    def test_profile_flag_reports_containment_and_exports(
        self, capsys, tmp_path
    ):
        folded = tmp_path / "stacks.folded"
        code, out, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-BP1", "--workers", "2",
            "--profile", "cprofile+memory", "--profile-out", str(folded),
        )
        assert code == 0
        assert "memory containment [bsp]" in out
        assert f"wrote collapsed profile to {folded}" in out
        text = folded.read_text()
        assert text and "extraction" in text.splitlines()[0]

    def test_profiled_trace_feeds_profiled_report(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code, _, _ = run_cli(
            capsys,
            "extract", "--dataset", "dblp", "--scale", "0.05",
            "--workload", "dblp-BP1", "--workers", "2",
            "--profile", "cprofile+memory", "--trace-out", str(trace),
        )
        assert code == 0
        code, out, _ = run_cli(capsys, "report", str(trace))
        assert code == 0
        assert "mem_peak" in out
        assert "hottest profiled stacks [cprofile]" in out
        assert "observed vs certified [bsp]" in out
