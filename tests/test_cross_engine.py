"""Property test: the three engine implementations are interchangeable.

The serial :class:`BSPEngine`, the :class:`ThreadedBSPEngine` and the
:class:`RecoverableBSPEngine` must produce identical extraction results
and identical machine-independent metrics (supersteps, messages, paths)
on arbitrary inputs.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.aggregates import library
from repro.core.evaluator import run_extraction
from repro.core.planner import iter_opt_plan
from repro.engine.bsp import BSPEngine
from repro.engine.checkpoint import RecoverableBSPEngine
from repro.engine.parallel import ThreadedBSPEngine

from tests.test_properties import graphs, patterns


class TestEnginesInterchangeable:
    @settings(max_examples=20, deadline=None)
    @given(graph=graphs(), pattern=patterns(max_length=3))
    def test_same_results_and_metrics(self, graph, pattern):
        plan = iter_opt_plan(pattern)
        aggregate = library.path_count()
        vertices = list(graph.vertices())

        serial = run_extraction(
            graph, pattern, plan, aggregate,
            engine=BSPEngine(vertices, num_workers=3),
        )
        threaded = run_extraction(
            graph, pattern, plan, aggregate,
            engine=ThreadedBSPEngine(vertices, num_workers=3),
        )
        recoverable = run_extraction(
            graph, pattern, plan, aggregate,
            engine=RecoverableBSPEngine(vertices, num_workers=3),
        )

        assert threaded.graph.equals(serial.graph)
        assert recoverable.graph.equals(serial.graph)
        for other in (threaded, recoverable):
            assert other.metrics.num_supersteps == serial.metrics.num_supersteps
            assert other.metrics.total_messages == serial.metrics.total_messages
            assert other.intermediate_paths == serial.intermediate_paths
            assert other.final_paths == serial.final_paths
