"""Cross-engine determinism property test (the BSP contract, fuzzed).

The BSP model leaves intra-inbox message order undefined, so a correct
extraction must be invariant under (a) which engine runs it, (b) how many
workers partition the vertices, and (c) any seeded permutation of each
inbox (:func:`~repro.engine.messages.shuffle_inbox`).  This test runs the
same program/pattern on :class:`~repro.engine.bsp.BSPEngine` and
:class:`~repro.engine.parallel.ThreadedBSPEngine` at 1/2/4 workers with
shuffled inbox delivery and requires identical results throughout.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.aggregates import library
from repro.core.evaluator import run_extraction
from repro.core.planner import iter_opt_plan
from repro.engine.bsp import BSPEngine
from repro.engine.parallel import ThreadedBSPEngine

from tests.test_properties import graphs, patterns

WORKER_COUNTS = (1, 2, 4)
SHUFFLE_SEEDS = (None, 7, 1234)


class TestCrossEngineDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(graph=graphs(), pattern=patterns(max_length=3))
    def test_engines_workers_and_shuffles_agree(self, graph, pattern):
        plan = iter_opt_plan(pattern)
        aggregate = library.path_count()
        vertices = list(graph.vertices())

        reference = None
        for engine_cls in (BSPEngine, ThreadedBSPEngine):
            for workers in WORKER_COUNTS:
                for seed in SHUFFLE_SEEDS:
                    result = run_extraction(
                        graph,
                        pattern,
                        plan,
                        aggregate,
                        engine=engine_cls(
                            vertices,
                            num_workers=workers,
                            shuffle_seed=seed,
                        ),
                    )
                    if reference is None:
                        reference = result
                        continue
                    assert result.graph.equals(reference.graph), (
                        f"{engine_cls.__name__} at {workers} workers with "
                        f"shuffle seed {seed} diverged from the reference"
                    )
                    assert (
                        result.metrics.num_supersteps
                        == reference.metrics.num_supersteps
                    )
                    assert (
                        result.metrics.total_messages
                        == reference.metrics.total_messages
                    )

    @pytest.mark.parametrize("mode", ["basic", "partial"])
    def test_shuffle_is_deterministic_per_seed(self, mode):
        """Two runs with the same shuffle seed are bit-identical — the
        fuzzer itself must be reproducible."""
        from repro.datasets import tiny_dblp
        from repro.graph.pattern import LinePattern

        graph = tiny_dblp()
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        plan = iter_opt_plan(pattern)
        vertices = list(graph.vertices())
        runs = [
            run_extraction(
                graph,
                pattern,
                plan,
                library.path_count(),
                mode=mode,
                engine=BSPEngine(vertices, num_workers=2, shuffle_seed=42),
            )
            for _ in range(2)
        ]
        assert runs[0].graph.edges == runs[1].graph.edges
