"""Run the library's executable docstring examples."""

import doctest

import pytest

import repro
import repro.graph.filters
import repro.graph.generators
import repro.graph.hetgraph
import repro.graph.pattern
import repro.graph.schema

MODULES = [
    repro.graph.filters,
    repro.graph.generators,
    repro.graph.hetgraph,
    repro.graph.pattern,
    repro.graph.schema,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False, raise_on_error=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"


def test_package_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
