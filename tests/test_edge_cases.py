"""Hardening tests: degenerate graphs, unmatchable patterns, deep plans."""

import math

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.core.extractor import GraphExtractor
from repro.engine.bsp import BSPEngine, VertexProgram
from repro.graph.hetgraph import HeterogeneousGraph
from repro.graph.pattern import LinePattern

from tests.conftest import build_scholarly


class TestDegenerateGraphs:
    def test_empty_graph(self):
        graph = HeterogeneousGraph()
        graph.add_vertex(1, "Author")  # schema needs the labels to exist
        graph.add_vertex(2, "Paper")
        graph.add_edge(1, 2, "authorBy")
        graph.remove_edge(1, 2, "authorBy")
        pattern = LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        result = GraphExtractor(graph).extract(pattern)
        assert result.graph.num_edges() == 0
        assert result.graph.vertices == {1}

    def test_single_vertex_self_loop(self):
        graph = HeterogeneousGraph()
        graph.add_vertex(0, "Paper")
        graph.add_edge(0, 0, "citeBy")
        pattern = LinePattern.chain("Paper", "citeBy", 3)
        result = GraphExtractor(graph).extract(pattern)
        assert result.graph.value(0, 0) == 1.0  # exactly one walk of length 3

    def test_self_loop_path_explosion_counts_correctly(self):
        graph = HeterogeneousGraph()
        graph.add_vertex(0, "Paper")
        graph.add_edge(0, 0, "citeBy")
        graph.add_edge(0, 0, "citeBy")  # two parallel self-loops
        pattern = LinePattern.chain("Paper", "citeBy", 4)
        result = GraphExtractor(graph).extract(pattern)
        assert result.graph.value(0, 0) == 16.0  # 2^4 walks

    def test_isolated_vertices_only(self):
        graph = HeterogeneousGraph()
        for vid in range(5):
            graph.add_vertex(vid, "Paper")
        graph.add_edge(0, 1, "citeBy")
        graph.remove_edge(0, 1, "citeBy")
        pattern = LinePattern.parse("Paper -[citeBy]-> Paper")
        result = GraphExtractor(graph).extract(pattern)
        assert result.graph.num_edges() == 0
        assert result.graph.num_vertices() == 5


class TestUnmatchablePatterns:
    def test_label_never_adjacent(self):
        graph = build_scholarly()
        # publishAt never leaves an Author
        pattern = LinePattern.parse("Author -[publishAt]-> Venue")
        result = GraphExtractor(graph, validate_patterns=False).extract(pattern)
        assert result.graph.num_edges() == 0

    def test_pattern_longer_than_any_walk(self):
        graph = build_scholarly()
        # citeBy chains top out at length 2 (p3 -> p2 -> p1)
        pattern = LinePattern.chain("Paper", "citeBy", 5)
        result = GraphExtractor(graph).extract(pattern)
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        assert result.graph.num_edges() == 0
        assert result.graph.equals(oracle.graph)

    def test_filter_matching_nothing(self):
        from repro.graph.filters import VertexFilter

        graph = build_scholarly()
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        ).with_filter(0, VertexFilter("nonexistent", "eq", 1))
        result = GraphExtractor(graph).extract(pattern)
        assert result.graph.num_edges() == 0


class TestDeepPlans:
    def test_length16_chain_hybrid(self):
        """A deep pattern on a small cyclic graph: hybrid stays at
        ceil(log2 16) = 4 iterations and matches the oracle."""
        graph = HeterogeneousGraph()
        for vid in range(6):
            graph.add_vertex(vid, "Paper")
        for vid in range(6):
            graph.add_edge(vid, (vid + 1) % 6, "citeBy")
        pattern = LinePattern.chain("Paper", "citeBy", 16)
        result = GraphExtractor(graph, num_workers=2).extract(pattern)
        assert result.iterations == math.ceil(math.log2(16))
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        assert result.graph.equals(oracle.graph)
        # on a 6-cycle, a length-16 walk lands 16 mod 6 = 4 ahead
        assert result.graph.value(0, 4) == 1.0

    def test_line_strategy_on_same_chain(self):
        graph = HeterogeneousGraph()
        for vid in range(4):
            graph.add_vertex(vid, "Paper")
        for vid in range(4):
            graph.add_edge(vid, (vid + 1) % 4, "citeBy")
        pattern = LinePattern.chain("Paper", "citeBy", 12)
        result = GraphExtractor(graph, strategy="line").extract(pattern)
        assert result.iterations == 11
        assert result.graph.value(0, 0) == 1.0  # 12 mod 4 == 0


class TestEngineEdgeCases:
    def test_zero_vertices(self):
        class Noop(VertexProgram):
            def num_supersteps(self):
                return 1

            def compute(self, ctx):
                pass

            def finish(self, states, metrics):
                return "done"

        engine = BSPEngine([], num_workers=2)
        assert engine.run(Noop()) == "done"
        assert engine.last_metrics.total_work == 0

    def test_more_workers_than_vertices(self):
        graph = build_scholarly()
        pattern = LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        result = GraphExtractor(graph, num_workers=1000).extract(pattern)
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        assert result.graph.equals(oracle.graph)


class TestDeterminism:
    def test_repeated_runs_identical_metrics(self):
        graph = build_scholarly()
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        runs = [
            GraphExtractor(graph, num_workers=4).extract(pattern)
            for _ in range(3)
        ]
        first = runs[0]
        for other in runs[1:]:
            assert other.graph.equals(first.graph)
            assert other.intermediate_paths == first.intermediate_paths
            assert other.metrics.total_messages == first.metrics.total_messages
            assert [s.work_per_worker for s in other.metrics.supersteps] == [
                s.work_per_worker for s in first.metrics.supersteps
            ]
