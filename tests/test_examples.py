"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; this keeps them from rotting.
Each is run in-process (import + ``main()``) with stdout captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> None:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_output_mentions_plan(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "plan" in out
    assert "intermediate paths" in out
