"""Tests for the exists_path aggregate and the networkx export."""

import pytest

from repro.aggregates import library
from repro.aggregates.classify import validate_aggregate
from repro.baselines.bruteforce import extract_bruteforce
from repro.baselines.matrix import extract_matrix
from repro.core.extractor import GraphExtractor
from repro.graph.pattern import LinePattern

from tests.conftest import COAUTHOR_EXPECTED, build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestExistsPath:
    def test_declared_distributivity_verified(self):
        validate_aggregate(library.exists_path())

    def test_reachability_semantics(self, graph, coauthor):
        result = GraphExtractor(graph, num_workers=2).extract(
            coauthor, library.exists_path()
        )
        assert set(result.graph.edges) == set(COAUTHOR_EXPECTED)
        assert all(value is True for value in result.graph.edges.values())

    def test_partial_equals_basic(self, graph, coauthor):
        partial = GraphExtractor(graph).extract(coauthor, library.exists_path())
        basic = GraphExtractor(graph).extract(
            coauthor, library.exists_path(), partial_aggregation=False
        )
        assert partial.graph.equals(basic.graph)

    def test_matrix_baseline_supports_it(self, graph, coauthor):
        oracle = extract_bruteforce(graph, coauthor, library.exists_path())
        result = extract_matrix(graph, coauthor, library.exists_path())
        assert result.graph.equals(oracle.graph)
        assert result.metrics.counters["matrix_backend_scipy"] == 0

    def test_exists_is_cheapest_intermediate_state(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        exists = GraphExtractor(graph).extract(pattern, library.exists_path())
        count = GraphExtractor(graph).extract(pattern, library.path_count())
        assert set(exists.graph.edges) == set(count.graph.edges)


class TestNetworkxExport:
    def test_roundtrip_structure(self, graph, coauthor):
        nx = pytest.importorskip("networkx")
        result = GraphExtractor(graph).extract(coauthor)
        digraph = result.graph.to_networkx()
        assert isinstance(digraph, nx.DiGraph)
        assert digraph.number_of_nodes() == result.graph.num_vertices()
        assert digraph.number_of_edges() == result.graph.num_edges()
        assert digraph[3][4]["weight"] == 2.0

    def test_pagerank_agrees_with_networkx(self, graph, coauthor):
        nx = pytest.importorskip("networkx")
        from repro.analysis import pagerank

        result = GraphExtractor(graph).extract(coauthor)
        ours = pagerank(result.graph, tolerance=1e-12)
        theirs = nx.pagerank(
            result.graph.to_networkx(), alpha=0.85, tol=1e-12, max_iter=200
        )
        for vid, score in ours.items():
            assert theirs[vid] == pytest.approx(score, rel=1e-4)

    def test_non_numeric_values_exported_as_value(self, graph, coauthor):
        pytest.importorskip("networkx")
        result = GraphExtractor(graph).extract(
            coauthor, library.exists_path()
        )
        digraph = result.graph.to_networkx()
        assert digraph[3][4]["value"] is True

class TestLintExports:
    """The repro.lint package must export its public surface via __all__."""

    def test_all_names_resolve(self):
        import repro.lint as lint

        for name in lint.__all__:
            assert hasattr(lint, name), f"repro.lint.__all__ lists missing {name!r}"

    def test_key_names_present(self):
        import repro.lint as lint

        expected = {
            "PlanVerifier",
            "AggregateContractChecker",
            "verify_vertex_program",
            "run_lint",
            "Finding",
            "LintReport",
            "Severity",
            "Rule",
            "ALL_RULES",
            "get_rules",
            "load_config",
            "render_text",
            "render_json",
        }
        assert expected <= set(lint.__all__)

    def test_all_is_sorted_and_unique(self):
        import repro.lint as lint

        assert len(lint.__all__) == len(set(lint.__all__))
        assert list(lint.__all__) == sorted(lint.__all__)

    def test_rule_names_match_docs_catalogue(self):
        from repro.lint import RULES_BY_NAME

        assert set(RULES_BY_NAME) == {
            "shared-state",
            "foreign-raise",
            "bare-except",
            "frozen-mutation",
            "future-annotations",
            "state-escape",
            "message-aliasing",
            "impure-aggregate",
            "procsafe-capture",
            "procsafe-global",
            "procsafe-thread",
        }
