"""Integration tests: filtered extraction across every method.

A filtered pattern restricts which vertices may occupy a position by
their attributes; every implementation (framework, all baselines) must
agree with the brute-force oracle under filters.
"""

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.baselines.graphdb import extract_graphdb
from repro.baselines.matrix import extract_matrix
from repro.baselines.rpq import extract_rpq
from repro.core.extractor import GraphExtractor
from repro.graph.filters import VertexFilter
from repro.graph.pattern import LinePattern

from tests.conftest import A1, A2, A3, A4, P1, P2, P3, build_scholarly


@pytest.fixture
def graph():
    g = build_scholarly()
    # paper years: p1=2008, p2=2012, p3=2015; author h-index attributes
    g.add_vertex(P1, "Paper", {"year": 2008})
    g.add_vertex(P2, "Paper", {"year": 2012})
    g.add_vertex(P3, "Paper", {"year": 2015})
    g.add_vertex(A1, "Author", {"hindex": 30})
    g.add_vertex(A2, "Author", {"hindex": 5})
    g.add_vertex(A3, "Author", {"hindex": 12})
    g.add_vertex(A4, "Author", {"hindex": 8})
    return g


@pytest.fixture
def recent_coauthor():
    """Co-authors through papers from 2010 on."""
    return LinePattern.parse(
        "Author -[authorBy]-> Paper <-[authorBy]- Author"
    ).with_filter(1, VertexFilter("year", "ge", 2010))


class TestFilteredSemantics:
    def test_pivot_filter_drops_old_papers(self, graph, recent_coauthor):
        result = GraphExtractor(graph, num_workers=2).extract(recent_coauthor)
        # p1 (2008) is filtered out: a1/a2 lose their co-authorship
        assert not result.graph.has_edge(A1, A2)
        assert result.graph.value(A3, A4) == 2.0

    def test_endpoint_filter(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        ).with_filter(0, VertexFilter("hindex", "ge", 10))
        result = GraphExtractor(graph, num_workers=2).extract(pattern)
        starts = {u for (u, _v) in result.graph.edges}
        assert starts <= {A1, A3}  # only high h-index authors start paths

    def test_both_endpoints_filtered(self, graph):
        pattern = (
            LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
            .with_filter(0, VertexFilter("hindex", "ge", 10))
            .with_filter(2, VertexFilter("hindex", "ge", 10))
        )
        result = GraphExtractor(graph, num_workers=2).extract(pattern)
        assert set(result.graph.edges) == {(A3, A3), (A1, A1)}

    def test_filter_making_result_empty(self, graph, recent_coauthor):
        impossible = recent_coauthor.with_filter(
            1, VertexFilter("year", "ge", 3000)
        )
        result = GraphExtractor(graph, num_workers=2).extract(impossible)
        assert result.graph.num_edges() == 0


class TestAllMethodsAgreeUnderFilters:
    @pytest.mark.parametrize(
        "filtered_position,vertex_filter",
        [
            (1, VertexFilter("year", "ge", 2010)),
            (0, VertexFilter("hindex", "gt", 6)),
            (2, VertexFilter("hindex", "in", (5, 8))),
        ],
    )
    def test_length2(self, graph, filtered_position, vertex_filter):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        ).with_filter(filtered_position, vertex_filter)
        aggregate = library.path_count()
        oracle = extract_bruteforce(graph, pattern, aggregate)
        pge = GraphExtractor(graph, num_workers=3).extract(pattern)
        assert pge.graph.equals(oracle.graph)
        assert extract_graphdb(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_matrix(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_rpq(graph, pattern, aggregate).graph.equals(oracle.graph)

    def test_length4_interior_filters(self, graph):
        pattern = (
            LinePattern.parse(
                "Author -[authorBy]-> Paper -[publishAt]-> Venue "
                "<-[publishAt]- Paper <-[authorBy]- Author"
            )
            .with_filter(1, VertexFilter("year", "ge", 2010))
            .with_filter(3, VertexFilter("year", "le", 2012))
        )
        aggregate = library.path_count()
        oracle = extract_bruteforce(graph, pattern, aggregate)
        for strategy in ("line", "iter_opt", "path_opt", "hybrid"):
            pge = GraphExtractor(graph, num_workers=2, strategy=strategy).extract(
                pattern
            )
            assert pge.graph.equals(oracle.graph), strategy
        assert extract_graphdb(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_matrix(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_rpq(graph, pattern, aggregate).graph.equals(oracle.graph)

    def test_basic_mode_honours_filters(self, graph, recent_coauthor):
        oracle = extract_bruteforce(graph, recent_coauthor, library.path_count())
        basic = GraphExtractor(graph, num_workers=2).extract(
            recent_coauthor, partial_aggregation=False
        )
        assert basic.graph.equals(oracle.graph)

    def test_single_edge_pattern_filters(self, graph):
        pattern = LinePattern.parse(
            "Paper -[publishAt]-> Venue"
        ).with_filter(0, VertexFilter("year", "ge", 2012))
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        pge = GraphExtractor(graph, num_workers=2).extract(pattern)
        assert pge.graph.equals(oracle.graph)
        assert set(pge.graph.edges) == {(P2, 21), (P3, 22)}
