"""Property test: incremental maintenance tracks from-scratch extraction
under random update sequences."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.core.incremental import IncrementalExtractor

from tests.test_properties import SCHEMA_TYPES, VERTICES, graphs, patterns


@st.composite
def update_sequences(draw, max_updates: int = 6):
    """A sequence of (src, dst, edge_label, weight) insertions."""
    count = draw(st.integers(min_value=1, max_value=max_updates))
    updates = []
    for _ in range(count):
        edge_label, src_label, dst_label = draw(st.sampled_from(SCHEMA_TYPES))
        src = draw(st.sampled_from(VERTICES[src_label]))
        dst = draw(st.sampled_from(VERTICES[dst_label]))
        weight = round(
            draw(st.floats(min_value=0.25, max_value=4.0, allow_nan=False)), 3
        )
        updates.append((src, dst, edge_label, weight))
    return updates


class TestIncrementalProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        graph=graphs(max_edges=8),
        pattern=patterns(max_length=3),
        updates=update_sequences(),
    )
    def test_insertions_match_recompute(self, graph, pattern, updates):
        inc = IncrementalExtractor(graph, pattern, library.path_count())
        for src, dst, label, weight in updates:
            inc.add_edge(src, dst, label, weight)
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        assert inc.extracted().equals(oracle.graph, rel_tol=1e-7)

    @settings(max_examples=20, deadline=None)
    @given(
        graph=graphs(max_edges=8),
        pattern=patterns(max_length=3),
        updates=update_sequences(max_updates=4),
    )
    def test_insert_then_delete_everything_restores(self, graph, pattern, updates):
        inc = IncrementalExtractor(graph, pattern, library.weighted_path_count())
        before = extract_bruteforce(
            graph, pattern, library.weighted_path_count()
        )
        for src, dst, label, weight in updates:
            inc.add_edge(src, dst, label, weight)
        for src, dst, label, weight in reversed(updates):
            inc.remove_edge(src, dst, label, weight)
        assert inc.extracted().equals(before.graph, rel_tol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(
        graph=graphs(max_edges=8),
        pattern=patterns(max_length=3),
        updates=update_sequences(max_updates=4),
    )
    def test_mixed_updates_match_recompute(self, graph, pattern, updates):
        inc = IncrementalExtractor(graph, pattern, library.path_count())
        for index, (src, dst, label, weight) in enumerate(updates):
            inc.add_edge(src, dst, label, weight)
            if index % 2 == 1:  # remove every second inserted edge again
                inc.remove_edge(src, dst, label, weight)
            oracle = extract_bruteforce(graph, pattern, library.path_count())
            assert inc.extracted().equals(oracle.graph, rel_tol=1e-7)
