"""Integration tests: the full pipeline on the paper's named workloads."""

import math

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.core.extractor import GraphExtractor
from repro.datasets.dblp import tiny_dblp
from repro.datasets.patent import tiny_patent
from repro.workloads.harness import run_method
from repro.workloads.patterns import WORKLOADS


@pytest.fixture(scope="module")
def graphs():
    return {"dblp": tiny_dblp(), "patent": tiny_patent()}


@pytest.fixture(scope="module")
def oracles(graphs):
    return {
        name: extract_bruteforce(
            graphs[w.dataset], w.pattern, library.path_count()
        )
        for name, w in WORKLOADS.items()
    }


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("method", ["pge", "pge-basic", "graphdb", "matrix", "rpq"])
    def test_method_matches_oracle(self, graphs, oracles, name, method):
        workload = WORKLOADS[name]
        result = run_method(
            method, graphs[workload.dataset], workload.pattern, num_workers=3
        )
        assert result.graph.equals(oracles[name].graph), result.graph.diff(
            oracles[name].graph
        )

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("strategy", ["line", "iter_opt", "path_opt", "hybrid"])
    def test_every_strategy_matches_oracle(self, graphs, oracles, name, strategy):
        workload = WORKLOADS[name]
        extractor = GraphExtractor(
            graphs[workload.dataset], num_workers=3, strategy=strategy
        )
        result = extractor.extract(workload.pattern)
        assert result.graph.equals(oracles[name].graph)


class TestPaperClaims:
    def test_hybrid_iterations_are_logarithmic(self, graphs):
        """Hybrid plans run in ceil(log2(l)) iterations on every workload."""
        for name, workload in WORKLOADS.items():
            extractor = GraphExtractor(graphs[workload.dataset], num_workers=3)
            result = extractor.extract(workload.pattern)
            length = workload.pattern.length
            if length > 1:
                assert result.iterations == math.ceil(math.log2(length)), name

    def test_line_strategy_iterations_are_linear(self, graphs):
        for name in ("dblp-SP2", "dblp-SP3"):
            workload = WORKLOADS[name]
            extractor = GraphExtractor(
                graphs[workload.dataset], num_workers=3, strategy="line"
            )
            result = extractor.extract(workload.pattern)
            assert result.iterations == workload.pattern.length - 1

    def test_partial_aggregation_reduces_paths_on_heavy_patterns(self, graphs):
        """Fig. 8's claim on its four representative patterns."""
        for name in ("dblp-SP3", "dblp-BP1", "patent-SP3", "patent-BP2"):
            workload = WORKLOADS[name]
            graph = graphs[workload.dataset]
            basic = run_method("pge-basic", graph, workload.pattern, num_workers=3)
            optimized = run_method("pge", graph, workload.pattern, num_workers=3)
            assert optimized.intermediate_paths <= basic.intermediate_paths, name

    def test_rpq_needs_linear_iterations(self, graphs):
        for name in ("dblp-SP2", "patent-BP2"):
            workload = WORKLOADS[name]
            result = run_method(
                "rpq", graphs[workload.dataset], workload.pattern, num_workers=3
            )
            assert result.iterations == workload.pattern.length, name

    def test_symmetric_workloads_give_symmetric_graphs(self, graphs, oracles):
        for name in ("dblp-SP1", "dblp-SP2", "patent-SP1"):
            edges = oracles[name].graph.edges
            for (u, v), value in edges.items():
                assert edges[(v, u)] == value, name


class TestAggregateMatrix:
    """A grid of aggregates × a representative workload per dataset."""

    @pytest.mark.parametrize(
        "factory",
        [
            library.path_count,
            library.weighted_path_count,
            library.max_min,
            library.min_max,
            library.add_max,
            library.sum_min,
            library.avg_path_value,
            library.std_path_value,
        ],
    )
    @pytest.mark.parametrize("name", ["dblp-SP1", "patent-SP3"])
    def test_pge_matches_oracle(self, graphs, factory, name):
        workload = WORKLOADS[name]
        graph = graphs[workload.dataset]
        aggregate = factory()
        oracle = extract_bruteforce(graph, workload.pattern, aggregate)
        extractor = GraphExtractor(graph, num_workers=3)
        result = extractor.extract(workload.pattern, factory())
        assert result.graph.equals(oracle.graph, rel_tol=1e-7)

    @pytest.mark.parametrize(
        "factory",
        [library.median_path_value, lambda: library.top_k_path_values(3)],
    )
    def test_holistic_pge_matches_oracle(self, graphs, factory):
        workload = WORKLOADS["dblp-SP1"]
        graph = graphs["dblp"]
        oracle = extract_bruteforce(graph, workload.pattern, factory())
        extractor = GraphExtractor(graph, num_workers=3)
        result = extractor.extract(workload.pattern, factory())
        assert result.graph.equals(oracle.graph, rel_tol=1e-7)


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 5, 10])
    def test_worker_count_does_not_change_results(self, graphs, oracles, workers):
        workload = WORKLOADS["dblp-SP2"]
        extractor = GraphExtractor(graphs["dblp"], num_workers=workers)
        result = extractor.extract(workload.pattern)
        assert result.graph.equals(oracles["dblp-SP2"].graph)

    def test_more_workers_reduce_simulated_time(self, graphs):
        workload = WORKLOADS["dblp-SP2"]
        times = []
        for workers in (1, 4, 16):
            extractor = GraphExtractor(graphs["dblp"], num_workers=workers)
            result = extractor.extract(workload.pattern)
            times.append(result.metrics.simulated_parallel_time())
        assert times[0] > times[1] > times[2]
