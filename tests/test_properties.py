"""Property-based tests (hypothesis): oracle equivalence on random graphs,
plan invariants, and aggregate laws."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import library
from repro.aggregates.base import DistributiveAggregate
from repro.aggregates.classify import check_distributive_pair
from repro.baselines.bruteforce import extract_bruteforce
from repro.baselines.graphdb import extract_graphdb
from repro.baselines.matrix import extract_matrix
from repro.baselines.rpq import extract_rpq
from repro.core.cost import CostModel
from repro.core.evaluator import run_extraction
from repro.core.planner import (
    hybrid_plan,
    iter_opt_plan,
    line_plan,
    path_opt_plan,
)
from repro.graph.hetgraph import HeterogeneousGraph
from repro.graph.pattern import Direction, LinePattern, PatternEdge
from repro.graph.schema import GraphSchema
from repro.graph.stats import GraphStatistics

# ----------------------------------------------------------------------
# random graph + pattern strategies
# ----------------------------------------------------------------------
#: (edge_label, src_label, dst_label) — a small but connected schema that
#: exercises forward/backward slots and same-label loops.
SCHEMA_TYPES = [
    ("x", "A", "B"),
    ("y", "B", "C"),
    ("z", "B", "B"),
    ("r", "C", "A"),
]
SCHEMA = GraphSchema(edge_types=SCHEMA_TYPES)
LABEL_SIZES = {"A": 3, "B": 4, "C": 3}
VERTICES = {}
_next = 0
for _label, _count in LABEL_SIZES.items():
    VERTICES[_label] = list(range(_next, _next + _count))
    _next += _count


@st.composite
def graphs(draw, max_edges: int = 14):
    """A random small heterogeneous graph over the fixed schema, with
    random positive edge weights (parallel edges allowed)."""
    g = HeterogeneousGraph(SCHEMA)
    for label, vids in VERTICES.items():
        for vid in vids:
            g.add_vertex(vid, label)
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(n_edges):
        edge_label, src_label, dst_label = draw(st.sampled_from(SCHEMA_TYPES))
        src = draw(st.sampled_from(VERTICES[src_label]))
        dst = draw(st.sampled_from(VERTICES[dst_label]))
        weight = draw(
            st.floats(min_value=0.25, max_value=4.0, allow_nan=False)
        )
        g.add_edge(src, dst, edge_label, round(weight, 3))
    return g


@st.composite
def patterns(draw, min_length: int = 2, max_length: int = 4):
    """A random line pattern that is satisfiable under the schema: a walk
    over the schema's type graph, traversing each edge type in either
    direction."""
    length = draw(st.integers(min_value=min_length, max_value=max_length))
    start = draw(st.sampled_from(sorted(SCHEMA.vertex_labels)))
    labels = [start]
    edges = []
    for _ in range(length):
        current = labels[-1]
        moves = []
        for edge_label, src, dst in SCHEMA_TYPES:
            if src == current:
                moves.append((edge_label, Direction.FORWARD, dst))
                moves.append((edge_label, Direction.ANY, dst))
            if dst == current:
                moves.append((edge_label, Direction.BACKWARD, src))
        edge_label, direction, nxt = draw(st.sampled_from(moves))
        edges.append(PatternEdge(edge_label, direction))
        labels.append(nxt)
    return LinePattern(labels, edges)


DISTRIBUTIVE_FACTORIES = [
    library.path_count,
    library.weighted_path_count,
    library.max_min,
    library.min_max,
    library.add_max,
    library.sum_min,
]


# ----------------------------------------------------------------------
# oracle equivalence
# ----------------------------------------------------------------------
class TestOracleEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(graph=graphs(), pattern=patterns())
    def test_pge_partial_matches_bruteforce(self, graph, pattern):
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        plan = hybrid_plan(
            pattern, CostModel(pattern, GraphStatistics.collect(graph))
        )
        result = run_extraction(
            graph, pattern, plan, library.path_count(), num_workers=3
        )
        assert result.graph.equals(oracle.graph), result.graph.diff(oracle.graph)

    @settings(max_examples=25, deadline=None)
    @given(graph=graphs(), pattern=patterns())
    def test_all_strategies_agree(self, graph, pattern):
        model = CostModel(pattern, GraphStatistics.collect(graph))
        plans = [
            line_plan(pattern),
            iter_opt_plan(pattern),
            path_opt_plan(pattern, model),
            hybrid_plan(pattern, model),
        ]
        results = [
            run_extraction(graph, pattern, plan, library.path_count())
            for plan in plans
        ]
        for other in results[1:]:
            assert other.graph.equals(results[0].graph)

    @settings(max_examples=25, deadline=None)
    @given(graph=graphs(), pattern=patterns())
    def test_baselines_match_bruteforce(self, graph, pattern):
        aggregate = library.path_count()
        oracle = extract_bruteforce(graph, pattern, aggregate)
        assert extract_graphdb(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_matrix(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_rpq(graph, pattern, aggregate, num_workers=2).graph.equals(
            oracle.graph
        )

    @settings(max_examples=20, deadline=None)
    @given(
        graph=graphs(),
        pattern=patterns(max_length=3),
        factory_index=st.integers(min_value=0, max_value=len(DISTRIBUTIVE_FACTORIES) - 1),
    )
    def test_partial_equals_basic_for_distributives(
        self, graph, pattern, factory_index
    ):
        """Theorem 3 in action: partial aggregation must not change any
        distributive aggregate's result."""
        aggregate = DISTRIBUTIVE_FACTORIES[factory_index]()
        plan = iter_opt_plan(pattern)
        basic = run_extraction(graph, pattern, plan, aggregate, mode="basic")
        partial = run_extraction(graph, pattern, plan, aggregate, mode="partial")
        assert partial.graph.equals(basic.graph, rel_tol=1e-7)

    @settings(max_examples=15, deadline=None)
    @given(graph=graphs(), pattern=patterns(max_length=3))
    def test_algebraic_partial_equals_bruteforce(self, graph, pattern):
        aggregate = library.avg_path_value()
        oracle = extract_bruteforce(graph, pattern, aggregate)
        plan = iter_opt_plan(pattern)
        partial = run_extraction(graph, pattern, plan, aggregate, mode="partial")
        assert partial.graph.equals(oracle.graph, rel_tol=1e-7)

    @settings(max_examples=15, deadline=None)
    @given(graph=graphs(), pattern=patterns(max_length=3))
    def test_holistic_basic_equals_bruteforce(self, graph, pattern):
        aggregate = library.median_path_value()
        oracle = extract_bruteforce(graph, pattern, aggregate)
        plan = iter_opt_plan(pattern)
        result = run_extraction(graph, pattern, plan, aggregate, mode="basic")
        assert result.graph.equals(oracle.graph, rel_tol=1e-7)


# ----------------------------------------------------------------------
# structural invariants
# ----------------------------------------------------------------------
class TestPlanInvariants:
    @settings(max_examples=40, deadline=None)
    @given(pattern=patterns(max_length=10), graph=graphs(max_edges=10))
    def test_strategy_invariants(self, pattern, graph):
        length = pattern.length
        model = CostModel(pattern, GraphStatistics.collect(graph))
        min_height = max(math.ceil(math.log2(length)), 1)

        line = line_plan(pattern)
        iter_opt = iter_opt_plan(pattern)
        path_opt = path_opt_plan(pattern, model)
        hybrid = hybrid_plan(pattern, model)

        for plan in (line, iter_opt, path_opt, hybrid):
            assert plan.num_nodes == length - 1  # Theorem 2
        assert line.height == length - 1
        assert iter_opt.height == min_height
        assert hybrid.height == min_height
        # cost ordering under the same model
        assert model.plan_cost(path_opt) <= model.plan_cost(hybrid) + 1e-6
        assert model.plan_cost(hybrid) <= model.plan_cost(iter_opt) + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(graph=graphs(), pattern=patterns())
    def test_symmetric_results_for_symmetric_patterns(self, graph, pattern):
        """Running a pattern backwards transposes the extracted graph."""
        forward = extract_bruteforce(graph, pattern, library.path_count())
        backward = extract_bruteforce(
            graph, pattern.reversed(), library.path_count()
        )
        transposed = {(v, u): val for (u, v), val in backward.graph.edges.items()}
        assert transposed == dict(forward.graph.edges)

    @settings(max_examples=25, deadline=None)
    @given(graph=graphs(), pattern=patterns(max_length=3))
    def test_intermediate_paths_partial_never_worse(self, graph, pattern):
        plan = iter_opt_plan(pattern)
        basic = run_extraction(
            graph, pattern, plan, library.path_count(), mode="basic"
        )
        partial = run_extraction(
            graph, pattern, plan, library.path_count(), mode="partial"
        )
        assert partial.intermediate_paths <= basic.intermediate_paths


# ----------------------------------------------------------------------
# aggregate laws
# ----------------------------------------------------------------------
class TestAggregateLaws:
    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=8,
        ),
        factory_index=st.integers(
            min_value=0, max_value=len(DISTRIBUTIVE_FACTORIES) - 1
        ),
    )
    def test_merge_is_order_insensitive(self, values, factory_index):
        aggregate = DISTRIBUTIVE_FACTORIES[factory_index]()
        items = [aggregate.initial_edge(v) for v in values]
        forward = aggregate.finalize_all(items)
        backward = aggregate.finalize_all(list(reversed(items)))
        assert forward == pytest.approx(backward)

    @settings(max_examples=30, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=3,
            max_size=6,
        )
    )
    def test_declared_distributivity_holds_on_random_samples(self, samples):
        for factory in DISTRIBUTIVE_FACTORIES:
            aggregate = factory()
            assert check_distributive_pair(
                aggregate.combine_op, aggregate.merge_op, samples=samples
            ), aggregate.name
