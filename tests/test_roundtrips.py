"""Hypothesis round-trip properties: serialisation, the pattern DSL, and
plan construction under arbitrary pivot choices."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import PCP
from repro.graph.hetgraph import HeterogeneousGraph
from repro.graph.io import load_edgelist, load_json, save_edgelist, save_json
from repro.graph.pattern import Direction, LinePattern, PatternEdge

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
label = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True)


@st.composite
def random_patterns(draw, max_length=8):
    length = draw(st.integers(min_value=1, max_value=max_length))
    labels = [draw(label) for _ in range(length + 1)]
    edges = [
        PatternEdge(
            draw(label),
            draw(st.sampled_from([Direction.FORWARD, Direction.BACKWARD])),
        )
        for _ in range(length)
    ]
    return LinePattern(labels, edges)


@st.composite
def random_graphs(draw):
    g = HeterogeneousGraph()
    n = draw(st.integers(min_value=1, max_value=12))
    labels = ["A", "B", "C"]
    for vid in range(n):
        g.add_vertex(vid, draw(st.sampled_from(labels)))
    n_edges = draw(st.integers(min_value=0, max_value=20))
    for _ in range(n_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        edge_label = draw(st.sampled_from(["x", "y", "z"]))
        weight = draw(
            st.floats(
                min_value=-100, max_value=100,
                allow_nan=False, allow_infinity=False,
            )
        )
        g.add_edge(src, dst, edge_label, weight)
    return g


def graph_fingerprint(g: HeterogeneousGraph):
    return (
        sorted((vid, g.label_of(vid)) for vid in g.vertices()),
        sorted((e.src, e.dst, e.label, e.weight) for e in g.edges()),
    )


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
class TestSerializationRoundtrips:
    @settings(max_examples=30, deadline=None)
    @given(graph=random_graphs())
    def test_json_roundtrip(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("json") / "g.json"
        save_json(graph, path)
        assert graph_fingerprint(load_json(path)) == graph_fingerprint(graph)

    @settings(max_examples=30, deadline=None)
    @given(graph=random_graphs())
    def test_edgelist_roundtrip(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("el") / "g.txt"
        save_edgelist(graph, path)
        assert graph_fingerprint(load_edgelist(path)) == graph_fingerprint(graph)


class TestPatternDslRoundtrips:
    @settings(max_examples=100, deadline=None)
    @given(pattern=random_patterns())
    def test_str_parse_roundtrip(self, pattern):
        assert LinePattern.parse(str(pattern)) == pattern

    @settings(max_examples=100, deadline=None)
    @given(pattern=random_patterns())
    def test_double_reverse_is_identity(self, pattern):
        assert pattern.reversed().reversed() == pattern

    @settings(max_examples=50, deadline=None)
    @given(pattern=random_patterns(max_length=6))
    def test_segments_tile_the_pattern(self, pattern):
        if pattern.length < 2:
            return
        mid = pattern.length // 2 or 1
        left = pattern.segment(0, mid)
        right = pattern.segment(mid, pattern.length)
        assert left.vertex_labels[-1] == right.vertex_labels[0]
        assert left.length + right.length == pattern.length
        assert left.edges + right.edges == pattern.edges


class TestPlanConstruction:
    @settings(max_examples=80, deadline=None)
    @given(
        pattern=random_patterns(max_length=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_any_valid_pivot_chooser_yields_valid_plan(self, pattern, seed):
        """Whatever (deterministic, in-range) pivots are chosen, the plan
        passes validation with l-1 nodes and consistent levels."""
        if pattern.length < 2:
            return

        def chooser(i, j):
            return i + 1 + (seed + i * 31 + j * 7) % (j - i - 1)

        plan = PCP.from_pivot_chooser(pattern, chooser)
        assert plan.num_nodes == pattern.length - 1
        assert plan.height >= math.ceil(math.log2(pattern.length))
        schedule = plan.evaluation_schedule()
        assert sum(len(level) for level in schedule) == plan.num_nodes
        # rebuild from the recorded pivots: identical structure
        pivots = {(n.i, n.j): n.k for n in plan.nodes()}
        rebuilt = PCP.from_pivot_chooser(pattern, lambda i, j: pivots[(i, j)])
        assert rebuilt.signature() == plan.signature()
