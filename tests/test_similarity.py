"""Tests for SimRank and local-structure analyses."""

import pytest

from repro.analysis import (
    clustering_coefficient,
    global_clustering,
    simrank,
    triangle_count,
)
from repro.core.extractor import GraphExtractor
from repro.core.result import ExtractedGraph
from repro.graph.pattern import LinePattern

from tests.conftest import A1, A2, A3, A4, build_scholarly


def make(edges, vertices):
    return ExtractedGraph("A", "A", set(vertices), edges)


@pytest.fixture
def two_fans():
    """u1, u2 both point at a and at b: the classic SimRank example where
    a and b become similar through their common in-neighbours."""
    return make(
        {(1, 3): 1.0, (1, 4): 1.0, (2, 3): 1.0, (2, 4): 1.0},
        vertices=[1, 2, 3, 4],
    )


class TestSimrank:
    def test_self_similarity_is_one(self, two_fans):
        scores = simrank(two_fans)
        for vid in (1, 2, 3, 4):
            assert scores[(vid, vid)] == 1.0

    def test_symmetric(self, two_fans):
        scores = simrank(two_fans)
        assert scores[(3, 4)] == scores[(4, 3)]

    def test_common_parents_make_similar(self, two_fans):
        scores = simrank(two_fans, decay=0.8, max_iterations=50)
        # I(3) = I(4) = {1, 2}; parents are sources (s(1,2) = 0), so
        # s(3,4) = 0.8/4 · (s(1,1) + 2·s(1,2) + s(2,2)) = 0.8·2/4 = 0.4
        assert scores[(3, 4)] == pytest.approx(0.4, rel=1e-6)

    def test_no_in_neighbours_means_zero(self, two_fans):
        scores = simrank(two_fans)
        assert scores.get((1, 2), 0.0) == 0.0

    def test_scores_bounded(self, two_fans):
        scores = simrank(two_fans)
        assert all(0.0 <= value <= 1.0 + 1e-12 for value in scores.values())

    def test_on_extracted_coauthor_graph(self):
        graph = build_scholarly()
        result = GraphExtractor(graph).extract(
            LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        )
        scores = simrank(result.graph, max_iterations=30)
        # a3 and a4 have identical co-author in-neighbourhoods {a3, a4}
        assert scores[(A3, A4)] > scores.get((A1, A3), 0.0)


class TestTriangles:
    @pytest.fixture
    def triangle_plus_tail(self):
        return make(
            {(1, 2): 1.0, (2, 3): 1.0, (3, 1): 1.0, (3, 4): 1.0},
            vertices=[1, 2, 3, 4],
        )

    def test_triangle_counts(self, triangle_plus_tail):
        counts = triangle_count(triangle_plus_tail)
        assert counts[1] == counts[2] == counts[3] == 1
        assert counts[4] == 0

    def test_self_loops_ignored(self):
        g = make({(1, 1): 1.0, (1, 2): 1.0}, vertices=[1, 2])
        assert triangle_count(g) == {1: 0, 2: 0}

    def test_clustering_coefficient(self, triangle_plus_tail):
        coefficients = clustering_coefficient(triangle_plus_tail)
        assert coefficients[1] == 1.0  # both neighbours connected
        assert coefficients[3] == pytest.approx(1 / 3)  # 1 of 3 pairs
        assert coefficients[4] == 0.0

    def test_global_clustering(self, triangle_plus_tail):
        # 1 triangle, triples: deg 2,2,3,1 -> 1+1+3+0 = 5
        assert global_clustering(triangle_plus_tail) == pytest.approx(3 / 5)

    def test_empty_graph(self):
        g = make({}, vertices=[1, 2])
        assert global_clustering(g) == 0.0
        assert clustering_coefficient(g) == {1: 0.0, 2: 0.0}

    def test_coauthor_cliques_fully_clustered(self):
        """Co-author graphs of single-paper groups are cliques: clustering
        coefficient 1 for authors with >= 2 co-authors."""
        graph = build_scholarly()
        graph.add_vertex(5, "Author")
        graph.add_edge(5, 12, "authorBy")  # a5 joins paper p2 with a3, a4
        result = GraphExtractor(graph).extract(
            LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        )
        coefficients = clustering_coefficient(result.graph)
        assert coefficients[A3] == 1.0
        assert coefficients[5] == 1.0
