"""Tests for the public verification helpers (repro.testing)."""

import pytest

from repro.aggregates import library
from repro.aggregates.base import OP_ADD, OP_MUL, DistributiveAggregate
from repro.graph.pattern import LinePattern
from repro.testing import (
    VerificationError,
    assert_aggregate_consistent,
    assert_methods_agree,
    crosscheck_plans,
)

from tests.conftest import build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


@pytest.fixture
def coauthor():
    return LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")


class TestAssertMethodsAgree:
    def test_passes_on_correct_methods(self, graph, coauthor):
        assert_methods_agree(graph, coauthor)

    def test_subset_of_methods(self, graph, coauthor):
        assert_methods_agree(graph, coauthor, methods=("pge", "matrix"))

    def test_longer_pattern(self, graph):
        pattern = LinePattern.parse(
            "Venue <-[publishAt]- Paper <-[authorBy]- Author "
            "-[authorBy]-> Paper -[publishAt]-> Venue"
        )
        assert_methods_agree(graph, pattern, aggregate=library.sum_min())


class TestAssertAggregateConsistent:
    @pytest.mark.parametrize(
        "factory",
        [
            library.path_count,
            library.max_min,
            library.avg_path_value,
            library.exists_path,
            library.median_path_value,  # holistic: basic-mode check only
        ],
    )
    def test_library_aggregates_pass(self, graph, coauthor, factory):
        assert_aggregate_consistent(graph, coauthor, factory())

    def test_bogus_declaration_caught_structurally(self, graph, coauthor):
        bogus = DistributiveAggregate(OP_ADD, OP_ADD, name="bogus")
        with pytest.raises(Exception):  # AggregationError from Theorem 3 check
            assert_aggregate_consistent(graph, coauthor, bogus)

    def test_lying_aggregate_caught_at_runtime(self, graph):
        """An aggregate whose declared ops pass the numeric check but whose
        concat implementation does NOT distribute over ⊕ is caught by the
        partial-vs-oracle comparison (on a pattern long enough that
        merging happens before concatenation)."""

        class Lying(DistributiveAggregate):
            def concat(self, left, right):
                return left * right + 0.5  # not the declared ⊗

        lying = Lying(OP_MUL, OP_ADD, edge_value=lambda w: 1.0, name="lying")
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        with pytest.raises(VerificationError):
            assert_aggregate_consistent(graph, pattern, lying)


class TestCrosscheckPlans:
    def test_passes_on_all_strategies(self, graph):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[publishAt]-> Venue "
            "<-[publishAt]- Paper <-[authorBy]- Author"
        )
        crosscheck_plans(graph, pattern)

    def test_strategy_subset(self, graph, coauthor):
        crosscheck_plans(graph, coauthor, strategies=("line", "hybrid"))
