"""Integration tests for undirected (ANY) pattern edges — Definition 5's
third direction option."""

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.baselines.graphdb import extract_graphdb
from repro.baselines.matrix import extract_matrix
from repro.baselines.rpq import extract_rpq
from repro.core.extractor import GraphExtractor
from repro.core.incremental import IncrementalExtractor
from repro.graph.pattern import Direction, LinePattern, PatternEdge
from repro.graph.stats import GraphStatistics

from tests.conftest import A1, P1, P2, P3, build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


class TestParsing:
    def test_undirected_dsl(self):
        pattern = LinePattern.parse("Paper -[citeBy]- Paper")
        assert pattern.edges[0].direction is Direction.ANY

    def test_mixed_directions(self):
        pattern = LinePattern.parse(
            "Author -[authorBy]-> Paper -[citeBy]- Paper"
        )
        assert pattern.edges[0].direction is Direction.FORWARD
        assert pattern.edges[1].direction is Direction.ANY

    def test_str_roundtrip(self):
        text = "Paper -[citeBy]- Paper -[publishAt]-> Venue"
        pattern = LinePattern.parse(text)
        assert LinePattern.parse(str(pattern)) == pattern

    def test_flip_is_identity(self):
        assert Direction.ANY.flip() is Direction.ANY
        edge = PatternEdge("e", Direction.ANY)
        assert edge.flip() == edge

    def test_undirected_symmetric_pattern(self):
        pattern = LinePattern.parse("Paper -[citeBy]- Paper")
        assert pattern.is_symmetric()

    def test_validation_either_orientation(self, graph):
        LinePattern.parse("Paper -[publishAt]- Venue").validate_against(
            graph.schema
        )
        LinePattern.parse("Venue -[publishAt]- Paper").validate_against(
            graph.schema
        )
        from repro.errors import PatternMismatchError

        with pytest.raises(PatternMismatchError):
            LinePattern.parse("Author -[publishAt]- Venue").validate_against(
                graph.schema
            )


class TestSemantics:
    def test_undirected_single_edge(self, graph):
        """citeBy undirected: each directed edge matched in both
        orientations."""
        pattern = LinePattern.parse("Paper -[citeBy]- Paper")
        result = GraphExtractor(graph).extract(pattern)
        assert dict(result.graph.edges) == {
            (P2, P1): 1.0,
            (P1, P2): 1.0,
            (P3, P2): 1.0,
            (P2, P3): 1.0,
        }

    def test_stats_count_both_orientations(self, graph):
        stats = GraphStatistics.collect(graph)
        edge = PatternEdge("citeBy", Direction.ANY)
        assert stats.slot_edge_count("Paper", edge, "Paper") == 4

    def test_undirected_citation_neighbourhood(self, graph):
        """Papers within two undirected citation hops."""
        pattern = LinePattern.chain(
            "Paper", "citeBy", 2, direction=Direction.ANY
        )
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        result = GraphExtractor(graph, num_workers=2).extract(pattern)
        assert result.graph.equals(oracle.graph)
        # p1 -(undirected)- p2 -(undirected)- p3 exists
        assert oracle.graph.has_edge(P1, P3)


class TestAllMethodsAgree:
    @pytest.mark.parametrize(
        "text",
        [
            "Paper -[citeBy]- Paper",
            "Paper -[citeBy]- Paper -[citeBy]- Paper",
            "Author -[authorBy]-> Paper -[citeBy]- Paper <-[authorBy]- Author",
            "* -[citeBy]- *",
        ],
    )
    def test_undirected_matches_oracle_everywhere(self, graph, text):
        pattern = LinePattern.parse(text)
        aggregate = library.path_count()
        oracle = extract_bruteforce(graph, pattern, aggregate)
        for strategy in ("line", "hybrid"):
            pge = GraphExtractor(graph, num_workers=3, strategy=strategy).extract(
                pattern
            )
            assert pge.graph.equals(oracle.graph), (text, strategy)
        assert extract_graphdb(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_matrix(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_rpq(graph, pattern, aggregate).graph.equals(oracle.graph)


class TestIncrementalWithUndirected:
    def test_insert_into_undirected_chain(self, graph):
        pattern = LinePattern.chain("Paper", "citeBy", 2, direction=Direction.ANY)
        inc = IncrementalExtractor(graph, pattern)
        inc.add_edge(P1, P3, "citeBy")
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        assert inc.extracted().equals(oracle.graph), inc.extracted().diff(
            oracle.graph
        )

    def test_remove_from_undirected_chain(self, graph):
        pattern = LinePattern.chain("Paper", "citeBy", 2, direction=Direction.ANY)
        inc = IncrementalExtractor(graph, pattern)
        inc.remove_edge(P2, P1, "citeBy")
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        assert inc.extracted().equals(oracle.graph)
