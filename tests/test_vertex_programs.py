"""Tests for the BSP-based analysis programs and global aggregators."""

import pytest

from repro.aggregates.base import OP_ADD, OP_MAX
from repro.analysis import (
    connected_components,
    connected_components_parallel,
    pagerank,
    pagerank_parallel,
)
from repro.core.extractor import GraphExtractor
from repro.core.result import ExtractedGraph
from repro.engine.bsp import BSPEngine, VertexProgram
from repro.engine.parallel import ThreadedBSPEngine
from repro.graph.pattern import LinePattern

from tests.conftest import build_scholarly


@pytest.fixture
def diamond():
    return ExtractedGraph(
        "A",
        "A",
        {1, 2, 3, 4, 5},
        {(1, 2): 2.0, (1, 3): 1.0, (2, 4): 1.0, (3, 4): 1.0},
    )


class TestGlobalAggregators:
    def test_reduce_visible_next_superstep(self):
        observations = {}

        class Summer(VertexProgram):
            def num_supersteps(self):
                return 3

            def global_reducers(self):
                return {"total": OP_ADD, "peak": OP_MAX}

            def compute(self, ctx):
                observations.setdefault(ctx.superstep, dict(ctx.globals))
                ctx.reduce_global("total", 1.0)
                ctx.reduce_global("peak", float(ctx.vid))

        BSPEngine([0, 1, 2], num_workers=2).run(Summer())
        assert observations[0] == {}
        assert observations[1] == {"total": 3.0, "peak": 2.0}
        assert observations[2] == {"total": 3.0, "peak": 2.0}

    def test_last_globals_exposed(self):
        class Summer(VertexProgram):
            def num_supersteps(self):
                return 1

            def global_reducers(self):
                return {"total": OP_ADD}

            def compute(self, ctx):
                ctx.reduce_global("total", 2.0)

        engine = BSPEngine([0, 1], num_workers=1)
        engine.run(Summer())
        assert engine.last_globals == {"total": 4.0}

    def test_undeclared_aggregator_raises(self):
        class Bad(VertexProgram):
            def num_supersteps(self):
                return 1

            def compute(self, ctx):
                ctx.reduce_global("nope", 1.0)

        with pytest.raises(KeyError):
            BSPEngine([0], num_workers=1).run(Bad())

    def test_threaded_engine_merges_globals(self):
        class Summer(VertexProgram):
            def num_supersteps(self):
                return 2

            def global_reducers(self):
                return {"total": OP_ADD}

            def compute(self, ctx):
                if ctx.superstep == 0:
                    ctx.reduce_global("total", 1.0)
                else:
                    ctx.state()["seen"] = ctx.globals["total"]

            def finish(self, states, metrics):
                return {vid: s["seen"] for vid, s in states.items()}

        result = ThreadedBSPEngine(list(range(6)), num_workers=3).run(Summer())
        assert all(value == 6.0 for value in result.values())


class TestParallelPagerank:
    def test_matches_serial(self, diamond):
        serial = pagerank(diamond, tolerance=1e-12)
        parallel = pagerank_parallel(diamond, num_workers=3, tolerance=1e-12)
        assert set(parallel) == set(serial)
        for vid in serial:
            assert parallel[vid] == pytest.approx(serial[vid], rel=1e-6)

    def test_sums_to_one(self, diamond):
        ranks = pagerank_parallel(diamond, num_workers=2)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_on_extracted_coauthor_graph(self):
        graph = build_scholarly()
        result = GraphExtractor(graph).extract(
            LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        )
        serial = pagerank(result.graph, tolerance=1e-12)
        parallel = pagerank_parallel(result.graph, num_workers=4, tolerance=1e-12)
        for vid in serial:
            assert parallel[vid] == pytest.approx(serial[vid], rel=1e-6)

    def test_converges_before_max_iterations(self, diamond):
        engine = BSPEngine(sorted(diamond.vertices), num_workers=1)
        pagerank_parallel(diamond, engine=engine, tolerance=1e-8)
        assert engine.last_metrics.num_supersteps < 100


class TestParallelComponents:
    def test_matches_serial(self, diamond):
        serial = connected_components(diamond)
        labels = connected_components_parallel(diamond, num_workers=2)
        grouped = {}
        for vid, comp in labels.items():
            grouped.setdefault(comp, []).append(vid)
        parallel_components = sorted(
            (sorted(members) for members in grouped.values()),
            key=lambda c: (-len(c), c[0]),
        )
        assert parallel_components == serial

    def test_component_label_is_min_member(self, diamond):
        labels = connected_components_parallel(diamond, num_workers=2)
        assert labels[1] == labels[4] == 1
        assert labels[5] == 5
