"""Integration tests for wildcard (*) vertex positions."""

import pytest

from repro.aggregates import library
from repro.baselines.bruteforce import extract_bruteforce
from repro.baselines.graphdb import extract_graphdb
from repro.baselines.matrix import extract_matrix
from repro.baselines.rpq import extract_rpq
from repro.core.extractor import GraphExtractor
from repro.graph.pattern import ANY_LABEL, LinePattern, label_matches
from repro.graph.stats import GraphStatistics

from tests.conftest import A1, A2, P1, P2, P3, V1, build_scholarly


@pytest.fixture
def graph():
    return build_scholarly()


class TestParsing:
    def test_wildcard_in_dsl(self):
        pattern = LinePattern.parse("* -[authorBy]-> Paper")
        assert pattern.start_label == ANY_LABEL
        assert pattern.label_at(1) == "Paper"

    def test_label_matches_helper(self):
        assert label_matches("Author", ANY_LABEL)
        assert label_matches("Author", "Author")
        assert not label_matches("Author", "Paper")

    def test_validation_accepts_wildcards(self, graph):
        pattern = LinePattern.parse("* -[authorBy]-> * <-[authorBy]- *")
        pattern.validate_against(graph.schema)

    def test_validation_still_checks_edge_labels(self, graph):
        from repro.errors import PatternMismatchError

        pattern = LinePattern.parse("* -[nonexistent]-> *")
        with pytest.raises(PatternMismatchError):
            pattern.validate_against(graph.schema)


class TestStatistics:
    def test_wildcard_vertex_count(self, graph):
        stats = GraphStatistics.collect(graph)
        assert stats.vertex_count(ANY_LABEL) == graph.num_vertices()

    def test_wildcard_triple_counts(self, graph):
        stats = GraphStatistics.collect(graph)
        assert stats.triple_count(ANY_LABEL, "authorBy", "Paper") == 6
        assert stats.triple_count("Author", "authorBy", ANY_LABEL) == 6
        assert stats.triple_count(ANY_LABEL, "publishAt", ANY_LABEL) == 3


class TestExtractionSemantics:
    def test_wildcard_interior_equals_concrete(self, graph):
        """On this schema authorBy only reaches Papers, so a wildcard
        middle position gives exactly the co-author graph."""
        concrete = GraphExtractor(graph).extract(
            LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        )
        wildcard = GraphExtractor(graph).extract(
            LinePattern.parse("Author -[authorBy]-> * <-[authorBy]- Author")
        )
        assert wildcard.graph.equals(concrete.graph)

    def test_wildcard_endpoint(self, graph):
        """citeBy chains with a wildcard end match papers only (citeBy
        always lands on Paper) — and the vertex set covers everything."""
        pattern = LinePattern.parse("Paper -[citeBy]-> *")
        result = GraphExtractor(graph).extract(pattern)
        assert dict(result.graph.edges) == {(P2, P1): 1.0, (P3, P2): 1.0}
        assert result.graph.num_vertices() == graph.num_vertices()

    def test_all_wildcards(self, graph):
        """A fully wildcarded length-2 pattern counts all 2-edge walks."""
        pattern = LinePattern.parse("* -[authorBy]-> * -[publishAt]-> *")
        result = GraphExtractor(graph).extract(pattern)
        # every author->paper edge extends to that paper's venue
        assert result.graph.value(A1, V1) == 1.0
        assert result.graph.num_edges() == 6


class TestAllMethodsAgree:
    @pytest.mark.parametrize(
        "text",
        [
            "* -[authorBy]-> Paper <-[authorBy]- *",
            "Author -[authorBy]-> * -[publishAt]-> Venue",
            "* -[citeBy]-> *",
            "* -[authorBy]-> * -[publishAt]-> * <-[publishAt]- * <-[authorBy]- *",
        ],
    )
    def test_wildcards_match_oracle_everywhere(self, graph, text):
        pattern = LinePattern.parse(text)
        aggregate = library.path_count()
        oracle = extract_bruteforce(graph, pattern, aggregate)
        for strategy in ("line", "hybrid"):
            pge = GraphExtractor(graph, num_workers=3, strategy=strategy).extract(
                pattern
            )
            assert pge.graph.equals(oracle.graph), (text, strategy)
        assert extract_graphdb(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_matrix(graph, pattern, aggregate).graph.equals(oracle.graph)
        assert extract_rpq(graph, pattern, aggregate).graph.equals(oracle.graph)

    def test_wildcard_with_filter(self, graph):
        from repro.graph.filters import VertexFilter

        graph.add_vertex(P1, "Paper", {"year": 2008})
        graph.add_vertex(P2, "Paper", {"year": 2012})
        graph.add_vertex(P3, "Paper", {"year": 2015})
        pattern = LinePattern.parse(
            "Author -[authorBy]-> * <-[authorBy]- Author"
        ).with_filter(1, VertexFilter("year", "ge", 2010))
        oracle = extract_bruteforce(graph, pattern, library.path_count())
        pge = GraphExtractor(graph, num_workers=2).extract(pattern)
        assert pge.graph.equals(oracle.graph)
        assert not pge.graph.has_edge(A1, A2)  # p1 is pre-2010
