"""Tests for metapath discovery."""

import pytest

from repro.datasets.dblp import dblp_schema, tiny_dblp
from repro.errors import PatternError
from repro.graph.pattern import LinePattern
from repro.workloads.discovery import (
    discover,
    enumerate_patterns,
    rank_patterns,
    symmetric_patterns,
)


@pytest.fixture
def schema():
    return dblp_schema()


class TestEnumerate:
    def test_author_to_author_length2(self, schema):
        patterns = enumerate_patterns(schema, "Author", "Author", max_length=2)
        # the only length-2 Author..Author walk is the co-author pattern
        assert patterns == [
            LinePattern.parse("Author -[authorBy]-> Paper <-[authorBy]- Author")
        ]

    def test_author_to_venue_length2(self, schema):
        patterns = enumerate_patterns(schema, "Author", "Venue", max_length=2)
        assert patterns == [
            LinePattern.parse("Author -[authorBy]-> Paper -[publishAt]-> Venue")
        ]

    def test_min_length_respected(self, schema):
        patterns = enumerate_patterns(
            schema, "Paper", "Paper", max_length=2, min_length=2
        )
        assert all(p.length == 2 for p in patterns)
        assert LinePattern.parse("Paper -[citeBy]-> Paper") not in patterns

    def test_forward_only(self, schema):
        forward = enumerate_patterns(
            schema, "Paper", "Paper", max_length=2, allow_backward=False
        )
        from repro.graph.pattern import Direction

        assert forward
        assert all(
            edge.direction is Direction.FORWARD for p in forward for edge in p.edges
        )

    def test_all_paper_workloads_are_discoverable(self, schema):
        """Every named dblp workload appears in the enumerated space."""
        from repro.workloads.patterns import workloads_for_dataset

        for workload in workloads_for_dataset("dblp"):
            pattern = workload.pattern
            found = enumerate_patterns(
                schema,
                pattern.start_label,
                pattern.end_label,
                max_length=pattern.length,
            )
            assert pattern in found, workload.name

    def test_cap_raises_loudly(self, schema):
        with pytest.raises(PatternError, match="candidate patterns"):
            enumerate_patterns(
                schema, "Paper", "Paper", max_length=12, max_patterns=50
            )

    def test_unknown_label_rejected(self, schema):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            enumerate_patterns(schema, "Ghost", "Paper", max_length=2)

    def test_invalid_lengths(self, schema):
        with pytest.raises(PatternError):
            enumerate_patterns(schema, "Paper", "Paper", max_length=0)


class TestSymmetric:
    def test_filters_to_sp_class(self, schema):
        patterns = enumerate_patterns(schema, "Author", "Author", max_length=4)
        symmetric = symmetric_patterns(patterns)
        assert symmetric
        assert all(p.is_symmetric() for p in symmetric)
        coauthor = LinePattern.parse(
            "Author -[authorBy]-> Paper <-[authorBy]- Author"
        )
        assert coauthor in symmetric


class TestRanking:
    def test_ranked_descending_and_positive(self):
        graph = tiny_dblp()
        patterns = enumerate_patterns(graph.schema, "Author", "Author", max_length=4)
        ranked = rank_patterns(graph, patterns)
        estimates = [estimate for _, estimate in ranked]
        assert estimates == sorted(estimates, reverse=True)
        assert all(estimate > 0 for estimate in estimates)

    def test_discover_top(self):
        graph = tiny_dblp()
        top = discover(graph, "Author", "Author", max_length=4, top=3)
        assert len(top) == 3
        # discovered candidates actually extract something
        from repro.core.extractor import GraphExtractor

        extractor = GraphExtractor(graph, num_workers=2)
        result = extractor.extract(top[0][0])
        assert result.graph.num_edges() > 0

    def test_discover_symmetric_only(self):
        graph = tiny_dblp()
        top = discover(
            graph, "Author", "Author", max_length=4, only_symmetric=True
        )
        assert all(p.is_symmetric() for p, _ in top)
