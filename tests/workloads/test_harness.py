"""Unit tests for the experiment harness."""

import pytest

from repro.errors import DatasetError
from repro.workloads.harness import (
    METHODS,
    Row,
    format_table,
    reference_graph,
    run_method,
    run_workload,
    summarize,
)


class TestReferenceGraph:
    def test_cached(self):
        a = reference_graph("dblp", scale=0.05)
        b = reference_graph("dblp", scale=0.05)
        assert a is b

    def test_scale_shrinks(self):
        small = reference_graph("dblp", scale=0.05)
        smaller = reference_graph("dblp", scale=0.02)
        assert smaller.num_vertices() < small.num_vertices()

    def test_patent_dataset(self):
        g = reference_graph("patent", scale=0.05)
        assert g.count_label("Patent") > 0

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            reference_graph("imdb")


class TestRunMethod:
    @pytest.fixture(scope="class")
    def graph(self):
        return reference_graph("dblp", scale=0.05)

    def test_all_methods_agree(self, graph):
        from repro.workloads.patterns import get_workload

        pattern = get_workload("dblp-SP1").pattern
        results = {
            method: run_method(method, graph, pattern, num_workers=2)
            for method in METHODS
        }
        reference = results["pge"].graph
        for method, result in results.items():
            assert result.graph.equals(reference), method

    def test_unknown_method(self, graph):
        from repro.workloads.patterns import get_workload

        with pytest.raises(DatasetError, match="unknown method"):
            run_method("magic", graph, get_workload("dblp-SP1").pattern)


class TestRunWorkload:
    def test_named_workload_runs(self):
        result = run_workload("dblp-SP1", scale=0.05, num_workers=2)
        assert result.graph.num_edges() > 0
        assert result.plan is not None


class TestFormatting:
    def test_format_table(self):
        rows = [
            Row("dblp-SP1", {"runtime": 1.2345, "paths": 100}),
            Row("dblp-SP2", {"runtime": 0.001234, "paths": 2000000}),
        ]
        text = format_table(rows, ["runtime", "paths"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "workload" in lines[1]
        assert "dblp-SP1" in text
        assert "2e+06" in text or "2000000" in text

    def test_missing_column_dash(self):
        text = format_table([Row("x", {})], ["absent"])
        assert "-" in text.splitlines()[-1]

    def test_summarize_picks_keys(self):
        result = run_workload("dblp-SP1", scale=0.05, num_workers=2)
        summary = summarize(result, ["iterations", "intermediate_paths"])
        assert set(summary) == {"iterations", "intermediate_paths"}
