"""Unit tests for the named paper workloads."""

import pytest

from repro.datasets.dblp import dblp_schema
from repro.datasets.patent import patent_schema
from repro.errors import PatternError
from repro.workloads.patterns import (
    HEAVY_PATTERNS,
    LIGHT_PATTERNS,
    WORKLOADS,
    get_workload,
    workloads_for_dataset,
)


class TestRegistry:
    def test_all_nine_workloads_present(self):
        assert len(WORKLOADS) == 9
        assert set(WORKLOADS) == {
            "dblp-BP1", "dblp-SP1", "dblp-SP2", "dblp-SP3",
            "patent-BP1", "patent-BP2", "patent-SP1", "patent-SP2", "patent-SP3",
        }

    def test_kind_classification(self):
        assert get_workload("dblp-BP1").kind == "BP"
        assert get_workload("dblp-SP1").kind == "SP"

    def test_patterns_validate_against_their_schemas(self):
        schemas = {"dblp": dblp_schema(), "patent": patent_schema()}
        for workload in WORKLOADS.values():
            workload.pattern.validate_against(schemas[workload.dataset])

    def test_symmetry_patterns_are_symmetric(self):
        for name in ("dblp-SP1", "dblp-SP2", "dblp-SP3", "patent-SP1"):
            assert get_workload(name).pattern.is_symmetric(), name

    def test_bipartite_patterns_connect_distinct_labels(self):
        for name, workload in WORKLOADS.items():
            if workload.kind == "BP":
                pattern = workload.pattern
                assert pattern.start_label != pattern.end_label, name

    def test_unknown_name_raises(self):
        with pytest.raises(PatternError, match="available"):
            get_workload("dblp-SP9")

    def test_workloads_for_dataset(self):
        assert len(workloads_for_dataset("dblp")) == 4
        assert len(workloads_for_dataset("patent")) == 5


class TestLightHeavySplit:
    def test_partition_is_complete_and_disjoint(self):
        assert set(LIGHT_PATTERNS) | set(HEAVY_PATTERNS) == set(WORKLOADS)
        assert not set(LIGHT_PATTERNS) & set(HEAVY_PATTERNS)
